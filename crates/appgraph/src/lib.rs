//! # hpf-appgraph — application characterization (Application Module, §3.2)
//!
//! The *abstraction parse* of Phase 2 (§4.2): intercepts the SPMD program
//! structure produced by Phase 1 and abstracts its execution and
//! communication structures into Application Abstraction Units (AAUs),
//! combined into the Application Abstraction Graph (AAG). Superimposing the
//! communication/synchronization edges yields the Synchronized AAG (SAAG),
//! and a communication table records the specification and status of every
//! communication (§4.2).
//!
//! AAU taxonomy (§3.2, Figure 2): `Seq` (sequential straight-line work,
//! including message packing / index translation), `IterD` (deterministic
//! iterative construct), `CondtD` (deterministic conditional), and `Comm`
//! (communication/synchronization operation).

use hpf_compiler::{CommPhase, CompPhase, OpCounts, SeqBlock, SpmdNode, SpmdProgram};
use hpf_lang::Span;
use machine::CollectiveOp;

/// Index of an AAU within its AAG.
pub type AauId = usize;

/// The kinds of Application Abstraction Unit.
#[derive(Debug, Clone)]
pub enum AauKind {
    /// Program entry.
    Start,
    /// Program exit.
    End,
    /// Straight-line sequential work (replicated scalar code, or the
    /// pack/adjust-bounds prologue of a communication — Figure 2's `Seq`).
    Seq { ops: OpCounts },
    /// Deterministic iteration: a counted loop with `trips` iterations over
    /// the sub-graph `body`. Local computation phases are `IterD` whose
    /// per-iteration cost is carried in `comp`.
    IterD {
        trips: u64,
        estimated: bool,
        /// When this IterD abstracts a local computation phase (the
        /// sequentialized forall), its parameters live here.
        comp: Option<Box<CompPhase>>,
        body: Vec<AauId>,
    },
    /// Deterministic conditional: weighted arms (the forall mask's CondtD
    /// child in Figure 2, and IF statements).
    CondtD {
        arms: Vec<(f64, Vec<AauId>)>,
        else_arm: Vec<AauId>,
    },
    /// A communication/synchronization operation.
    Comm {
        phase: CommPhase,
        table_index: usize,
    },
    /// A parallel I/O phase (striped READ/WRITE/CHECKPOINT over the
    /// machine's I/O servers).
    Io { phase: hpf_io::IoPhase },
}

/// One Application Abstraction Unit.
#[derive(Debug, Clone)]
pub struct Aau {
    pub id: AauId,
    pub kind: AauKind,
    pub label: String,
    pub span: Span,
}

/// Status of a communication in the communication table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommStatus {
    /// Specified but not yet interpreted/simulated.
    Pending,
    /// Interpreted/executed.
    Done,
}

/// One row of the communication table (§4.2).
#[derive(Debug, Clone)]
pub struct CommRecord {
    pub aau: AauId,
    pub op: CollectiveOp,
    pub bytes_per_node: u64,
    pub participants: usize,
    pub status: CommStatus,
}

/// The Application Abstraction Graph; with `comm_edges` superimposed it is
/// the Synchronized AAG (SAAG).
#[derive(Debug, Clone)]
pub struct Aag {
    pub aaus: Vec<Aau>,
    /// Top-level control sequence (AAU ids, in program order).
    pub top: Vec<AauId>,
    /// The communication table.
    pub comm_table: Vec<CommRecord>,
    /// SAAG synchronization edges: (comm AAU → dependent AAU).
    pub comm_edges: Vec<(AauId, AauId)>,
}

impl Aag {
    pub fn aau(&self, id: AauId) -> &Aau {
        &self.aaus[id]
    }

    /// Number of AAUs of each broad class (diagnostics).
    pub fn census(&self) -> AagCensus {
        let mut c = AagCensus::default();
        for a in &self.aaus {
            match a.kind {
                AauKind::Start | AauKind::End => {}
                AauKind::Seq { .. } => c.seq += 1,
                AauKind::IterD { .. } => c.iterd += 1,
                AauKind::CondtD { .. } => c.condtd += 1,
                AauKind::Comm { .. } => c.comm += 1,
                AauKind::Io { .. } => c.io += 1,
            }
        }
        c
    }

    /// All AAUs whose span covers the given 1-based source line — the
    /// per-line query interface of the output module (§4.2).
    pub fn aaus_on_line(&self, line: u32) -> Vec<AauId> {
        self.aaus
            .iter()
            .filter(|a| a.span.covers_line(line))
            .map(|a| a.id)
            .collect()
    }

    /// Figure-2 style outline of the (S)AAG.
    pub fn outline(&self) -> String {
        let mut out = String::new();
        self.outline_seq(&self.top, 0, &mut out);
        out
    }

    fn outline_seq(&self, ids: &[AauId], depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        for &id in ids {
            let a = &self.aaus[id];
            match &a.kind {
                AauKind::Start => out.push_str(&format!("{pad}Start\n")),
                AauKind::End => out.push_str(&format!("{pad}End\n")),
                AauKind::Seq { .. } => out.push_str(&format!("{pad}Seq    {}\n", a.label)),
                AauKind::Comm { phase, .. } => {
                    out.push_str(&format!("{pad}Comm   {} {:?}\n", a.label, phase.op))
                }
                AauKind::Io { phase } => {
                    out.push_str(&format!("{pad}Io     {}\n", phase.outline()))
                }
                AauKind::IterD {
                    trips, comp, body, ..
                } => {
                    out.push_str(&format!("{pad}IterD  {} x{trips}\n", a.label));
                    if let Some(c) = comp {
                        if c.mask_density_hint.is_some() {
                            out.push_str(&format!("{pad}  CondtD mask\n"));
                        }
                    }
                    self.outline_seq(body, depth + 1, out);
                }
                AauKind::CondtD { arms, else_arm } => {
                    for (i, (p, b)) in arms.iter().enumerate() {
                        out.push_str(&format!("{pad}CondtD {} arm {i} (p~{p:.2})\n", a.label));
                        self.outline_seq(b, depth + 1, out);
                    }
                    if !else_arm.is_empty() {
                        out.push_str(&format!("{pad}CondtD {} else\n", a.label));
                        self.outline_seq(else_arm, depth + 1, out);
                    }
                }
            }
        }
    }
}

/// Census of AAU classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AagCensus {
    pub seq: usize,
    pub iterd: usize,
    pub condtd: usize,
    pub comm: usize,
    pub io: usize,
}

/// Build the AAG/SAAG from a compiled SPMD program — the abstraction parse.
pub fn build_aag(spmd: &SpmdProgram) -> Aag {
    let _span = hpf_trace::span("build_aag");
    let mut b = Builder {
        aaus: Vec::new(),
        comm_table: Vec::new(),
        comm_edges: Vec::new(),
    };
    let start = b.push(AauKind::Start, "start", Span::SYNTHETIC);
    let mut top = vec![start];
    let mut pending_comms: Vec<AauId> = Vec::new();
    for n in &spmd.body {
        top.push(b.node(n, &mut pending_comms));
    }
    let end = b.push(AauKind::End, "end", Span::SYNTHETIC);
    top.push(end);
    Aag {
        aaus: b.aaus,
        top,
        comm_table: b.comm_table,
        comm_edges: b.comm_edges,
    }
}

struct Builder {
    aaus: Vec<Aau>,
    comm_table: Vec<CommRecord>,
    comm_edges: Vec<(AauId, AauId)>,
}

impl Builder {
    fn push(&mut self, kind: AauKind, label: impl Into<String>, span: Span) -> AauId {
        let id = self.aaus.len();
        self.aaus.push(Aau {
            id,
            kind,
            label: label.into(),
            span,
        });
        id
    }

    fn node(&mut self, n: &SpmdNode, pending_comms: &mut Vec<AauId>) -> AauId {
        match n {
            SpmdNode::Seq(s) => self.seq(s),
            SpmdNode::Comm(c) => {
                let id = self.comm(c);
                pending_comms.push(id);
                id
            }
            SpmdNode::Io { phase, span } => self.push(
                AauKind::Io {
                    phase: phase.clone(),
                },
                format!("{} io", phase.kind.label()),
                *span,
            ),
            SpmdNode::Comp(c) => {
                let id = self.comp(c);
                // SAAG edges: the gather communications this computation
                // depends on.
                for cm in pending_comms.drain(..) {
                    self.comm_edges.push((cm, id));
                }
                id
            }
            SpmdNode::Loop {
                var,
                trips,
                estimated,
                body,
                span,
            } => {
                let mut inner_pending = Vec::new();
                let body_ids: Vec<AauId> = body
                    .iter()
                    .map(|c| self.node(c, &mut inner_pending))
                    .collect();
                self.push(
                    AauKind::IterD {
                        trips: *trips,
                        estimated: *estimated,
                        comp: None,
                        body: body_ids,
                    },
                    format!("do {var}"),
                    *span,
                )
            }
            SpmdNode::Branch {
                arms,
                else_body,
                span,
            } => {
                let mut built_arms = Vec::new();
                for (p, body) in arms {
                    let mut inner_pending = Vec::new();
                    let ids: Vec<AauId> = body
                        .iter()
                        .map(|c| self.node(c, &mut inner_pending))
                        .collect();
                    built_arms.push((*p, ids));
                }
                let mut inner_pending = Vec::new();
                let else_ids: Vec<AauId> = else_body
                    .iter()
                    .map(|c| self.node(c, &mut inner_pending))
                    .collect();
                self.push(
                    AauKind::CondtD {
                        arms: built_arms,
                        else_arm: else_ids,
                    },
                    "if",
                    *span,
                )
            }
        }
    }

    fn seq(&mut self, s: &SeqBlock) -> AauId {
        self.push(AauKind::Seq { ops: s.ops }, s.label.clone(), s.span)
    }

    fn comm(&mut self, c: &CommPhase) -> AauId {
        let table_index = self.comm_table.len();
        let id = self.push(
            AauKind::Comm {
                phase: c.clone(),
                table_index,
            },
            c.label.clone(),
            c.span,
        );
        self.comm_table.push(CommRecord {
            aau: id,
            op: c.op,
            bytes_per_node: c.bytes_per_node,
            participants: c.participants,
            status: CommStatus::Pending,
        });
        id
    }

    fn comp(&mut self, c: &CompPhase) -> AauId {
        self.push(
            AauKind::IterD {
                trips: c.max_node_iters(),
                estimated: false,
                comp: Some(Box::new(c.clone())),
                body: Vec::new(),
            },
            c.label.clone(),
            c.span,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_compiler::{compile, CompileOptions};
    use hpf_lang::{analyze, parse_program};
    use std::collections::BTreeMap;

    fn aag_for(src: &str, nodes: usize) -> Aag {
        let p = parse_program(src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let spmd = compile(
            &a,
            &CompileOptions {
                nodes,
                ..Default::default()
            },
        )
        .unwrap();
        build_aag(&spmd)
    }

    /// The paper's own Figure-2 example.
    const FIG2: &str = "
PROGRAM FIG2
INTEGER, PARAMETER :: N = 64
REAL X(N), V(N), G(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN X(I) WITH T(I)
!HPF$ ALIGN V(I) WITH T(I)
!HPF$ ALIGN G(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
FORALL (K=2:N-1, V(K) .GT. 0.0) X(K+1) = X(K) + G(K)
END
";

    #[test]
    fn figure2_abstraction_shape() {
        let aag = aag_for(FIG2, 4);
        let census = aag.census();
        assert!(census.comm >= 1, "outline:\n{}", aag.outline());
        assert_eq!(census.iterd, 1);
        let iterd = aag
            .aaus
            .iter()
            .find_map(|a| match &a.kind {
                AauKind::IterD { comp: Some(c), .. } => Some(c),
                _ => None,
            })
            .expect("comp IterD");
        assert!(iterd.mask_density_hint.is_some());
        let o = aag.outline();
        assert!(o.contains("Comm"), "{o}");
        assert!(o.contains("IterD"), "{o}");
        assert!(o.contains("CondtD"), "{o}");
    }

    #[test]
    fn comm_table_populated() {
        let aag = aag_for(FIG2, 4);
        assert!(!aag.comm_table.is_empty());
        for r in &aag.comm_table {
            assert_eq!(r.status, CommStatus::Pending);
            assert!(r.bytes_per_node > 0);
            assert_eq!(r.participants, 4);
            assert!(matches!(aag.aau(r.aau).kind, AauKind::Comm { .. }));
        }
    }

    #[test]
    fn saag_edges_link_comm_to_comp() {
        let aag = aag_for(FIG2, 4);
        assert!(!aag.comm_edges.is_empty());
        for (from, to) in &aag.comm_edges {
            assert!(matches!(aag.aau(*from).kind, AauKind::Comm { .. }));
            assert!(matches!(aag.aau(*to).kind, AauKind::IterD { .. }));
        }
    }

    #[test]
    fn per_line_query() {
        let aag = aag_for(FIG2, 4);
        let forall_line = FIG2
            .lines()
            .position(|l| l.starts_with("FORALL"))
            .expect("forall present") as u32
            + 1;
        let hits = aag.aaus_on_line(forall_line);
        assert!(!hits.is_empty());
        assert!(hits
            .iter()
            .any(|&id| matches!(aag.aau(id).kind, AauKind::IterD { .. })));
    }

    #[test]
    fn loops_nest_in_aag() {
        let src = "
PROGRAM L
INTEGER, PARAMETER :: N = 16
REAL A(N)
INTEGER K
!HPF$ PROCESSORS P(2)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
DO K = 1, 5
A = A + 1.0
END DO
END
";
        let aag = aag_for(src, 2);
        let outer = aag
            .aaus
            .iter()
            .find(|a| matches!(&a.kind, AauKind::IterD { comp: None, .. }))
            .expect("loop IterD");
        if let AauKind::IterD { trips, body, .. } = &outer.kind {
            assert_eq!(*trips, 5);
            assert!(!body.is_empty());
        }
    }

    #[test]
    fn start_end_bracket_top() {
        let aag = aag_for(FIG2, 4);
        assert!(matches!(aag.aau(aag.top[0]).kind, AauKind::Start));
        assert!(matches!(
            aag.aau(*aag.top.last().unwrap()).kind,
            AauKind::End
        ));
    }

    #[test]
    fn census_counts() {
        let aag = aag_for(FIG2, 4);
        let c = aag.census();
        assert_eq!(c.comm, aag.comm_table.len(), "census comm must match table");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use hpf_compiler::{compile, CompileOptions};
    use hpf_lang::{analyze, parse_program};
    use std::collections::BTreeMap;

    fn aag_for(src: &str, nodes: usize) -> Aag {
        let p = parse_program(src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let spmd = compile(
            &a,
            &CompileOptions {
                nodes,
                ..Default::default()
            },
        )
        .unwrap();
        build_aag(&spmd)
    }

    #[test]
    fn comm_edges_form_inside_loops() {
        // Gather/shift inside a DO loop must still get SAAG edges to the
        // computation they feed.
        let src = "
PROGRAM L
INTEGER, PARAMETER :: N = 64
REAL A(N), B(N)
INTEGER K
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN A(I) WITH T(I)
!HPF$ ALIGN B(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
DO K = 1, 5
FORALL (I = 2:N) A(I) = B(I-1)
END DO
END
";
        let aag = aag_for(src, 4);
        assert!(!aag.comm_edges.is_empty(), "{}", aag.outline());
        for (from, to) in &aag.comm_edges {
            assert!(matches!(aag.aau(*from).kind, AauKind::Comm { .. }));
            assert!(matches!(aag.aau(*to).kind, AauKind::IterD { .. }));
        }
    }

    #[test]
    fn conditional_arms_nest_subgraphs() {
        let src = "
PROGRAM C
INTEGER, PARAMETER :: N = 64
REAL A(N), X
!HPF$ PROCESSORS P(2)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
X = 2.0
IF (X > 1.0) THEN
A = A + 1.0
ELSE
A = A - 1.0
END IF
END
";
        let aag = aag_for(src, 2);
        let cond = aag
            .aaus
            .iter()
            .find(|a| matches!(&a.kind, AauKind::CondtD { .. }))
            .expect("CondtD");
        if let AauKind::CondtD { arms, else_arm } = &cond.kind {
            assert_eq!(arms.len(), 1);
            assert!(!arms[0].1.is_empty());
            assert!(!else_arm.is_empty());
        }
        let o = aag.outline();
        assert!(o.contains("CondtD"), "{o}");
    }

    #[test]
    fn aau_ids_are_dense_and_self_consistent() {
        let src = "
PROGRAM D
INTEGER, PARAMETER :: N = 32
REAL A(N), S
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
A = 1.0
S = SUM(A)
END
";
        let aag = aag_for(src, 4);
        for (i, a) in aag.aaus.iter().enumerate() {
            assert_eq!(a.id, i);
        }
        for &id in &aag.top {
            assert!(id < aag.aaus.len());
        }
        for r in &aag.comm_table {
            assert!(r.aau < aag.aaus.len());
        }
    }
}
