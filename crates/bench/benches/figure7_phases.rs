//! Figure 7 regeneration bench: the per-phase performance-debugging profile
//! of the stock option pricing model (comp/comm/overhead per phase).

use criterion::{criterion_group, criterion_main, Criterion};
use report::experiments::figure7;
use std::hint::black_box;

fn bench_figure7(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure7");
    g.sample_size(10);
    g.bench_function("financial_phase_profile/n256/p4", |b| {
        b.iter(|| {
            let phases = figure7(black_box(256), black_box(4));
            assert_eq!(phases.len(), 2);
            phases
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figure7);
criterion_main!(benches);
