//! Figure 8 regeneration bench: the cost comparison itself — how long the
//! interpretive path takes vs the "run it on the machine" path for the same
//! experiment. Criterion's per-target timing IS the figure's data.

use criterion::{criterion_group, criterion_main, Criterion};
use report::pipeline::{predict_source, simulate_source, PredictOptions, SimulateOptions};
use std::hint::black_box;

fn bench_paths(c: &mut Criterion) {
    let src = kernels::kernel_by_name("Laplace (Blk-X)")
        .unwrap()
        .source(128, 4);
    let mut g = c.benchmark_group("figure8");
    g.sample_size(10);
    g.bench_function("interpreter_path", |b| {
        b.iter(|| predict_source(black_box(&src), &PredictOptions::with_nodes(4)).unwrap())
    });
    g.bench_function("machine_path_1000runs", |b| {
        b.iter(|| {
            let mut o = SimulateOptions::with_nodes(4);
            o.sim.runs = 1000;
            simulate_source(black_box(&src), &o).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);
