//! Figures 4 & 5 regeneration bench: predict + measure one Laplace point
//! per distribution per machine size. The series these produce are the
//! figure's curves (estimated and measured execution time vs problem size).

use criterion::{criterion_group, criterion_main, Criterion};
use kernels::{Kernel, KernelKind, LaplaceDist};
use report::pipeline::{predict_source, simulate_source, PredictOptions, SimulateOptions};
use std::hint::black_box;

fn kernel(dist: LaplaceDist) -> Kernel {
    Kernel {
        kind: KernelKind::Laplace(dist),
        name: "Laplace",
        description: "",
        is_kernel: false,
        size_range: (16, 256),
    }
}

fn bench_laplace(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures4_5");
    g.sample_size(10);
    for procs in [4usize, 8] {
        for dist in [
            LaplaceDist::BlockBlock,
            LaplaceDist::BlockStar,
            LaplaceDist::StarBlock,
        ] {
            let src = kernel(dist).source(128, procs);
            g.bench_function(format!("estimate/{}/p{procs}", dist.label()), |b| {
                b.iter(|| {
                    predict_source(black_box(&src), &PredictOptions::with_nodes(procs)).unwrap()
                })
            });
            g.bench_function(format!("measure/{}/p{procs}", dist.label()), |b| {
                b.iter(|| {
                    let mut o = SimulateOptions::with_nodes(procs);
                    o.sim.runs = 20;
                    o.use_profile = false;
                    simulate_source(black_box(&src), &o).unwrap()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_laplace);
criterion_main!(benches);
