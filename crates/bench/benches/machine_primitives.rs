//! Microbenchmarks of the machine substrate: collective cost evaluation,
//! event-level phase simulation, hypercube routing, and the functional
//! interpreter's element throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use hpf_lang::{analyze, parse_program};
use ipsc_sim::network::{patterns, simulate_phase};
use machine::{ipsc860, CollectiveOp, Hypercube};
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench_machine(c: &mut Criterion) {
    let m = ipsc860(8);
    let mut g = c.benchmark_group("machine");

    g.bench_function("collective_model/reduce_p8", |b| {
        b.iter(|| m.collective_time(black_box(CollectiveOp::Reduce), 8, 4))
    });

    let cube = Hypercube { dim: 3 };
    let shift = patterns::shift(8, 1024);
    g.bench_function("des_phase/shift_p8_1k", |b| {
        b.iter(|| simulate_phase(cube, &m.comm, 8, black_box(&shift)))
    });

    g.bench_function("ecube_routes/all_pairs_d5", |b| {
        let h = Hypercube { dim: 5 };
        b.iter(|| {
            let mut total = 0u32;
            for a in 0..h.nodes() {
                for b2 in 0..h.nodes() {
                    total += h.route(a, b2).len() as u32;
                }
            }
            total
        })
    });

    g.bench_function("calibration/fit_p8", |b| {
        b.iter(|| ipsc_sim::calibrate(black_box(8)))
    });
    g.finish();

    let mut g = c.benchmark_group("functional_interpreter");
    g.sample_size(10);
    let src = "
PROGRAM T
INTEGER, PARAMETER :: N = 4096
REAL A(N), B(N), S
FORALL (I = 1:N) A(I) = I * 0.5
B = CSHIFT(A, 1)
FORALL (I = 1:N) A(I) = A(I) + B(I) * 2.0
S = SUM(A)
END
";
    let p = parse_program(src).unwrap();
    let a = analyze(&p, &BTreeMap::new()).unwrap();
    g.bench_function("eval_4096_elements", |b| {
        b.iter(|| hpf_eval::run(black_box(&a)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
