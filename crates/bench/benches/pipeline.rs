//! Microbenchmarks of the prediction pipeline stages: parse → analyze →
//! compile (Phase 1) → abstract (AAG) → interpret (Phase 2). The point of
//! the paper is that this whole chain is interactive-speed; these benches
//! quantify it stage by stage.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hpf_compiler::{compile, CompileOptions};
use hpf_lang::{analyze, parse_program};
use interp::InterpretationEngine;
use std::collections::BTreeMap;
use std::hint::black_box;

fn laplace_src() -> String {
    kernels::kernel_by_name("Laplace (Blk-X)")
        .unwrap()
        .source(256, 4)
}

fn bench_pipeline(c: &mut Criterion) {
    let src = laplace_src();
    let mut g = c.benchmark_group("pipeline");

    g.bench_function("parse", |b| {
        b.iter(|| parse_program(black_box(&src)).unwrap())
    });

    let parsed = parse_program(&src).unwrap();
    g.bench_function("analyze", |b| {
        b.iter(|| analyze(black_box(&parsed), &BTreeMap::new()).unwrap())
    });

    let analyzed = analyze(&parsed, &BTreeMap::new()).unwrap();
    let copts = CompileOptions {
        nodes: 4,
        ..Default::default()
    };
    g.bench_function("compile_phase1", |b| {
        b.iter(|| compile(black_box(&analyzed), &copts).unwrap())
    });

    let spmd = compile(&analyzed, &copts).unwrap();
    g.bench_function("abstraction_parse", |b| {
        b.iter(|| appgraph::build_aag(black_box(&spmd)))
    });

    let aag = appgraph::build_aag(&spmd);
    let machine = ipsc_sim::calibrate(4);
    let engine = InterpretationEngine::new(&machine);
    g.bench_function("interpretation_parse", |b| {
        b.iter(|| engine.interpret(black_box(&aag)))
    });

    g.bench_function("end_to_end_predict", |b| {
        b.iter_batched(
            || src.clone(),
            |s| {
                report::pipeline::predict_source(
                    &s,
                    &report::pipeline::PredictOptions::with_nodes(4),
                )
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
