//! Table 2 regeneration bench: one predicted-vs-measured accuracy sample
//! per representative application class (a Livermore kernel, a Purdue
//! problem, and each "real-life" application). Each iteration performs the
//! full prediction *and* the simulated measurement, i.e. one Table-2 cell.

use criterion::{criterion_group, criterion_main, Criterion};
use report::experiments::{accuracy_sample, SweepConfig};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut cfg = SweepConfig::quick();
    cfg.runs = 20;
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    for (name, size, procs) in [
        ("LFK 1", 256usize, 4usize),
        ("LFK 22", 256, 4),
        ("PBS 4", 256, 4),
        ("PI", 512, 8),
        ("N-Body", 64, 4),
        ("Financial", 128, 4),
        ("Laplace (Blk-X)", 64, 4),
    ] {
        let kernel = kernels::kernel_by_name(name).unwrap();
        g.bench_function(format!("{name}/n{size}/p{procs}"), |b| {
            b.iter(|| {
                let s = accuracy_sample(black_box(&kernel), size, procs, &cfg).unwrap();
                assert!(s.abs_error_pct.is_finite());
                s
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
