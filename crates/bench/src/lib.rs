//! Criterion benchmark crate: bench targets live under `benches/`.
//! See `hpf-report` for the experiment drivers they exercise.

