//! # hpf-bench — the repository's performance trajectory
//!
//! A fixed benchmark suite over the full pipeline (parse → sema → compile
//! → AAG → interpret → simulate), timed through the `hpf-trace` span
//! instrumentation rather than external timers: each iteration resets the
//! trace store, runs the case, and reads the per-stage span totals back.
//! Medians and p95s across iterations land in `BENCH_pipeline.json`
//! (schema [`SCHEMA`]), and [`compare`] diffs two such files, flagging any
//! median regression past 20 % — the CI perf gate. [`analyze_trend`] looks at
//! the whole checked-in series (`bench_history/`) instead of one pair,
//! catching slow cumulative drift the pairwise gate is blind to.
//!
//! The Criterion micro-benches under `benches/` remain for interactive
//! exploration; this library is the *stable-schema* harness the perf
//! trajectory is recorded with.

use hpf_trace::json::{self, Value};
use std::collections::BTreeMap;

/// Schema identifier written into every report.
pub const SCHEMA: &str = "hpf-bench/v1";

/// Default regression tolerance for [`compare`]: +20 % on a stage median.
pub const DEFAULT_TOLERANCE_PCT: f64 = 20.0;

/// Default absolute floor: median deltas below this many seconds are never
/// flagged (sub-millisecond stages are noise-dominated on shared CI boxes).
pub const DEFAULT_MIN_DELTA_S: f64 = 5e-4;

mod suite;
mod trend;
pub use suite::{bench_suite, BenchCase, SuiteKind};
pub use trend::{
    analyze_trend, TrendConfig, TrendDrop, TrendReport, TrendRow, DEFAULT_TREND_GATE_PCT,
};

/// Per-stage timing statistics across the iterations of one case.
#[derive(Debug, Clone)]
pub struct StageStat {
    /// Stage key: a span path flattened to its leaf (`parse`, `simulate`,
    /// …) or the synthetic `total` (whole-case wall time).
    pub stage: String,
    pub median_s: f64,
    pub p95_s: f64,
    pub min_s: f64,
    pub max_s: f64,
    pub samples: usize,
}

/// One benchmarked case: stage stats plus the trace counters of the last
/// iteration (deterministic, so any iteration's counters are the run's).
#[derive(Debug, Clone)]
pub struct CaseResult {
    pub name: String,
    pub stages: Vec<StageStat>,
    pub counters: BTreeMap<String, u64>,
}

/// A full bench report (what `BENCH_pipeline.json` holds).
#[derive(Debug, Clone)]
pub struct BenchReport {
    pub suite: String,
    pub iters: usize,
    pub cases: Vec<CaseResult>,
}

fn median_of(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

fn percentile_of(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Aggregate per-iteration `{stage → seconds}` maps into [`StageStat`]s.
/// A stage missing from an iteration contributes 0 s for it (stages are
/// structural, so this only happens when a run errored).
pub fn aggregate_stages(iterations: &[BTreeMap<String, f64>]) -> Vec<StageStat> {
    let mut keys: Vec<&String> = Vec::new();
    for it in iterations {
        for k in it.keys() {
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
    }
    keys.sort();
    keys.iter()
        .map(|&k| {
            let mut vals: Vec<f64> = iterations
                .iter()
                .map(|it| it.get(k).copied().unwrap_or(0.0))
                .collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            StageStat {
                stage: k.clone(),
                median_s: median_of(&vals),
                p95_s: percentile_of(&vals, 0.95),
                min_s: *vals.first().unwrap_or(&0.0),
                max_s: *vals.last().unwrap_or(&0.0),
                samples: vals.len(),
            }
        })
        .collect()
}

/// Run one case `iters` times (plus one discarded warm-up that also fills
/// the calibration cache) and collect per-stage stats from the span data.
pub fn run_case(case: &BenchCase, iters: usize) -> CaseResult {
    // Warm-up: populates the per-node-count calibration cache and faults in
    // code paths, outside the measured window.
    (case.run)();

    let mut iterations: Vec<BTreeMap<String, f64>> = Vec::with_capacity(iters);
    let mut counters = BTreeMap::new();
    for _ in 0..iters {
        hpf_trace::reset();
        hpf_trace::enable();
        let started = std::time::Instant::now();
        (case.run)();
        let total = started.elapsed().as_secs_f64();
        hpf_trace::disable();

        // Flatten span paths to leaves: the same stage may appear under
        // several parents (predict/frontend/parse, measure/frontend/parse)
        // and per-leaf totals are what the trajectory tracks.
        let mut stages: BTreeMap<String, f64> = BTreeMap::new();
        for s in hpf_trace::span_snapshot() {
            *stages.entry(s.leaf().to_string()).or_insert(0.0) += s.total_s();
        }
        stages.insert("total".into(), total);
        counters = hpf_trace::registry::counters_snapshot()
            .into_iter()
            .collect();
        iterations.push(stages);
    }
    CaseResult {
        name: case.name.clone(),
        stages: aggregate_stages(&iterations),
        counters,
    }
}

/// Run the whole suite.
pub fn run_suite(kind: SuiteKind, iters: usize) -> BenchReport {
    let cases = bench_suite(kind);
    let mut results = Vec::with_capacity(cases.len());
    for case in &cases {
        eprintln!("bench: {} ({iters} iterations) …", case.name);
        results.push(run_case(case, iters));
    }
    BenchReport {
        suite: kind.label().to_string(),
        iters,
        cases: results,
    }
}

// ---- JSON encoding / decoding -----------------------------------------

impl BenchReport {
    /// Serialize in the stable `hpf-bench/v1` schema.
    pub fn to_json(&self) -> String {
        let cases: Vec<Value> = self
            .cases
            .iter()
            .map(|c| {
                let stages: Vec<Value> = c
                    .stages
                    .iter()
                    .map(|s| {
                        Value::obj(vec![
                            ("stage", Value::Str(s.stage.clone())),
                            ("median_s", Value::Num(s.median_s)),
                            ("p95_s", Value::Num(s.p95_s)),
                            ("min_s", Value::Num(s.min_s)),
                            ("max_s", Value::Num(s.max_s)),
                            ("samples", Value::Num(s.samples as f64)),
                        ])
                    })
                    .collect();
                let counters = Value::Obj(
                    c.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
                        .collect(),
                );
                Value::obj(vec![
                    ("name", Value::Str(c.name.clone())),
                    ("stages", Value::Arr(stages)),
                    ("counters", counters),
                ])
            })
            .collect();
        Value::obj(vec![
            ("schema", Value::Str(SCHEMA.into())),
            ("suite", Value::Str(self.suite.clone())),
            ("iters", Value::Num(self.iters as f64)),
            ("cases", Value::Arr(cases)),
        ])
        .pretty()
    }

    /// Parse a `hpf-bench/v1` document.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        if v.get("schema").and_then(|s| s.as_str()) != Some(SCHEMA) {
            return Err(format!(
                "unsupported schema {:?} (expected {SCHEMA:?})",
                v.get("schema")
                    .and_then(|s| s.as_str())
                    .unwrap_or("<missing>")
            ));
        }
        let suite = v
            .get("suite")
            .and_then(|s| s.as_str())
            .unwrap_or("unknown")
            .to_string();
        let iters = v.get("iters").and_then(|n| n.as_f64()).unwrap_or(0.0) as usize;
        let mut cases = Vec::new();
        for c in v.get("cases").and_then(|c| c.as_arr()).unwrap_or(&[]) {
            let name = c
                .get("name")
                .and_then(|n| n.as_str())
                .ok_or("case missing name")?
                .to_string();
            let mut stages = Vec::new();
            for s in c.get("stages").and_then(|s| s.as_arr()).unwrap_or(&[]) {
                let num = |k: &str| s.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
                stages.push(StageStat {
                    stage: s
                        .get("stage")
                        .and_then(|x| x.as_str())
                        .ok_or("stage missing name")?
                        .to_string(),
                    median_s: num("median_s"),
                    p95_s: num("p95_s"),
                    min_s: num("min_s"),
                    max_s: num("max_s"),
                    samples: num("samples") as usize,
                });
            }
            let counters = c
                .get("counters")
                .and_then(|m| m.as_obj())
                .map(|m| {
                    m.iter()
                        .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n as u64)))
                        .collect()
                })
                .unwrap_or_default();
            cases.push(CaseResult {
                name,
                stages,
                counters,
            });
        }
        Ok(BenchReport {
            suite,
            iters,
            cases,
        })
    }
}

// ---- compare -----------------------------------------------------------

/// One finding of [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// `new` median exceeds `old` median by more than the tolerance (and
    /// the absolute floor).
    Regression {
        case: String,
        stage: String,
        old_s: f64,
        new_s: f64,
        pct: f64,
    },
    /// `new` median improved by more than the tolerance (informational).
    Improvement {
        case: String,
        stage: String,
        old_s: f64,
        new_s: f64,
        pct: f64,
    },
    /// A case or stage present in `old` is missing from `new` — schema
    /// drift, treated as a failure.
    Missing { case: String, stage: Option<String> },
}

impl Finding {
    /// Does this finding fail the gate?
    pub fn is_failure(&self) -> bool {
        !matches!(self, Finding::Improvement { .. })
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::Regression {
                case,
                stage,
                old_s,
                new_s,
                pct,
            } => write!(
                f,
                "REGRESSION  {case} / {stage}: {:.3} ms -> {:.3} ms (+{pct:.1}%)",
                old_s * 1e3,
                new_s * 1e3
            ),
            Finding::Improvement {
                case,
                stage,
                old_s,
                new_s,
                pct,
            } => write!(
                f,
                "improvement {case} / {stage}: {:.3} ms -> {:.3} ms ({pct:.1}%)",
                old_s * 1e3,
                new_s * 1e3
            ),
            Finding::Missing {
                case,
                stage: Some(stage),
            } => {
                write!(
                    f,
                    "MISSING     {case} / {stage}: stage absent from new report"
                )
            }
            Finding::Missing { case, stage: None } => {
                write!(f, "MISSING     {case}: case absent from new report")
            }
        }
    }
}

/// Comparison knobs.
#[derive(Debug, Clone)]
pub struct CompareConfig {
    /// Relative regression threshold, percent (default 20).
    pub tolerance_pct: f64,
    /// Absolute median-delta floor in seconds; smaller deltas are ignored.
    pub min_delta_s: f64,
    /// Restrict the diff to cases whose name contains this substring
    /// (`None` = every case). Lets CI gate one stage family — e.g.
    /// `sweep_point` — at a tighter tolerance than the rest of the suite.
    pub case_filter: Option<String>,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            tolerance_pct: DEFAULT_TOLERANCE_PCT,
            min_delta_s: DEFAULT_MIN_DELTA_S,
            case_filter: None,
        }
    }
}

/// Diff two reports. Returns every finding; the caller fails the gate when
/// any [`Finding::is_failure`] is present (the binary exits nonzero).
pub fn compare(old: &BenchReport, new: &BenchReport, cfg: &CompareConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for oc in &old.cases {
        if let Some(f) = &cfg.case_filter {
            if !oc.name.contains(f.as_str()) {
                continue;
            }
        }
        let Some(nc) = new.cases.iter().find(|c| c.name == oc.name) else {
            findings.push(Finding::Missing {
                case: oc.name.clone(),
                stage: None,
            });
            continue;
        };
        for os in &oc.stages {
            let Some(ns) = nc.stages.iter().find(|s| s.stage == os.stage) else {
                findings.push(Finding::Missing {
                    case: oc.name.clone(),
                    stage: Some(os.stage.clone()),
                });
                continue;
            };
            let delta = ns.median_s - os.median_s;
            if os.median_s <= 0.0 || delta.abs() < cfg.min_delta_s {
                continue;
            }
            let pct = 100.0 * delta / os.median_s;
            if pct > cfg.tolerance_pct {
                findings.push(Finding::Regression {
                    case: oc.name.clone(),
                    stage: os.stage.clone(),
                    old_s: os.median_s,
                    new_s: ns.median_s,
                    pct,
                });
            } else if pct < -cfg.tolerance_pct {
                findings.push(Finding::Improvement {
                    case: oc.name.clone(),
                    stage: os.stage.clone(),
                    old_s: os.median_s,
                    new_s: ns.median_s,
                    pct,
                });
            }
        }
    }
    findings
}

/// Human-readable table of a report (stages ≥ 1 µs median).
pub fn report_text(r: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("suite: {}   iterations: {}\n", r.suite, r.iters));
    for c in &r.cases {
        out.push_str(&format!("\n{}\n", c.name));
        out.push_str("  stage                median        p95\n");
        for s in &c.stages {
            if s.median_s < 1e-6 && s.stage != "total" {
                continue;
            }
            out.push_str(&format!(
                "  {:<20} {:>9.3}ms {:>9.3}ms\n",
                s.stage,
                s.median_s * 1e3,
                s.p95_s * 1e3
            ));
        }
        let interesting: Vec<String> = c
            .counters
            .iter()
            .filter(|(k, v)| **v > 0 && (k.starts_with("sim.fault") || k.starts_with("harness")))
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        if !interesting.is_empty() {
            out.push_str(&format!("  counters: {}\n", interesting.join(" ")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(median: f64) -> BenchReport {
        BenchReport {
            suite: "test".into(),
            iters: 3,
            cases: vec![CaseResult {
                name: "case".into(),
                stages: vec![
                    StageStat {
                        stage: "parse".into(),
                        median_s: 40e-6,
                        p95_s: 50e-6,
                        min_s: 30e-6,
                        max_s: 50e-6,
                        samples: 3,
                    },
                    StageStat {
                        stage: "simulate".into(),
                        median_s: median,
                        p95_s: median * 1.1,
                        min_s: median * 0.9,
                        max_s: median * 1.2,
                        samples: 3,
                    },
                ],
                counters: BTreeMap::from([("sim.events".to_string(), 42u64)]),
            }],
        }
    }

    #[test]
    fn json_roundtrip_preserves_report() {
        let r = report_with(0.01);
        let back = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.suite, "test");
        assert_eq!(back.iters, 3);
        assert_eq!(back.cases.len(), 1);
        assert_eq!(back.cases[0].stages.len(), 2);
        assert_eq!(back.cases[0].stages[1].stage, "simulate");
        assert!((back.cases[0].stages[1].median_s - 0.01).abs() < 1e-12);
        assert_eq!(back.cases[0].counters["sim.events"], 42);
    }

    #[test]
    fn from_json_rejects_other_schemas() {
        assert!(BenchReport::from_json("{\"schema\": \"other/v9\"}").is_err());
        assert!(BenchReport::from_json("not json").is_err());
    }

    #[test]
    fn compare_flags_median_regression_over_20pct() {
        let old = report_with(0.010);
        let new = report_with(0.0125); // +25 %
        let findings = compare(&old, &new, &CompareConfig::default());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            matches!(&findings[0], Finding::Regression { stage, pct, .. }
            if stage == "simulate" && *pct > 20.0)
        );
        assert!(findings[0].is_failure());
    }

    #[test]
    fn compare_passes_within_tolerance() {
        let old = report_with(0.010);
        let new = report_with(0.0115); // +15 %
        assert!(compare(&old, &new, &CompareConfig::default()).is_empty());
    }

    #[test]
    fn compare_ignores_sub_floor_deltas() {
        // parse goes 40 µs → 80 µs (+100 %) but the absolute delta is
        // under the floor — noise, not a regression.
        let old = report_with(0.010);
        let mut new = report_with(0.010);
        assert_eq!(new.cases[0].stages[0].stage, "parse");
        new.cases[0].stages[0].median_s = 80e-6;
        assert!(compare(&old, &new, &CompareConfig::default()).is_empty());
    }

    #[test]
    fn compare_case_filter_restricts_scope() {
        let old = report_with(0.010);
        let new = report_with(0.0125); // +25 %: regresses when in scope
        let filtered = CompareConfig {
            case_filter: Some("no_such_case".into()),
            ..Default::default()
        };
        assert!(compare(&old, &new, &filtered).is_empty());
        let matching = CompareConfig {
            case_filter: Some("cas".into()),
            ..Default::default()
        };
        assert_eq!(compare(&old, &new, &matching).len(), 1);
    }

    #[test]
    fn compare_reports_improvements_without_failing() {
        let old = report_with(0.010);
        let new = report_with(0.005); // −50 %
        let findings = compare(&old, &new, &CompareConfig::default());
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].is_failure());
    }

    #[test]
    fn compare_fails_on_missing_case_or_stage() {
        let old = report_with(0.010);
        let mut new = report_with(0.010);
        new.cases[0].stages.retain(|s| s.stage != "simulate");
        let findings = compare(&old, &new, &CompareConfig::default());
        assert!(findings.iter().any(|f| matches!(f,
            Finding::Missing { stage: Some(s), .. } if s == "simulate")));

        new.cases.clear();
        let findings = compare(&old, &new, &CompareConfig::default());
        assert!(matches!(&findings[0], Finding::Missing { stage: None, .. }));
        assert!(findings[0].is_failure());
    }

    #[test]
    fn aggregate_computes_median_and_p95() {
        let iters: Vec<BTreeMap<String, f64>> = (1..=10)
            .map(|i| BTreeMap::from([("s".to_string(), i as f64)]))
            .collect();
        let stats = aggregate_stages(&iters);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].median_s, 5.5);
        assert_eq!(stats[0].p95_s, 10.0);
        assert_eq!(stats[0].min_s, 1.0);
        assert_eq!(stats[0].max_s, 10.0);
        assert_eq!(stats[0].samples, 10);
    }

    #[test]
    fn stage_schema_is_stable_for_pipeline_case() {
        // The schema contract: a pipeline case must expose the canonical
        // stage set, whatever refactors happen upstream. Guards the CI
        // compare job against silent stage renames.
        let case = &bench_suite(SuiteKind::Quick)[0];
        let r = run_case(case, 1);
        let stages: Vec<&str> = r.stages.iter().map(|s| s.stage.as_str()).collect();
        for required in [
            "parse",
            "sema",
            "compile",
            "build_aag",
            "interpret",
            "simulate",
            "total",
        ] {
            assert!(
                stages.contains(&required),
                "missing stage {required}: {stages:?}"
            );
        }
    }
}
