//! `hpf-bench` — run the fixed benchmark suite or compare two reports.
//!
//! ```text
//! hpf-bench run [--quick] [--iters N] [--out PATH]
//! hpf-bench compare OLD NEW [--tolerance PCT] [--min-delta S] [--case SUBSTR]
//! hpf-bench trend [--gate PCT] [--min-delta S] [--case SUBSTR] [--dir DIR] [FILE...]
//! ```
//!
//! `run` writes a `hpf-bench/v1` JSON report (default
//! `BENCH_pipeline.json`) and prints a human-readable summary. `compare`
//! diffs two reports and exits nonzero when any stage median regressed by
//! more than the tolerance — the CI perf gate. `trend` ingests an ordered
//! series of reports (explicit FILE args in order, or every `*.json`
//! under `--dir` sorted by name) and exits nonzero when any case/stage's
//! cumulative median drift from the first report to the last exceeds the
//! gate — even if every pairwise step passed `compare` — or when a
//! case/stage dropped out of the series.

use hpf_bench::{
    analyze_trend, compare, run_suite, BenchReport, CompareConfig, SuiteKind, TrendConfig,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hpf-bench run [--quick] [--iters N] [--out PATH]\n  \
         hpf-bench compare OLD NEW [--tolerance PCT] [--min-delta S] [--case SUBSTR]\n  \
         hpf-bench trend [--gate PCT] [--min-delta S] [--case SUBSTR] [--dir DIR] [FILE...]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("trend") => cmd_trend(&args[1..]),
        _ => usage(),
    }
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    i: &mut usize,
    flag: &str,
) -> Result<T, String> {
    *i += 1;
    args.get(*i)
        .ok_or(format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("bad value for {flag}"))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut kind = SuiteKind::Full;
    let mut iters = 5usize;
    let mut out = "BENCH_pipeline.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let r = match args[i].as_str() {
            "--quick" => {
                kind = SuiteKind::Quick;
                Ok(())
            }
            "--iters" => parse_flag(args, &mut i, "--iters").map(|n| iters = n),
            "--out" => parse_flag(args, &mut i, "--out").map(|p: String| out = p),
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = r {
            eprintln!("hpf-bench: {e}");
            return usage();
        }
        i += 1;
    }

    let report = run_suite(kind, iters);
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("hpf-bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{}", hpf_bench::report_text(&report));
    println!("\nwrote {out}");
    ExitCode::SUCCESS
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut cfg = CompareConfig::default();
    let mut paths: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let r = match args[i].as_str() {
            "--tolerance" => parse_flag(args, &mut i, "--tolerance").map(|p| cfg.tolerance_pct = p),
            "--min-delta" => parse_flag(args, &mut i, "--min-delta").map(|s| cfg.min_delta_s = s),
            "--case" => {
                parse_flag(args, &mut i, "--case").map(|c: String| cfg.case_filter = Some(c))
            }
            _ => {
                paths.push(&args[i]);
                Ok(())
            }
        };
        if let Err(e) = r {
            eprintln!("hpf-bench: {e}");
            return usage();
        }
        i += 1;
    }
    let [old_path, new_path] = paths.as_slice() else {
        return usage();
    };

    let load = |path: &str| -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("hpf-bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let findings = compare(&old, &new, &cfg);
    if findings.is_empty() {
        println!(
            "OK: no median moved more than {:.0}% (floor {:.1} ms)",
            cfg.tolerance_pct,
            cfg.min_delta_s * 1e3
        );
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    if findings.iter().any(|f| f.is_failure()) {
        eprintln!("hpf-bench: regression gate FAILED");
        ExitCode::FAILURE
    } else {
        println!("only improvements — gate passes");
        ExitCode::SUCCESS
    }
}

fn cmd_trend(args: &[String]) -> ExitCode {
    let mut cfg = TrendConfig::default();
    let mut dir: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let r = match args[i].as_str() {
            "--gate" => parse_flag(args, &mut i, "--gate").map(|p| cfg.gate_pct = p),
            "--min-delta" => parse_flag(args, &mut i, "--min-delta").map(|s| cfg.min_delta_s = s),
            "--case" => {
                parse_flag(args, &mut i, "--case").map(|c: String| cfg.case_filter = Some(c))
            }
            "--dir" => parse_flag(args, &mut i, "--dir").map(|d: String| dir = Some(d)),
            _ => {
                paths.push(args[i].clone());
                Ok(())
            }
        };
        if let Err(e) = r {
            eprintln!("hpf-bench: {e}");
            return usage();
        }
        i += 1;
    }

    // `--dir`: every *.json, sorted by file name — the naming convention
    // (`0001_*.json`, `0002_*.json`, …) carries the series order.
    if let Some(dir) = dir {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("hpf-bench: cannot read {dir}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut found: Vec<String> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .filter_map(|p| p.to_str().map(String::from))
            .collect();
        found.sort();
        paths.extend(found);
    }
    if paths.len() < 2 {
        eprintln!(
            "hpf-bench: trend needs at least two reports, got {}",
            paths.len()
        );
        return ExitCode::FAILURE;
    }

    let mut reports = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("hpf-bench: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match BenchReport::from_json(&text) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("hpf-bench: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let t = analyze_trend(&reports, &cfg);
    print!("{}", t.render());
    if t.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("hpf-bench: trend gate FAILED");
        ExitCode::FAILURE
    }
}
