//! The fixed benchmark suite: Laplace pipeline cases across sizes × proc
//! counts, a trimmed Table 2 sweep, and a trimmed fault-injection sweep.
//! Case names are part of the `BENCH_pipeline.json` schema — renaming one
//! makes the CI compare job fail with a `Missing` finding, deliberately.

use hpf_advisor::{Advisor, AdvisorConfig};
use hpf_serve::api::Api;
use hpf_serve::cache::CacheConfig;
use hpf_serve::http::Request;
use report::checkpoint::{checkpoint_experiment, CheckpointExperimentConfig};
use report::experiments::{table2, SweepConfig};
use report::faults::{default_plans, fault_experiment, FaultExperimentConfig};
use report::sweep::SweepSession;
use report::{predict_source, simulate_source, PredictOptions, SimulateOptions};
use std::sync::Arc;
use std::time::Duration;

/// Which suite to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteKind {
    /// CI-sized: one Laplace configuration, tiny table2/fault sweeps.
    Quick,
    /// The full trajectory suite (Laplace size × proc grid).
    Full,
}

impl SuiteKind {
    pub fn label(&self) -> &'static str {
        match self {
            SuiteKind::Quick => "quick",
            SuiteKind::Full => "full",
        }
    }
}

/// One benchmark case: a stable name and a closure that runs the workload
/// once (the runner handles warm-up, iteration, and span collection).
pub struct BenchCase {
    pub name: String,
    pub run: Box<dyn Fn() + Send + Sync>,
}

/// Predict + simulate one Laplace (Blk-X) configuration — the end-to-end
/// pipeline case. `sim_runs` is kept small: the bench measures stage cost,
/// not statistics quality.
fn laplace_case(size: usize, procs: usize, sim_runs: usize) -> BenchCase {
    BenchCase {
        name: format!("laplace_bx_n{size}_p{procs}"),
        run: Box::new(move || {
            let kernel = kernels::kernel_by_name("Laplace (Blk-X)").expect("kernel");
            let src = kernel.source(size, procs);
            let popts = PredictOptions::with_nodes(procs);
            let pred = predict_source(&src, &popts).expect("predicts");
            assert!(pred.total_seconds() > 0.0);
            let mut sopts = SimulateOptions::with_nodes(procs);
            sopts.sim.runs = sim_runs;
            let meas = simulate_source(&src, &sopts).expect("simulates");
            assert!(meas.measured() > 0.0);
        }),
    }
}

/// The Table 2 accuracy sweep, trimmed for benching: exercises the batch
/// harness (worker threads, isolation) plus every kernel's pipeline.
fn table2_case(max_size: usize, runs: usize) -> BenchCase {
    BenchCase {
        name: format!("table2_sweep_s{max_size}_r{runs}"),
        run: Box::new(move || {
            let cfg = SweepConfig {
                proc_counts: vec![1, 4],
                max_size: Some(max_size),
                runs,
                profile_steps: 2_000_000,
                harness: report::HarnessConfig {
                    timeout: Some(Duration::from_secs(60)),
                    retries: 0,
                },
                share_artifacts: true,
                machine: hpf_machines::DEFAULT_MACHINE.to_string(),
            };
            let out = table2(&cfg);
            assert!(!out.rows.is_empty(), "sweep produced no rows");
        }),
    }
}

/// Steady-state cost of one compile-once sweep point: the session (and its
/// cached profile) is built once at suite construction, so the measured
/// loop is exactly what an interpretation sweep pays per additional
/// (n, procs) point — re-bind, predict, simulate.
fn sweep_point_case(kernel: &str, n: usize, procs: usize) -> BenchCase {
    let k = kernels::kernel_by_name(kernel).expect("kernel");
    let cfg = SweepConfig {
        runs: 20,
        profile_steps: 2_000_000,
        ..Default::default()
    };
    let session = Arc::new(SweepSession::new(&k, &cfg).expect("session"));
    // Warm the profile cache outside the timed region.
    session.evaluate(n, procs).expect("evaluates");
    let mut name_frag = String::new();
    for c in kernel.chars() {
        if c.is_ascii_alphanumeric() {
            name_frag.push(c.to_ascii_lowercase());
        } else if !name_frag.ends_with('_') && !name_frag.is_empty() {
            name_frag.push('_');
        }
    }
    let name_frag = name_frag.trim_end_matches('_');
    BenchCase {
        name: format!("sweep_point_{name_frag}_n{n}_p{procs}"),
        run: Box::new(move || {
            let s = session.evaluate(n, procs).expect("evaluates");
            assert!(s.predicted_s > 0.0 && s.measured_s > 0.0);
        }),
    }
}

/// Steady-state cost of one compile-once sweep point on a non-default
/// machine backend: same shape as [`sweep_point_case`], but the session
/// predicts on the named backend's calibrated model and the discrete-event
/// simulator routes every message through the generic topology walk
/// (dimension-ordered torus / up-down fat-tree) instead of the dedicated
/// hypercube path — the per-point cost the machine registry adds.
fn sweep_point_machine_case(machine: &str, kernel: &str, n: usize, procs: usize) -> BenchCase {
    let k = kernels::kernel_by_name(kernel).expect("kernel");
    let cfg = SweepConfig {
        runs: 20,
        profile_steps: 2_000_000,
        machine: machine.to_string(),
        ..Default::default()
    };
    let session = Arc::new(SweepSession::new(&k, &cfg).expect("session"));
    // Warm the profile cache (and the backend's calibration memo) outside
    // the timed region.
    session.evaluate(n, procs).expect("evaluates");
    BenchCase {
        name: format!("sweep_point_{machine}_n{n}_p{procs}"),
        run: Box::new(move || {
            let s = session.evaluate(n, procs).expect("evaluates");
            assert!(s.predicted_s > 0.0 && s.measured_s > 0.0);
        }),
    }
}

/// Steady-state cost of one compile-once sweep point over an out-of-core
/// kernel: same session shape as [`sweep_point_case`], but every evaluation
/// prices the striped-I/O phases in both frames (analytic `IoComponent` and
/// the DES server queues) — the per-point cost the I/O subsystem adds to a
/// warm sweep.
fn sweep_point_ooc_case(n: usize, procs: usize) -> BenchCase {
    let k = kernels::kernel_by_name("Laplace OOC").expect("kernel");
    let cfg = SweepConfig {
        runs: 20,
        profile_steps: 2_000_000,
        ..Default::default()
    };
    let session = Arc::new(SweepSession::new(&k, &cfg).expect("session"));
    // Warm the profile cache outside the timed region.
    session.evaluate(n, procs).expect("evaluates");
    BenchCase {
        name: format!("sweep_point_ooc_n{n}_p{procs}"),
        run: Box::new(move || {
            let s = session.evaluate(n, procs).expect("evaluates");
            assert!(s.predicted_s > 0.0 && s.measured_s > 0.0);
        }),
    }
}

/// The checkpoint/restart campaign: sweeps checkpoint counts for an
/// out-of-core kernel under a slow-node fault plan, pricing recovery in
/// both frames. Exercises the FaultPlan × CheckpointSchedule composition
/// end to end (compile, I/O phase extraction, degraded interpret, DES with
/// fault injection).
fn checkpoint_restart_case(size: usize, procs: usize, runs: usize) -> BenchCase {
    BenchCase {
        name: format!("checkpoint_restart_n{size}_p{procs}"),
        run: Box::new(move || {
            let cfg = CheckpointExperimentConfig {
                size,
                procs,
                runs,
                profile_steps: 2_000_000,
                ..Default::default()
            };
            let rows = checkpoint_experiment(&cfg).expect("checkpoint experiment runs");
            assert_eq!(rows.len(), cfg.checkpoint_counts.len());
        }),
    }
}

/// The fault-injection campaign (all five standard plans) at bench size:
/// exercises the degraded predictor and the fault-aware network walk.
fn faults_case(size: usize, procs: usize, runs: usize) -> BenchCase {
    BenchCase {
        name: format!("faults_sweep_n{size}_p{procs}"),
        run: Box::new(move || {
            let cfg = FaultExperimentConfig {
                kernel: "Laplace (Blk-X)".into(),
                size,
                procs,
                runs,
                profile_steps: 2_000_000,
                plans: default_plans(),
            };
            let rows = fault_experiment(&cfg).expect("fault experiment runs");
            assert_eq!(rows.len(), default_plans().len());
        }),
    }
}

/// One full directive-space advisor search: enumeration, parallel
/// compile + lower-bound, wave-based branch-and-bound evaluation, and a
/// trimmed simulator cross-check. The advisor re-parses nothing between
/// candidates, so this measures the warm-session fan-out cost.
fn advisor_case(n: usize, procs: usize) -> BenchCase {
    let kernel = kernels::kernel_by_name("Laplace (Blk-Blk)").expect("kernel");
    let advisor = Arc::new(Advisor::for_kernel(&kernel).expect("advisor"));
    let cfg = AdvisorConfig {
        n,
        procs,
        ks: vec![2, 16],
        top_k: 1,
        sim_runs: 10,
        profile_steps: 2_000_000,
        ..AdvisorConfig::default()
    };
    // Warm the shared profile outside the timed region.
    advisor.search(&cfg).expect("search");
    BenchCase {
        name: format!("advisor_search_n{n}_p{procs}"),
        run: Box::new(move || {
            let report = advisor.search(&cfg).expect("search");
            assert!(!report.ranked.is_empty());
        }),
    }
}

/// Steady-state cost of the prediction service's hot path: a batch of
/// warm `POST /v1/predict` requests through `Api::handle` (JSON parse,
/// cache lookups, response serving) with sockets out of the picture. The
/// Api is warmed at suite construction, so the measured loop is what each
/// additional warm request costs the server.
fn serve_predict_case(batch: usize) -> BenchCase {
    let api = Arc::new(Api::new(&CacheConfig::default()));
    let bodies: Vec<String> = [(64, 4), (128, 4), (256, 8), (512, 8)]
        .iter()
        .map(|(n, p)| format!(r#"{{"kernel": "Laplace (Blk-Blk)", "n": {n}, "procs": {p}}}"#))
        .collect();
    let request = |body: &str| Request {
        method: "POST".into(),
        path: "/v1/predict".into(),
        query: String::new(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    };
    // Warm every distinct body (bind + interpret + body cache) outside
    // the timed region.
    for b in &bodies {
        assert_eq!(api.handle(&request(b)).status, 200);
    }
    BenchCase {
        name: format!("serve_predict_warm_b{batch}"),
        run: Box::new(move || {
            for i in 0..batch {
                let resp = api.handle(&request(&bodies[i % bodies.len()]));
                assert_eq!(resp.status, 200);
            }
        }),
    }
}

/// Cost of one batched `/v1/sweep` evaluation through `Api::handle`: the
/// session and bind caches are warm, but the response-body layers are
/// sized to a single entry and two distinct sweep bodies alternate — each
/// request evicts the other's cached body, so every iteration re-runs the
/// batched bind-once/evaluate-many pass (resolve the kernel artifact
/// once, evaluate every sweep point against warm binds, serialize). This
/// is the serving cost the batching layer is supposed to bound, isolated
/// from the response cache that normally hides it.
fn serve_sweep_batched_case() -> BenchCase {
    let api = Arc::new(Api::new(&CacheConfig {
        bodies: 1,
        ..CacheConfig::default()
    }));
    let bodies: Vec<String> = [(32usize, 128usize, 4usize), (64, 256, 8)]
        .iter()
        .map(|(min, max, p)| {
            format!(r#"{{"kernel": "PI", "sizes": {{"min": {min}, "max": {max}}}, "procs": {p}}}"#)
        })
        .collect();
    let request = |body: &str| Request {
        method: "POST".into(),
        path: "/v1/sweep".into(),
        query: String::new(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    };
    // Warm the session, profile, and bind caches outside the timed region.
    for b in &bodies {
        assert_eq!(api.handle(&request(b)).status, 200);
    }
    BenchCase {
        name: "serve_sweep_batched".into(),
        run: Box::new(move || {
            for b in &bodies {
                let resp = api.handle(&request(b));
                assert_eq!(resp.status, 200);
            }
        }),
    }
}

/// Build the suite. Case order is stable (it is the file order in the
/// report); the Quick suite is a strict subset of Full case names so a
/// quick report can be compared against a full baseline.
pub fn bench_suite(kind: SuiteKind) -> Vec<BenchCase> {
    match kind {
        SuiteKind::Quick => vec![
            laplace_case(64, 4, 30),
            table2_case(128, 20),
            sweep_point_case("PI", 512, 4),
            sweep_point_ooc_case(64, 4),
            sweep_point_machine_case("torus3d", "PI", 512, 4),
            sweep_point_machine_case("fattree", "PI", 512, 4),
            advisor_case(96, 8),
            faults_case(64, 4, 30),
            checkpoint_restart_case(32, 4, 20),
            serve_predict_case(256),
            serve_sweep_batched_case(),
        ],
        SuiteKind::Full => vec![
            laplace_case(64, 4, 30),
            laplace_case(128, 4, 30),
            laplace_case(128, 8, 30),
            laplace_case(256, 8, 30),
            table2_case(128, 20),
            table2_case(512, 50),
            sweep_point_case("PI", 512, 4),
            sweep_point_case("Laplace (Blk-Blk)", 256, 8),
            sweep_point_ooc_case(64, 4),
            sweep_point_ooc_case(128, 8),
            sweep_point_machine_case("torus3d", "PI", 512, 4),
            sweep_point_machine_case("fattree", "PI", 512, 4),
            advisor_case(96, 8),
            faults_case(64, 4, 30),
            faults_case(256, 8, 100),
            checkpoint_restart_case(32, 4, 20),
            checkpoint_restart_case(64, 8, 50),
            serve_predict_case(256),
            serve_sweep_batched_case(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_is_subset_of_full() {
        let quick: Vec<String> = bench_suite(SuiteKind::Quick)
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let full: Vec<String> = bench_suite(SuiteKind::Full)
            .iter()
            .map(|c| c.name.clone())
            .collect();
        for name in &quick {
            assert!(
                full.contains(name),
                "quick case {name} missing from full suite"
            );
        }
    }

    #[test]
    fn case_names_are_unique() {
        for kind in [SuiteKind::Quick, SuiteKind::Full] {
            let mut names: Vec<String> = bench_suite(kind).iter().map(|c| c.name.clone()).collect();
            let before = names.len();
            names.sort();
            names.dedup();
            assert_eq!(
                names.len(),
                before,
                "{kind:?} suite has duplicate case names"
            );
        }
    }
}
