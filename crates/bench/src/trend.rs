//! Trend analysis over an ordered series of bench reports.
//!
//! The pairwise [`crate::compare`] gate has a blind spot: a stage that
//! slips +15 % per PR passes every 20 % pairwise check while compounding
//! into a 2–3× slowdown over a handful of merges. `trend` closes it by
//! looking at the whole checked-in history (`bench_history/`) at once:
//! for every case/stage it computes the **cumulative drift** — the
//! relative change from the first report to the last — and a
//! least-squares **slope** per report (the average drift per merge), and
//! fails the gate when the cumulative median drift exceeds the trend
//! tolerance even though every individual step stayed in-band.
//!
//! A case or stage that disappears partway through the series is a
//! failure, not a skip — schema drift hides regressions.

use crate::{BenchReport, DEFAULT_MIN_DELTA_S};

/// Default cumulative-drift gate: +30 % from the first report to the
/// last. Deliberately wider than the 20 % pairwise tolerance (a single
/// step that big is caught by `compare`) but far tighter than what the
/// pairwise gate lets through over several merges (1.2^4 ≈ 2×).
pub const DEFAULT_TREND_GATE_PCT: f64 = 30.0;

/// Trend-analysis knobs.
#[derive(Debug, Clone)]
pub struct TrendConfig {
    /// Cumulative median-drift gate, percent (default 30).
    pub gate_pct: f64,
    /// Absolute floor in seconds on the first→last median delta; smaller
    /// drifts are never violations (sub-millisecond stages are
    /// noise-dominated on shared CI boxes).
    pub min_delta_s: f64,
    /// Restrict the analysis to cases whose name contains this substring.
    pub case_filter: Option<String>,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            gate_pct: DEFAULT_TREND_GATE_PCT,
            min_delta_s: DEFAULT_MIN_DELTA_S,
            case_filter: None,
        }
    }
}

/// The fitted trajectory of one case/stage across the series.
#[derive(Debug, Clone)]
pub struct TrendRow {
    pub case: String,
    pub stage: String,
    /// Median of the first report in the series.
    pub first_s: f64,
    /// Median of the last report.
    pub last_s: f64,
    /// Cumulative drift, percent: `100 * (last - first) / first`.
    pub drift_pct: f64,
    /// Least-squares slope of the median over the report index — the
    /// average seconds gained (or shed) per merge.
    pub slope_s_per_step: f64,
    /// This row trips the gate: drift beyond `gate_pct` with the
    /// absolute delta above the floor.
    pub violation: bool,
}

/// A case/stage that vanished partway through the series.
#[derive(Debug, Clone)]
pub struct TrendDrop {
    pub case: String,
    /// `None`: the whole case is gone.
    pub stage: Option<String>,
    /// Index (0-based) of the first report in the series missing it.
    pub report_index: usize,
}

/// The full trend analysis.
#[derive(Debug, Clone)]
pub struct TrendReport {
    /// Reports analyzed.
    pub reports: usize,
    pub gate_pct: f64,
    /// Every case/stage trajectory, in first-report order.
    pub rows: Vec<TrendRow>,
    /// Cases/stages that dropped out of the series — failures.
    pub dropped: Vec<TrendDrop>,
}

impl TrendReport {
    pub fn passed(&self) -> bool {
        self.dropped.is_empty() && self.rows.iter().all(|r| !r.violation)
    }

    pub fn violations(&self) -> impl Iterator<Item = &TrendRow> {
        self.rows.iter().filter(|r| r.violation)
    }

    /// Human-readable drift table: every violation, every drop, and (for
    /// context) each case's `total` row plus any stage drifting by more
    /// than half the gate.
    pub fn render(&self) -> String {
        let mut out = format!(
            "trend: {} reports, cumulative gate {:.0}%\n\
             case / stage                          first      last    drift     slope\n",
            self.reports, self.gate_pct
        );
        for r in &self.rows {
            let visible =
                r.violation || r.stage == "total" || r.drift_pct.abs() >= self.gate_pct / 2.0;
            if !visible {
                continue;
            }
            out.push_str(&format!(
                "{}  {:<34} {:>8.3}ms {:>8.3}ms {:>+7.1}% {:>+8.4}ms/step\n",
                if r.violation { "DRIFT" } else { "     " },
                format!("{} / {}", r.case, r.stage),
                r.first_s * 1e3,
                r.last_s * 1e3,
                r.drift_pct,
                r.slope_s_per_step * 1e3,
            ));
        }
        for d in &self.dropped {
            match &d.stage {
                Some(stage) => out.push_str(&format!(
                    "DROP   {} / {stage}: absent from report {}\n",
                    d.case, d.report_index
                )),
                None => out.push_str(&format!(
                    "DROP   {}: case absent from report {}\n",
                    d.case, d.report_index
                )),
            }
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

/// Least-squares slope of `ys` over the index `0..n` — zero for a
/// series shorter than two points.
fn slope(ys: &[f64]) -> f64 {
    let n = ys.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mean_x = (nf - 1.0) / 2.0;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in ys.iter().enumerate() {
        let dx = i as f64 - mean_x;
        num += dx * (y - mean_y);
        den += dx * dx;
    }
    num / den
}

/// Analyze an ordered series of reports (oldest first). Needs at least
/// two; the caller is expected to have checked that.
pub fn analyze_trend(reports: &[BenchReport], cfg: &TrendConfig) -> TrendReport {
    let mut rows = Vec::new();
    let mut dropped = Vec::new();
    let first = match reports.first() {
        Some(f) => f,
        None => {
            return TrendReport {
                reports: 0,
                gate_pct: cfg.gate_pct,
                rows,
                dropped,
            }
        }
    };
    for case in &first.cases {
        if let Some(f) = &cfg.case_filter {
            if !case.name.contains(f.as_str()) {
                continue;
            }
        }
        // A case vanishing anywhere in the series fails once, at the
        // first report missing it; its stages are not also reported.
        if let Some(missing_at) = reports
            .iter()
            .position(|r| !r.cases.iter().any(|c| c.name == case.name))
        {
            dropped.push(TrendDrop {
                case: case.name.clone(),
                stage: None,
                report_index: missing_at,
            });
            continue;
        }
        for stage in &case.stages {
            let mut series = Vec::with_capacity(reports.len());
            let mut missing_at = None;
            for (ri, r) in reports.iter().enumerate() {
                let median = r
                    .cases
                    .iter()
                    .find(|c| c.name == case.name)
                    .and_then(|c| c.stages.iter().find(|s| s.stage == stage.stage))
                    .map(|s| s.median_s);
                match median {
                    Some(m) => series.push(m),
                    None => {
                        missing_at = Some(ri);
                        break;
                    }
                }
            }
            if let Some(ri) = missing_at {
                dropped.push(TrendDrop {
                    case: case.name.clone(),
                    stage: Some(stage.stage.clone()),
                    report_index: ri,
                });
                continue;
            }
            let (first_s, last_s) = (series[0], series[series.len() - 1]);
            let drift_pct = if first_s > 0.0 {
                100.0 * (last_s - first_s) / first_s
            } else {
                0.0
            };
            let violation = drift_pct > cfg.gate_pct && (last_s - first_s) >= cfg.min_delta_s;
            rows.push(TrendRow {
                case: case.name.clone(),
                stage: stage.stage.clone(),
                first_s,
                last_s,
                drift_pct,
                slope_s_per_step: slope(&series),
                violation,
            });
        }
    }
    TrendReport {
        reports: reports.len(),
        gate_pct: cfg.gate_pct,
        rows,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CaseResult, StageStat};

    fn report(medians: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            suite: "test".into(),
            iters: 3,
            cases: vec![CaseResult {
                name: "case".into(),
                stages: medians
                    .iter()
                    .map(|(stage, m)| StageStat {
                        stage: stage.to_string(),
                        median_s: *m,
                        p95_s: *m,
                        min_s: *m,
                        max_s: *m,
                        samples: 3,
                    })
                    .collect(),
                counters: Default::default(),
            }],
        }
    }

    #[test]
    fn slope_fits_a_line() {
        assert!((slope(&[1.0, 2.0, 3.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!(slope(&[5.0, 5.0, 5.0]).abs() < 1e-12);
        assert_eq!(slope(&[1.0]), 0.0);
    }

    #[test]
    fn stable_series_passes() {
        let series: Vec<BenchReport> = (0..6).map(|_| report(&[("simulate", 0.010)])).collect();
        let t = analyze_trend(&series, &TrendConfig::default());
        assert!(t.passed(), "{}", t.render());
        assert_eq!(t.rows.len(), 1);
        assert!(t.rows[0].drift_pct.abs() < 1e-9);
    }

    #[test]
    fn sub_floor_drift_is_not_a_violation() {
        // +200 % but only 20 µs absolute — noise on a shared box.
        let series = vec![report(&[("parse", 10e-6)]), report(&[("parse", 30e-6)])];
        let t = analyze_trend(&series, &TrendConfig::default());
        assert!(t.passed(), "{}", t.render());
    }

    #[test]
    fn dropped_stage_fails_with_index() {
        let series = vec![
            report(&[("parse", 0.01), ("simulate", 0.02)]),
            report(&[("parse", 0.01)]),
        ];
        let t = analyze_trend(&series, &TrendConfig::default());
        assert!(!t.passed());
        assert_eq!(t.dropped.len(), 1);
        assert_eq!(t.dropped[0].stage.as_deref(), Some("simulate"));
        assert_eq!(t.dropped[0].report_index, 1);
    }

    #[test]
    fn case_filter_restricts_scope() {
        let series = vec![
            report(&[("simulate", 0.010)]),
            report(&[("simulate", 0.030)]),
        ];
        let cfg = TrendConfig {
            case_filter: Some("no_such".into()),
            ..Default::default()
        };
        assert!(analyze_trend(&series, &cfg).passed());
    }
}
