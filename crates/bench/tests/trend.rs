//! The trend gate's contract: slow cumulative drift fails even when
//! every pairwise step passes the `compare` gate, stable series pass,
//! and the checked-in `bench_history/` series is green.

use hpf_bench::{
    analyze_trend, compare, BenchReport, CaseResult, CompareConfig, StageStat, TrendConfig,
};

/// A one-case report whose `simulate` median is `median` seconds.
fn report(median: f64) -> BenchReport {
    BenchReport {
        suite: "synthetic".into(),
        iters: 7,
        cases: vec![CaseResult {
            name: "laplace_bb_n64_p4".into(),
            stages: vec![
                StageStat {
                    stage: "simulate".into(),
                    median_s: median,
                    p95_s: median * 1.05,
                    min_s: median * 0.95,
                    max_s: median * 1.1,
                    samples: 7,
                },
                StageStat {
                    stage: "total".into(),
                    median_s: median * 1.4,
                    p95_s: median * 1.5,
                    min_s: median * 1.3,
                    max_s: median * 1.6,
                    samples: 7,
                },
            ],
            counters: Default::default(),
        }],
    }
}

/// Eight reports, each 17 % slower than the one before: every pairwise
/// step is inside the 20 % `compare` tolerance, but the series compounds
/// to 1.17⁷ ≈ 3.0× — the exact blind spot the trend gate closes.
fn creeping_series() -> Vec<BenchReport> {
    (0..8).map(|i| report(0.010 * 1.17f64.powi(i))).collect()
}

#[test]
fn every_pairwise_step_passes_the_compare_gate() {
    let series = creeping_series();
    for w in series.windows(2) {
        let findings = compare(&w[0], &w[1], &CompareConfig::default());
        assert!(
            findings.iter().all(|f| !f.is_failure()),
            "a single +17% step must pass the 20% pairwise gate: {findings:?}"
        );
    }
}

#[test]
fn cumulative_threefold_drift_fails_the_trend_gate() {
    let series = creeping_series();
    let t = analyze_trend(&series, &TrendConfig::default());
    assert!(
        !t.passed(),
        "3x compounded drift must fail:\n{}",
        t.render()
    );
    let v: Vec<_> = t.violations().collect();
    assert!(
        v.iter()
            .any(|r| r.stage == "simulate" && r.drift_pct > 190.0),
        "simulate drifted ~200%, got {v:?}"
    );
    // The per-case drift report names the offender with its trajectory.
    let rendered = t.render();
    assert!(rendered.contains("DRIFT"), "{rendered}");
    assert!(
        rendered.contains("laplace_bb_n64_p4 / simulate"),
        "{rendered}"
    );
    assert!(rendered.contains("verdict: FAIL"), "{rendered}");
}

#[test]
fn trend_survives_a_json_roundtrip_of_the_series() {
    // The CLI path reads reports from disk; the analysis must see the
    // same drift after serialization.
    let series: Vec<BenchReport> = creeping_series()
        .iter()
        .map(|r| BenchReport::from_json(&r.to_json()).expect("roundtrip"))
        .collect();
    let t = analyze_trend(&series, &TrendConfig::default());
    assert!(!t.passed());
}

#[test]
fn stable_series_passes_the_trend_gate() {
    let series: Vec<BenchReport> = (0..8).map(|_| report(0.010)).collect();
    let t = analyze_trend(&series, &TrendConfig::default());
    assert!(t.passed(), "{}", t.render());
}

#[test]
fn dropped_case_fails_the_trend_gate() {
    let mut series: Vec<BenchReport> = (0..4).map(|_| report(0.010)).collect();
    series[3].cases.clear();
    let t = analyze_trend(&series, &TrendConfig::default());
    assert!(!t.passed());
    assert_eq!(t.dropped.len(), 1);
    assert_eq!(t.dropped[0].report_index, 3);
}

#[test]
fn checked_in_bench_history_is_green() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_history");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("bench_history/ exists at the repo root")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 2,
        "the checked-in series needs at least two reports"
    );
    let reports: Vec<BenchReport> = paths
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(p).expect("readable report");
            BenchReport::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", p.display()))
        })
        .collect();
    // The checked-in history was recorded on various machines; the gate
    // CI runs with (--gate 100) tolerates box-to-box speed differences
    // while still catching order-of-magnitude drift. Use the same here.
    let cfg = TrendConfig {
        gate_pct: 100.0,
        ..Default::default()
    };
    let t = analyze_trend(&reports, &cfg);
    assert!(
        t.passed(),
        "checked-in history must be green:\n{}",
        t.render()
    );
}
