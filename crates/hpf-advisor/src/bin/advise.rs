//! `advise` — the what-if advisor CLI.
//!
//! ```text
//! advise [--kernel NAME | --file PATH] [--size N] [--procs P] [--top K]
//!        [--runs R] [--threads T] [--seed S] [--machine NAME]
//!        [--machines A,B,...] [--quick] [--trace]
//! ```
//!
//! Prints a ranked table of directive candidates for the kernel (or for an
//! HPF source file given with `--file`): predicted time (analytic
//! interpretation), comp/comm split, DES-simulated time and error for the
//! top-k, and the search's pruning / session-reuse accounting.
//! `--machine` runs the search on one registered backend;
//! `--machines a,b,c` runs it on each and prints a single merged
//! cross-machine ranking. Output is bit-identical across runs and
//! `--threads` values; `--trace` additionally prints the deterministic
//! trace counters to stderr.
//!
//! Malformed HPF source is reported as a spanned diagnostic on stderr
//! (source line + caret) with exit status 1 — the same diagnostic
//! `hpf-serve` returns as a structured 400 body.

use hpf_advisor::{render_cross_table, render_table, Advisor, AdvisorConfig};

fn usage() -> ! {
    eprintln!(
        "usage: advise [--kernel NAME | --file PATH] [--size N] [--procs P] \
         [--top K] [--runs R] [--threads T] [--seed S] [--machine NAME] \
         [--machines A,B,...] [--quick] [--trace]"
    );
    std::process::exit(2)
}

fn main() {
    let mut kernel_name = "Laplace (Blk-Blk)".to_string();
    let mut source_path: Option<String> = None;
    let mut cfg = AdvisorConfig::default();
    let mut machines: Option<Vec<String>> = None;
    let mut trace = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--kernel" => kernel_name = take(&mut i),
            "--file" => source_path = Some(take(&mut i)),
            "--size" => cfg.n = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--procs" => cfg.procs = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--top" => cfg.top_k = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--runs" => cfg.sim_runs = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--threads" => cfg.threads = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--machine" => cfg.machine = take(&mut i),
            "--machines" => {
                machines = Some(
                    take(&mut i)
                        .split(',')
                        .map(|m| m.trim().to_string())
                        .filter(|m| !m.is_empty())
                        .collect(),
                );
            }
            "--quick" => {
                let threads = cfg.threads;
                let machine = std::mem::take(&mut cfg.machine);
                cfg = AdvisorConfig::quick();
                cfg.threads = threads;
                cfg.machine = machine;
            }
            "--trace" => trace = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
        i += 1;
    }

    let advisor = match &source_path {
        Some(path) => {
            let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("advise: cannot read {path}: {e}");
                std::process::exit(1)
            });
            Advisor::for_source(path, &source).unwrap_or_else(|e| {
                eprint!("advise: {}", e.render_diagnostic(&source));
                std::process::exit(1)
            })
        }
        None => {
            let kernel = match kernels::kernel_by_name(&kernel_name) {
                Some(k) => k,
                None => {
                    eprintln!("unknown kernel `{kernel_name}`; available:");
                    for k in kernels::all_kernels() {
                        eprintln!("  {}", k.name);
                    }
                    std::process::exit(2)
                }
            };
            Advisor::for_kernel(&kernel).unwrap_or_else(|e| {
                eprintln!("advise: advisor setup failed: {e}");
                std::process::exit(1)
            })
        }
    };

    if trace {
        hpf_trace::enable();
    }
    match &machines {
        Some(names) => {
            let report = advisor.search_cross(&cfg, names).unwrap_or_else(|e| {
                eprintln!("advise: search failed: {e}");
                std::process::exit(1)
            });
            print!("{}", render_cross_table(&report));
        }
        None => {
            let report = advisor.search(&cfg).unwrap_or_else(|e| {
                eprintln!("advise: search failed: {e}");
                std::process::exit(1)
            });
            print!("{}", render_table(&report));
        }
    }

    if trace {
        hpf_trace::disable();
        for c in [
            "advisor.candidates",
            "advisor.evaluated",
            "advisor.pruned",
            "advisor.sessions_reused",
            "advisor.profile_reused",
        ] {
            eprintln!("{c} = {}", hpf_trace::counter_get(c));
        }
    }
}
