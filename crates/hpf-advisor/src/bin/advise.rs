//! `advise` — the what-if advisor CLI.
//!
//! ```text
//! advise [--kernel NAME] [--size N] [--procs P] [--top K] [--runs R]
//!        [--threads T] [--seed S] [--quick] [--trace]
//! ```
//!
//! Prints a ranked table of directive candidates for the kernel:
//! predicted time (analytic interpretation), comp/comm split, DES-
//! simulated time and error for the top-k, and the search's pruning /
//! session-reuse accounting. Output is bit-identical across runs and
//! `--threads` values; `--trace` additionally prints the deterministic
//! trace counters to stderr.

use hpf_advisor::{render_table, Advisor, AdvisorConfig};

fn usage() -> ! {
    eprintln!(
        "usage: advise [--kernel NAME] [--size N] [--procs P] [--top K] \
         [--runs R] [--threads T] [--seed S] [--quick] [--trace]"
    );
    std::process::exit(2)
}

fn main() {
    let mut kernel_name = "Laplace (Blk-Blk)".to_string();
    let mut cfg = AdvisorConfig::default();
    let mut trace = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--kernel" => kernel_name = take(&mut i),
            "--size" => cfg.n = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--procs" => cfg.procs = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--top" => cfg.top_k = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--runs" => cfg.sim_runs = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--threads" => cfg.threads = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--quick" => {
                let threads = cfg.threads;
                cfg = AdvisorConfig::quick();
                cfg.threads = threads;
            }
            "--trace" => trace = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
        i += 1;
    }

    let kernel = match kernels::kernel_by_name(&kernel_name) {
        Some(k) => k,
        None => {
            eprintln!("unknown kernel `{kernel_name}`; available:");
            for k in kernels::all_kernels() {
                eprintln!("  {}", k.name);
            }
            std::process::exit(2)
        }
    };

    if trace {
        hpf_trace::enable();
    }
    let advisor = Advisor::for_kernel(&kernel).unwrap_or_else(|e| {
        eprintln!("advisor setup failed: {e}");
        std::process::exit(1)
    });
    let report = advisor.search(&cfg).unwrap_or_else(|e| {
        eprintln!("advisor search failed: {e}");
        std::process::exit(1)
    });
    print!("{}", render_table(&report));

    if trace {
        hpf_trace::disable();
        for c in [
            "advisor.candidates",
            "advisor.evaluated",
            "advisor.pruned",
            "advisor.sessions_reused",
            "advisor.profile_reused",
        ] {
            eprintln!("{c} = {}", hpf_trace::counter_get(c));
        }
    }
}
