//! # hpf-advisor — directive-space search & what-if advisor
//!
//! The SC'94 framework was embedded in an application-development
//! environment precisely so a developer could ask *"which PROCESSORS /
//! DISTRIBUTE choice should I use?"* without running the program. This
//! crate closes that loop: given a kernel and a node budget `P`, it
//!
//! 1. **enumerates** the legal directive space ([`space`]) — every
//!    ordered factorization of `P` up to the template rank crossed with
//!    per-dimension BLOCK / CYCLIC / CYCLIC(k) / `*` formats;
//! 2. **prunes** dominated candidates with a compute-only analytic lower
//!    bound (zero-communication interpretation, sound because dropping
//!    communication can only shrink the predicted time);
//! 3. **evaluates** the survivors with the analytic interpretation
//!    engine through warm, memoized candidate sessions fanned across a
//!    std-only work-stealing thread pool ([`pool`]);
//! 4. **cross-validates** the top-k survivors against the discrete-event
//!    simulator and reports the predicted-vs-simulated error.
//!
//! The whole search is deterministic: ties on predicted time are broken
//! by a seeded hash of the candidate label, pruning decisions are made
//! between fixed-width evaluation waves (never racing the incumbent),
//! and results are assembled in candidate order — so the ranked table is
//! bit-identical across repeated runs and thread counts.
//!
//! Trace instrumentation (when `hpf_trace::enable()` is on):
//! `advisor.candidates`, `advisor.pruned`, `advisor.evaluated`,
//! `advisor.sessions_reused`, `advisor.profile_reused` counters and
//! `advisor/{enumerate,lower_bound,evaluate,simulate}` spans.

pub mod pool;
pub mod search;
pub mod space;

pub use search::{
    render_cross_table, render_table, Advisor, AdvisorConfig, AdvisorReport, CrossMachineReport,
    CrossMachineRow, RankedCandidate,
};
pub use space::{enumerate_candidates, ordered_factorizations, Candidate};
