//! A std-only work-stealing thread pool for index-addressed fan-out.
//!
//! The vendored-stub policy keeps external crates out of the build, so
//! this is the minimal honest work-stealing scheme: each worker owns a
//! deque of job indices (dealt round-robin), pops its own work from the
//! front, and steals from the *back* of a neighbour's deque when it runs
//! dry. Because jobs never spawn jobs, a worker that finds every deque
//! empty can simply retire.
//!
//! Results are written into per-index slots, so the output order — and
//! therefore every downstream bit — is independent of which worker ran
//! which job and of the worker count.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Resolve a requested worker count: `0` means "ask the OS", and the
/// result is clamped to the job count (no idle spawn) and to 16.
pub fn effective_threads(requested: usize, jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, 16).min(jobs.max(1))
}

/// Run `f(0..n)` across `threads` workers (0 = auto) and return results
/// in index order. Bit-deterministic for pure `f`: scheduling affects
/// only wall-clock, never which slot a result lands in.
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = effective_threads(threads, n);
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((0..n).filter(|i| i % workers == w).collect()))
        .collect();
    // `Mutex<Option<T>>` slots rather than `OnceLock<T>`: the latter
    // would force `T: Sync` on the caller, and slots are written exactly
    // once so the lock is never contended.
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for w in 0..workers {
            let queues = &queues;
            let results = &results;
            let f = &f;
            s.spawn(move || loop {
                let job = pop_front(&queues[w])
                    .or_else(|| (1..workers).find_map(|d| pop_back(&queues[(w + d) % workers])));
                match job {
                    Some(i) => {
                        // A job index lives in exactly one deque and is
                        // removed under its lock, so the slot is ours.
                        let v = f(i);
                        let prev = results[i]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .replace(v);
                        debug_assert!(prev.is_none(), "job {i} ran twice");
                    }
                    None => break,
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every job index was claimed")
        })
        .collect()
}

fn pop_front(q: &Mutex<VecDeque<usize>>) -> Option<usize> {
    q.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
}

fn pop_back(q: &Mutex<VecDeque<usize>>) -> Option<usize> {
    q.lock().unwrap_or_else(|e| e.into_inner()).pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 4, 9] {
            let out = map_indexed(37, threads, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = map_indexed(100, 8, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn uneven_costs_still_complete_via_stealing() {
        // Front-load the expensive jobs onto worker 0's deque; the others
        // must steal to finish in any reasonable time (correctness-only
        // assertion here: all results present and ordered).
        let out = map_indexed(32, 4, |i| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_jobs() {
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 4, |i| i), vec![0]);
    }
}
