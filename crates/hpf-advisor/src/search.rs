//! The advisor search: enumerate → lower-bound prune → warm-session
//! evaluation → simulator cross-check.
//!
//! ## Determinism contract
//!
//! The ranked table is bit-identical across repeated runs *and* thread
//! counts. Three mechanisms enforce this:
//!
//! 1. every per-candidate computation (compile, lower-bound, full
//!    interpretation, simulation) is a pure function of the candidate,
//!    executed independently and written to an index-addressed slot;
//! 2. branch-and-bound decisions never race the incumbent: candidates
//!    are processed in fixed-width *waves* in a deterministic order
//!    (ascending lower bound, seeded-hash tie-break), a wave's prune
//!    decisions read only the incumbent left by completed waves, and the
//!    incumbent is folded in candidate order after the wave finishes;
//! 3. ties on predicted time are broken by an FNV-1a hash of the
//!    candidate label mixed with the configured seed — stable, total,
//!    and independent of enumeration order.

use std::collections::BTreeMap;

use hpf_compiler::{compile, CompileOptions, SpmdProgram};
use hpf_lang::ast::Program;
use hpf_lang::{analyze, parse_program, AnalyzedProgram};
use interp::{InterpOptions, InterpretationEngine, Metrics};
use ipsc_sim::{SimConfig, Simulator};
use kernels::Kernel;
use report::pipeline::{calibrated_machine_for, machine_params};
use report::{shared_profile, PipelineError, PipelineStage};

use crate::pool;
use crate::space::{self, Candidate};

/// Search-shaping knobs. The defaults match the paper-scale Laplace
/// what-if loop; [`AdvisorConfig::quick`] trims sizes for CI.
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    /// Problem size the critical variable `N` is bound to.
    pub n: usize,
    /// Node budget `P`: every candidate grid is a factorization of it.
    pub procs: usize,
    /// CYCLIC(k) block-size alphabet (entries ≥ 2; CYCLIC covers k = 1).
    pub ks: Vec<i64>,
    /// Survivors cross-validated against the DES simulator.
    pub top_k: usize,
    /// Simulated runs per cross-validated candidate.
    pub sim_runs: usize,
    /// Worker threads for the fan-out stages (0 = auto).
    pub threads: usize,
    /// Seed mixed into the tie-break hash.
    pub seed: u64,
    /// Candidates per branch-and-bound wave.
    pub wave_width: usize,
    /// Step budget for the functional-interpreter profile.
    pub profile_steps: u64,
    /// Registered machine backend the search predicts and cross-checks on
    /// (see `hpf_machines::machine_names`).
    pub machine: String,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            n: 256,
            procs: 8,
            ks: vec![2, 16, 256],
            top_k: 3,
            sim_runs: 200,
            threads: 0,
            seed: 0x5EED_CAFE,
            wave_width: 8,
            profile_steps: 40_000_000,
            machine: hpf_machines::DEFAULT_MACHINE.to_string(),
        }
    }
}

impl AdvisorConfig {
    /// CI-speed settings: smaller problem, fewer simulated runs. The
    /// problem size stays large enough that sequentialized-computation
    /// lower bounds can exceed the best parallel prediction — on the
    /// Laplace kernel communication dominates below `n ≈ 128`, and no
    /// compute-only bound can prune anything there.
    pub fn quick() -> Self {
        AdvisorConfig {
            n: 160,
            ks: vec![2, 16, 160],
            sim_runs: 60,
            profile_steps: 10_000_000,
            ..AdvisorConfig::default()
        }
    }
}

/// One evaluated candidate in rank order.
#[derive(Debug, Clone)]
pub struct RankedCandidate {
    pub candidate: Candidate,
    /// `Candidate::label()`, precomputed (also the tie-break key).
    pub label: String,
    /// Full analytic prediction, seconds.
    pub predicted_s: f64,
    /// Per-component split of the prediction.
    pub metrics: Metrics,
    /// The zero-communication lower bound used for pruning, seconds.
    pub lower_bound_s: f64,
    /// DES-simulated mean time — populated for the top-k only.
    pub simulated_s: Option<f64>,
    /// |predicted − simulated| / simulated, percent (top-k only).
    pub sim_error_pct: Option<f64>,
}

/// The outcome of one advisor search.
#[derive(Debug, Clone)]
pub struct AdvisorReport {
    pub kernel: String,
    pub n: usize,
    pub procs: usize,
    /// Registry name of the machine the search ran on.
    pub machine: String,
    /// Size of the enumerated directive space.
    pub candidates: usize,
    /// Candidates skipped because their lower bound met the incumbent.
    pub pruned: usize,
    /// Candidates rejected by the compiler (should be zero for kernels
    /// in the suite; counted rather than aborting the search).
    pub invalid: usize,
    /// Warm-artifact reuses: each full evaluation and each simulation
    /// re-serves a memoized candidate session instead of recompiling.
    pub sessions_reused: u64,
    /// Whether the functional-interpreter profile was available to the
    /// simulator (step budget not exceeded).
    pub profile_available: bool,
    /// Evaluated candidates, best predicted time first.
    pub ranked: Vec<RankedCandidate>,
}

/// A candidate's memoized warm session: everything the later stages need,
/// compiled exactly once in the lower-bound pass and re-served to the
/// full evaluation and the simulator.
struct CandidateSession {
    analyzed: AnalyzedProgram,
    spmd: SpmdProgram,
    aag: appgraph::Aag,
    lower_bound_s: f64,
}

/// A what-if advisor bound to one program: the canonical source is parsed
/// exactly once, every candidate is an AST rewrite of that one program.
#[derive(Debug)]
pub struct Advisor {
    name: String,
    source: String,
    program: Program,
    rank: usize,
}

impl Advisor {
    /// Parse the kernel's canonical source and locate its template rank.
    pub fn for_kernel(kernel: &Kernel) -> Result<Self, PipelineError> {
        let source = kernel.source(kernel.size_range.0, 1);
        Advisor::for_source(kernel.name, &source)
    }

    /// Build an advisor over arbitrary HPF source (the `advise --file` /
    /// `hpf-serve` entry point). Malformed programs come back as a spanned
    /// [`PipelineError`] — never a panic — so callers can render the same
    /// diagnostic on a terminal or in a structured 400 body.
    pub fn for_source(name: &str, source: &str) -> Result<Self, PipelineError> {
        let program = parse_program(source)?;
        let rank = space::distribute_rank(&program).ok_or_else(|| {
            PipelineError::new(
                PipelineStage::Analyze,
                format!("program `{name}` has no DISTRIBUTE directive to search over"),
            )
        })?;
        Ok(Advisor {
            name: name.to_string(),
            source: source.to_string(),
            program,
            rank,
        })
    }

    /// Template rank the enumeration runs over.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Run the full search. See the module docs for the stage structure
    /// and the determinism contract.
    pub fn search(&self, cfg: &AdvisorConfig) -> Result<AdvisorReport, PipelineError> {
        let _root = hpf_trace::span("advisor");

        let cands = {
            let _s = hpf_trace::span("enumerate");
            space::enumerate_candidates(self.rank, cfg.procs, &cfg.ks)
        };
        hpf_trace::counter_add("advisor.candidates", cands.len() as u64);
        let labels: Vec<String> = cands.iter().map(|c| c.label()).collect();

        let machine = calibrated_machine_for(&cfg.machine, cfg.procs)?;
        let lb_engine = InterpretationEngine::with_options(
            &machine,
            InterpOptions {
                zero_comm: true,
                ..InterpOptions::default()
            },
        );
        let full_engine = InterpretationEngine::with_options(&machine, InterpOptions::default());

        // Stage 1: compile every candidate once and take its
        // zero-communication lower bound, fanned across the pool. The
        // session (analyzed + SPMD + AAG) is memoized for later stages.
        let sessions: Vec<Option<CandidateSession>> =
            pool::map_indexed(cands.len(), cfg.threads, |i| {
                let _s = hpf_trace::span("lower_bound");
                self.build_session(&cands[i], cfg)
                    .map(|mut sess| {
                        sess.lower_bound_s = lb_engine.interpret(&sess.aag).total_seconds();
                        sess
                    })
                    .ok()
            });
        let invalid = sessions.iter().filter(|s| s.is_none()).count();

        // Stage 2: deterministic wave-based branch-and-bound. Visit
        // candidates in ascending-lower-bound order; a candidate whose
        // bound already meets the best fully-evaluated time cannot win
        // and is pruned without evaluation.
        let mut order: Vec<usize> = (0..cands.len())
            .filter(|&i| sessions[i].is_some())
            .collect();
        order.sort_by(|&a, &b| {
            let la = sessions[a].as_ref().unwrap().lower_bound_s;
            let lb = sessions[b].as_ref().unwrap().lower_bound_s;
            la.total_cmp(&lb)
                .then_with(|| tie_break(cfg.seed, &labels[a]).cmp(&tie_break(cfg.seed, &labels[b])))
        });

        let mut incumbent = f64::INFINITY;
        let mut pruned = 0usize;
        let mut predictions: Vec<Option<Metrics>> = vec![None; cands.len()];
        for wave in order.chunks(cfg.wave_width.max(1)) {
            let selected: Vec<usize> = wave
                .iter()
                .copied()
                .filter(|&i| {
                    let keep = sessions[i].as_ref().unwrap().lower_bound_s < incumbent;
                    if !keep {
                        pruned += 1;
                    }
                    keep
                })
                .collect();
            let evals: Vec<Metrics> = pool::map_indexed(selected.len(), cfg.threads, |j| {
                let _s = hpf_trace::span("evaluate");
                hpf_trace::counter_add("advisor.sessions_reused", 1);
                full_engine
                    .interpret(&sessions[selected[j]].as_ref().unwrap().aag)
                    .total
            });
            for (j, m) in evals.into_iter().enumerate() {
                if m.time() < incumbent {
                    incumbent = m.time();
                }
                predictions[selected[j]] = Some(m);
            }
        }
        hpf_trace::counter_add("advisor.pruned", pruned as u64);
        let evaluated: Vec<usize> = (0..cands.len())
            .filter(|&i| predictions[i].is_some())
            .collect();
        hpf_trace::counter_add("advisor.evaluated", evaluated.len() as u64);

        // Rank the evaluated candidates: best predicted time first,
        // seeded-hash tie-break for bit-stable ordering.
        let mut rank_order = evaluated.clone();
        rank_order.sort_by(|&a, &b| {
            let ta = predictions[a].unwrap().time();
            let tb = predictions[b].unwrap().time();
            ta.total_cmp(&tb)
                .then_with(|| tie_break(cfg.seed, &labels[a]).cmp(&tie_break(cfg.seed, &labels[b])))
        });

        // Stage 3: cross-validate the leaders against the DES simulator,
        // re-serving the memoized sessions and the shared functional
        // profile (one interpreter run per problem size, process-wide,
        // because the profile ignores directives).
        let top: Vec<usize> = rank_order.iter().take(cfg.top_k).copied().collect();
        let profile = top.first().map(|&i| {
            let (p, reused) = shared_profile(
                &self.source,
                cfg.n,
                cfg.profile_steps,
                &sessions[i].as_ref().unwrap().analyzed,
            );
            if reused {
                hpf_trace::counter_add("advisor.profile_reused", 1);
            }
            p
        });
        let profile = profile.flatten();
        let sim_machine = machine_params(&cfg.machine, cfg.procs)?;
        let sims: Vec<f64> = pool::map_indexed(top.len(), cfg.threads, |j| {
            let _s = hpf_trace::span("simulate");
            hpf_trace::counter_add("advisor.sessions_reused", 1);
            let sim = Simulator::with_config(
                &sim_machine,
                SimConfig {
                    runs: cfg.sim_runs,
                    ..SimConfig::default()
                },
            );
            sim.simulate(&sessions[top[j]].as_ref().unwrap().spmd, profile.as_deref())
                .mean
        });

        let ranked: Vec<RankedCandidate> = rank_order
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let m = predictions[i].unwrap();
                let simulated_s = top.iter().position(|&t| t == i).map(|j| sims[j]);
                let sim_error_pct = simulated_s.map(|s| {
                    if s > 0.0 {
                        100.0 * (m.time() - s).abs() / s
                    } else {
                        0.0
                    }
                });
                let _ = pos;
                RankedCandidate {
                    candidate: cands[i].clone(),
                    label: labels[i].clone(),
                    predicted_s: m.time(),
                    metrics: m,
                    lower_bound_s: sessions[i].as_ref().unwrap().lower_bound_s,
                    simulated_s,
                    sim_error_pct,
                }
            })
            .collect();

        Ok(AdvisorReport {
            kernel: self.name.clone(),
            n: cfg.n,
            procs: cfg.procs,
            machine: cfg.machine.clone(),
            candidates: cands.len(),
            pruned,
            invalid,
            sessions_reused: (evaluated.len() + top.len()) as u64,
            profile_available: profile.is_some(),
            ranked,
        })
    }

    /// Compile one candidate into its warm session: AST rewrite → semantic
    /// analysis with the `N = n` override → SPMD lowering with the grid
    /// pinned through `CompileOptions::grid_extents` → AAG construction.
    fn build_session(
        &self,
        c: &Candidate,
        cfg: &AdvisorConfig,
    ) -> Result<CandidateSession, PipelineError> {
        let variant = space::apply_candidate(&self.program, c);
        let mut overrides = BTreeMap::new();
        overrides.insert("N".to_string(), cfg.n as i64);
        let analyzed = analyze(&variant, &overrides)?;
        let opts = CompileOptions {
            nodes: cfg.procs,
            grid_extents: Some(c.grid.clone()),
            ..CompileOptions::default()
        };
        let spmd = compile(&analyzed, &opts)?;
        let aag = appgraph::build_aag(&spmd);
        Ok(CandidateSession {
            analyzed,
            spmd,
            aag,
            lower_bound_s: 0.0,
        })
    }
}

/// One row of the merged cross-machine ranking: a candidate evaluated on
/// a specific registered machine.
#[derive(Debug, Clone)]
pub struct CrossMachineRow {
    /// Registry name of the machine this row was evaluated on.
    pub machine: String,
    pub candidate: RankedCandidate,
}

/// The paper's cluster-comparison question as one artifact: the same
/// directive space searched on several registered machines, merged into a
/// single ranking by predicted time.
#[derive(Debug, Clone)]
pub struct CrossMachineReport {
    pub kernel: String,
    pub n: usize,
    pub procs: usize,
    /// Per-machine search reports, in the caller's machine order.
    pub reports: Vec<AdvisorReport>,
    /// All evaluated candidates across machines, best predicted first.
    pub ranked: Vec<CrossMachineRow>,
}

impl Advisor {
    /// Run [`Advisor::search`] once per named machine and merge the ranked
    /// tables into a single cross-machine ranking. Each per-machine search
    /// keeps its own determinism contract, and the merge orders rows by
    /// predicted time with the same seeded tie-break (over
    /// `machine::label`), so the combined table is bit-identical across
    /// runs and thread counts. An unknown machine name fails the whole
    /// call with the registry's structured error.
    pub fn search_cross(
        &self,
        cfg: &AdvisorConfig,
        machines: &[String],
    ) -> Result<CrossMachineReport, PipelineError> {
        let mut reports = Vec::with_capacity(machines.len());
        for name in machines {
            let per = AdvisorConfig {
                machine: name.clone(),
                ..cfg.clone()
            };
            reports.push(self.search(&per)?);
        }
        let mut ranked: Vec<CrossMachineRow> = reports
            .iter()
            .flat_map(|r| {
                r.ranked.iter().map(|c| CrossMachineRow {
                    machine: r.machine.clone(),
                    candidate: c.clone(),
                })
            })
            .collect();
        ranked.sort_by(|a, b| {
            let ka = format!("{}::{}", a.machine, a.candidate.label);
            let kb = format!("{}::{}", b.machine, b.candidate.label);
            a.candidate
                .predicted_s
                .total_cmp(&b.candidate.predicted_s)
                .then_with(|| tie_break(cfg.seed, &ka).cmp(&tie_break(cfg.seed, &kb)))
        });
        Ok(CrossMachineReport {
            kernel: self.name.clone(),
            n: cfg.n,
            procs: cfg.procs,
            reports,
            ranked,
        })
    }
}

/// Render the merged cross-machine ranking, in the same fixed-precision
/// style as [`render_table`] with a leading machine column. Shared by the
/// `advise --machines` CLI and the golden artifact.
pub fn render_cross_table(r: &CrossMachineReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "hpf-advisor cross-machine: {}  n={}  budget P={}",
        r.kernel, r.n, r.procs
    );
    let machines: Vec<&str> = r.reports.iter().map(|m| m.machine.as_str()).collect();
    let _ = writeln!(out, "machines: {}", machines.join(", "));
    for rep in &r.reports {
        let _ = writeln!(
            out,
            "  {:<12} space: {} candidates   evaluated: {}   pruned: {}   invalid: {}",
            rep.machine,
            rep.candidates,
            rep.ranked.len(),
            rep.pruned,
            rep.invalid
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:>4}  {:<12} {:<38} {:>13} {:>6} {:>6} {:>13} {:>7}",
        "rank", "machine", "directives", "predicted(s)", "comp%", "comm%", "simulated(s)", "err%"
    );
    for (i, row) in r.ranked.iter().enumerate() {
        let c = &row.candidate;
        let t = c.predicted_s;
        let comp_pct = if t > 0.0 {
            100.0 * c.metrics.comp / t
        } else {
            0.0
        };
        let comm_pct = if t > 0.0 {
            100.0 * c.metrics.comm / t
        } else {
            0.0
        };
        let sim = c
            .simulated_s
            .map(|s| format!("{s:.6}"))
            .unwrap_or_else(|| "-".to_string());
        let err = c
            .sim_error_pct
            .map(|e| format!("{e:.2}"))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:>4}  {:<12} {:<38} {:>13.6} {:>6.1} {:>6.1} {:>13} {:>7}",
            i + 1,
            row.machine,
            c.label,
            t,
            comp_pct,
            comm_pct,
            sim,
            err
        );
    }
    out
}

/// Seeded FNV-1a over the candidate label: the total, stable tie-break
/// order for equal predicted times (and equal lower bounds).
fn tie_break(seed: u64, label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Render the ranked table exactly as the `advise` binary prints it —
/// shared so the golden artifact and the bit-identity tests cover the
/// same string. Timings are formatted to fixed precision; no wall-clock
/// or machine-local value enters the output.
pub fn render_table(r: &AdvisorReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "hpf-advisor: {}  n={}  budget P={}",
        r.kernel, r.n, r.procs
    );
    let _ = writeln!(
        out,
        "space: {} candidates   evaluated: {}   pruned: {}   invalid: {}",
        r.candidates,
        r.ranked.len(),
        r.pruned,
        r.invalid
    );
    let _ = writeln!(
        out,
        "sessions reused: {}   profile: {}",
        r.sessions_reused,
        if r.profile_available {
            "shared"
        } else {
            "budget-exceeded"
        }
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:>4}  {:<38} {:>13} {:>6} {:>6} {:>13} {:>7}",
        "rank", "directives", "predicted(s)", "comp%", "comm%", "simulated(s)", "err%"
    );
    for (i, c) in r.ranked.iter().enumerate() {
        let t = c.predicted_s;
        let comp_pct = if t > 0.0 {
            100.0 * c.metrics.comp / t
        } else {
            0.0
        };
        let comm_pct = if t > 0.0 {
            100.0 * c.metrics.comm / t
        } else {
            0.0
        };
        let sim = c
            .simulated_s
            .map(|s| format!("{s:.6}"))
            .unwrap_or_else(|| "-".to_string());
        let err = c
            .sim_error_pct
            .map(|e| format!("{e:.2}"))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:>4}  {:<38} {:>13.6} {:>6.1} {:>6.1} {:>13} {:>7}",
            i + 1,
            c.label,
            t,
            comp_pct,
            comm_pct,
            sim,
            err
        );
    }
    out
}
