//! Enumeration of the legal directive space for one template.
//!
//! A *candidate* is a per-dimension `DISTRIBUTE` format tuple plus a
//! processor-grid shape whose rank equals the number of distributed
//! (non-`*`) dimensions. The enumeration is exhaustive over a small,
//! fixed format alphabet — BLOCK, CYCLIC, CYCLIC(k) for a caller-chosen
//! k-set, and `*` — crossed with every ordered factorization of the node
//! budget, mirroring what a developer could legally write in the
//! directive subset the compiler accepts.

use hpf_lang::ast::{Directive, DistFormat, Expr, Program};

/// One point of the directive space: a format per template dimension and
/// the processor-grid extents the distributed dimensions map onto.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// `DISTRIBUTE` format for each template dimension.
    pub formats: Vec<DistFormat>,
    /// Grid extents, one per *distributed* dimension (product = budget).
    pub grid: Vec<i64>,
}

impl Candidate {
    /// Human-readable identity, e.g. `(BLOCK,CYCLIC(2)) onto (2,4)`.
    /// Also the seeded tie-break key, so it must be unique per candidate.
    pub fn label(&self) -> String {
        let fmts = self
            .formats
            .iter()
            .map(|f| f.display())
            .collect::<Vec<_>>()
            .join(",");
        let grid = self
            .grid
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!("({fmts}) onto ({grid})")
    }

    /// Number of distributed (non-`*`) dimensions.
    pub fn distributed_dims(&self) -> usize {
        self.formats
            .iter()
            .filter(|f| **f != DistFormat::Degenerate)
            .count()
    }
}

/// All ordered tuples of `dims` positive integers whose product is `p`,
/// in lexicographically ascending order (divisors enumerated ascending).
pub fn ordered_factorizations(p: usize, dims: usize) -> Vec<Vec<i64>> {
    if dims == 0 {
        return if p == 1 { vec![vec![]] } else { vec![] };
    }
    if dims == 1 {
        return vec![vec![p as i64]];
    }
    let mut out = Vec::new();
    for q in 1..=p {
        if !p.is_multiple_of(q) {
            continue;
        }
        for rest in ordered_factorizations(p / q, dims - 1) {
            let mut tuple = Vec::with_capacity(dims);
            tuple.push(q as i64);
            tuple.extend(rest);
            out.push(tuple);
        }
    }
    out
}

/// Enumerate every candidate for a rank-`rank` template on `procs`
/// processors. `ks` is the CYCLIC(k) block-size alphabet (each entry must
/// be ≥ 2 — plain CYCLIC already covers k = 1). The all-`*` tuple is
/// excluded (it distributes nothing), as are duplicate format tuples if
/// `ks` repeats a value. Enumeration order is deterministic: format
/// tuples in odometer order over the alphabet, grids in ascending
/// factorization order.
pub fn enumerate_candidates(rank: usize, procs: usize, ks: &[i64]) -> Vec<Candidate> {
    assert!(rank > 0, "template rank must be positive");
    assert!(procs > 0, "node budget must be positive");
    let mut alphabet = vec![DistFormat::Block, DistFormat::Cyclic];
    for &k in ks {
        assert!(k >= 2, "CYCLIC(k) alphabet entries must be >= 2, got {k}");
        let f = DistFormat::CyclicK(k);
        if !alphabet.contains(&f) {
            alphabet.push(f);
        }
    }
    alphabet.push(DistFormat::Degenerate);

    let mut out = Vec::new();
    let mut odometer = vec![0usize; rank];
    loop {
        let formats: Vec<DistFormat> = odometer.iter().map(|&i| alphabet[i]).collect();
        let dist_dims = formats
            .iter()
            .filter(|f| **f != DistFormat::Degenerate)
            .count();
        if dist_dims > 0 {
            for grid in ordered_factorizations(procs, dist_dims) {
                out.push(Candidate {
                    formats: formats.clone(),
                    grid,
                });
            }
        }
        // Advance the odometer; most-significant digit first so format
        // tuples come out in lexicographic alphabet order.
        let mut d = rank;
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            odometer[d] += 1;
            if odometer[d] < alphabet.len() {
                break;
            }
            odometer[d] = 0;
        }
    }
}

/// Rewrite `program`'s mapping directives to realize `candidate`: every
/// `DISTRIBUTE` whose rank matches the candidate gets the candidate's
/// format tuple, and every `PROCESSORS` arrangement is redeclared with
/// the candidate's grid shape. The rewritten AST is what semantic
/// analysis and SPMD lowering see — no re-rendering or re-parsing, so
/// spans (and therefore profile lookups) stay aligned with the original
/// source text.
pub fn apply_candidate(program: &Program, candidate: &Candidate) -> Program {
    let mut p = program.clone();
    for d in &mut p.directives {
        match d {
            Directive::Distribute { formats, .. } if formats.len() == candidate.formats.len() => {
                *formats = candidate.formats.clone();
            }
            Directive::Processors { shape, .. } => {
                *shape = candidate.grid.iter().map(|&e| Expr::int(e)).collect();
            }
            _ => {}
        }
    }
    p
}

/// Rank (dimension count) of the first `DISTRIBUTE` directive, if any —
/// the template rank the enumeration runs over.
pub fn distribute_rank(program: &Program) -> Option<usize> {
    program.directives.iter().find_map(|d| match d {
        Directive::Distribute { formats, .. } => Some(formats.len()),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizations_cover_all_orderings() {
        assert_eq!(
            ordered_factorizations(8, 2),
            vec![vec![1, 8], vec![2, 4], vec![4, 2], vec![8, 1]]
        );
        assert_eq!(ordered_factorizations(8, 1), vec![vec![8]]);
        assert_eq!(ordered_factorizations(1, 2), vec![vec![1, 1]]);
        for t in ordered_factorizations(12, 3) {
            assert_eq!(t.iter().product::<i64>(), 12);
        }
        assert_eq!(ordered_factorizations(12, 3).len(), 18);
    }

    #[test]
    fn enumeration_is_distinct_and_consistent() {
        let cands = enumerate_candidates(2, 8, &[2, 16]);
        // Alphabet is {B, C, C(2), C(16), *}: 4*4 = 16 doubly-distributed
        // tuples × 4 grids + 2*4 singly-distributed tuples × 1 grid.
        assert_eq!(cands.len(), 16 * 4 + 8);
        let mut labels: Vec<String> = cands.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), cands.len(), "labels must be unique");
        for c in &cands {
            assert_eq!(c.grid.len(), c.distributed_dims());
            assert_eq!(c.grid.iter().product::<i64>(), 8);
        }
    }

    #[test]
    fn enumeration_is_deterministic() {
        let a = enumerate_candidates(2, 8, &[2, 16]);
        let b = enumerate_candidates(2, 8, &[2, 16]);
        assert_eq!(a, b);
    }

    #[test]
    fn rank_one_space() {
        let cands = enumerate_candidates(1, 8, &[2]);
        // {B, C, C(2)} × [8]; the all-* tuple is excluded.
        assert_eq!(cands.len(), 3);
    }
}
