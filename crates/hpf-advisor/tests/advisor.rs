//! Integration tests for the directive-space advisor: ownership
//! soundness across the enumerated space, bit-stable ranking across runs
//! and thread counts, and the paper-loop acceptance numbers on Laplace.

use std::collections::BTreeMap;

use hpf_advisor::{enumerate_candidates, render_cross_table, render_table, Advisor, AdvisorConfig};
use hpf_compiler::{compile, CompileOptions};
use hpf_lang::{analyze, parse_program};
use proptest::prelude::*;

/// A minimal 2-D kernel whose directives the candidates rewrite.
fn two_dim_source(n: usize) -> String {
    format!(
        "
PROGRAM OWN
INTEGER, PARAMETER :: N = {n}
REAL A(N,N)
!HPF$ PROCESSORS P(1)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN A(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK) ONTO P
FORALL (I = 1:N, J = 1:N) A(I,J) = 1.0
END
"
    )
}

/// Compile one candidate of the 2-D program and check that ownership of
/// the aligned array is an exact partition: every index owned by exactly
/// one node, per-node counts summing to the template size.
fn assert_partition(n: usize, procs: usize) {
    let program = parse_program(&two_dim_source(n)).unwrap();
    for cand in enumerate_candidates(2, procs, &[2, 3]) {
        let variant = hpf_advisor::space::apply_candidate(&program, &cand);
        let analyzed = analyze(&variant, &BTreeMap::new()).unwrap();
        let spmd = compile(
            &analyzed,
            &CompileOptions {
                nodes: procs,
                grid_extents: Some(cand.grid.clone()),
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let dist = spmd.dist.get("A").unwrap();
        assert!(!dist.replicated, "{}: A must be distributed", cand.label());

        let mut per_node = vec![0u64; spmd.nodes];
        for i in 1..=n as i64 {
            for j in 1..=n as i64 {
                let owners: Vec<usize> = (0..spmd.nodes)
                    .filter(|&node| dist.owns(&spmd.grid.coords(node), &[i, j]))
                    .collect();
                assert_eq!(
                    owners.len(),
                    1,
                    "{}: index ({i},{j}) owned by {owners:?}",
                    cand.label()
                );
                per_node[owners[0]] += 1;
            }
        }
        assert_eq!(
            per_node.iter().sum::<u64>(),
            (n * n) as u64,
            "{}: ownership must cover the template exactly",
            cand.label()
        );
        for (node, &counted) in per_node.iter().enumerate() {
            let computed = dist.local_elems(&spmd.grid.coords(node));
            assert_eq!(
                counted,
                computed,
                "{}: node {node} local_elems drifted from enumeration",
                cand.label()
            );
        }
    }
}

proptest! {
    /// Every enumerated candidate — BLOCK / CYCLIC / CYCLIC(k) crossed
    /// with every grid factorization — yields an exact ownership
    /// partition of the template.
    #[test]
    fn candidate_ownership_is_a_partition(n in 5usize..12, procs in 1usize..9) {
        assert_partition(n, procs);
    }
}

/// A trimmed search config the determinism tests can run quickly.
fn small_cfg(threads: usize) -> AdvisorConfig {
    AdvisorConfig {
        n: 96,
        ks: vec![2, 16],
        top_k: 2,
        sim_runs: 10,
        threads,
        ..AdvisorConfig::default()
    }
}

/// Two full searches produce bit-identical ranked tables — including
/// under multi-threaded evaluation with different worker counts.
#[test]
fn search_is_bit_identical_across_runs_and_threads() {
    let kernel = kernels::kernel_by_name("Laplace (Blk-Blk)").unwrap();
    let advisor = Advisor::for_kernel(&kernel).unwrap();

    let baseline = advisor.search(&small_cfg(1)).unwrap();
    for threads in [1usize, 2, 8] {
        let run = advisor.search(&small_cfg(threads)).unwrap();
        assert_eq!(run.candidates, baseline.candidates);
        assert_eq!(run.pruned, baseline.pruned, "threads={threads}");
        assert_eq!(run.ranked.len(), baseline.ranked.len());
        for (a, b) in run.ranked.iter().zip(&baseline.ranked) {
            assert_eq!(a.label, b.label, "threads={threads}");
            assert_eq!(
                a.predicted_s.to_bits(),
                b.predicted_s.to_bits(),
                "threads={threads} label={}",
                a.label
            );
            assert_eq!(
                a.lower_bound_s.to_bits(),
                b.lower_bound_s.to_bits(),
                "threads={threads} label={}",
                a.label
            );
            assert_eq!(
                a.simulated_s.map(f64::to_bits),
                b.simulated_s.map(f64::to_bits),
                "threads={threads} label={}",
                a.label
            );
        }
        assert_eq!(render_table(&run), render_table(&baseline));
    }
}

/// The machine axis keeps the determinism contract: for every registered
/// backend, the per-machine search is bit-identical across thread counts,
/// and the merged cross-machine table is one stable ranking spanning all
/// of them.
#[test]
fn cross_machine_search_is_bit_identical_across_threads() {
    let kernel = kernels::kernel_by_name("Laplace (Blk-Blk)").unwrap();
    let advisor = Advisor::for_kernel(&kernel).unwrap();
    let machines: Vec<String> = hpf_machines::machine_names()
        .iter()
        .map(|m| m.to_string())
        .collect();

    let baseline = advisor.search_cross(&small_cfg(1), &machines).unwrap();
    assert_eq!(baseline.reports.len(), machines.len());
    // The merged table genuinely spans machines, in predicted order.
    let seen: std::collections::BTreeSet<&str> =
        baseline.ranked.iter().map(|r| r.machine.as_str()).collect();
    assert_eq!(
        seen.len(),
        machines.len(),
        "ranking must span every machine"
    );
    for pair in baseline.ranked.windows(2) {
        assert!(pair[0].candidate.predicted_s <= pair[1].candidate.predicted_s);
    }

    for threads in [2usize, 8] {
        let run = advisor
            .search_cross(&small_cfg(threads), &machines)
            .unwrap();
        assert_eq!(
            render_cross_table(&run),
            render_cross_table(&baseline),
            "threads={threads}"
        );
        for (a, b) in run.ranked.iter().zip(&baseline.ranked) {
            assert_eq!(a.machine, b.machine, "threads={threads}");
            assert_eq!(
                a.candidate.predicted_s.to_bits(),
                b.candidate.predicted_s.to_bits(),
                "threads={threads} {}::{}",
                a.machine,
                a.candidate.label
            );
        }
    }
}

/// An unknown machine fails the whole cross search with the registry's
/// structured error instead of panicking.
#[test]
fn cross_machine_search_rejects_unknown_machine() {
    let kernel = kernels::kernel_by_name("Laplace (Blk-Blk)").unwrap();
    let advisor = Advisor::for_kernel(&kernel).unwrap();
    let err = advisor
        .search_cross(&small_cfg(1), &["cm5".to_string()])
        .expect_err("cm5 is not registered");
    assert!(err.to_string().contains("cm5"), "{err}");
}

/// The paper-loop acceptance numbers on the Laplace kernel at P = 8:
/// a rich ranked space, nonzero lower-bound pruning, warm-session reuse,
/// and a top-1 prediction within 20% of its own DES simulation.
#[test]
fn laplace_quick_search_meets_acceptance() {
    let kernel = kernels::kernel_by_name("Laplace (Blk-Blk)").unwrap();
    let advisor = Advisor::for_kernel(&kernel).unwrap();
    let report = advisor.search(&AdvisorConfig::quick()).unwrap();

    assert_eq!(report.procs, 8);
    assert!(
        report.ranked.len() >= 24,
        "expected >= 24 ranked candidates, got {}",
        report.ranked.len()
    );
    assert!(report.pruned > 0, "lower bound should prune something");
    assert_eq!(report.invalid, 0);
    assert!(report.sessions_reused > 0);
    let top = &report.ranked[0];
    let err = top.sim_error_pct.expect("top-1 must be cross-validated");
    assert!(
        err <= 20.0,
        "top-1 predicted {} vs simulated {:?}: {err}% off",
        top.predicted_s,
        top.simulated_s
    );
    // The ranking is genuinely ordered and lower bounds are bounds.
    for pair in report.ranked.windows(2) {
        assert!(pair[0].predicted_s <= pair[1].predicted_s);
    }
    for c in &report.ranked {
        assert!(
            c.lower_bound_s <= c.predicted_s,
            "{}: lower bound above prediction",
            c.label
        );
    }
}

/// The advisor's trace counters register under tracing, and tracing does
/// not perturb the ranked output (spot-checked via the rendered table).
#[test]
fn trace_counters_register_and_do_not_perturb() {
    let kernel = kernels::kernel_by_name("Laplace (Blk-Blk)").unwrap();
    let advisor = Advisor::for_kernel(&kernel).unwrap();
    let cfg = small_cfg(2);
    let untraced = advisor.search(&cfg).unwrap();

    hpf_trace::enable();
    let traced = advisor.search(&cfg).unwrap();
    hpf_trace::disable();

    // Counters are process-global and other tests may run concurrently,
    // so assert lower bounds rather than exact values.
    assert!(hpf_trace::counter_get("advisor.candidates") >= traced.candidates as u64);
    assert!(hpf_trace::counter_get("advisor.sessions_reused") >= traced.sessions_reused);
    assert!(hpf_trace::counter_get("advisor.evaluated") >= traced.ranked.len() as u64);
    assert_eq!(render_table(&traced), render_table(&untraced));
}
