//! Data-distribution resolution: the *partitioning step* of Phase 1 (§4.1).
//!
//! Implements HPF's two-level mapping (§2): arrays are ALIGNed (affinely)
//! to a TEMPLATE, templates are DISTRIBUTEd (BLOCK / CYCLIC / `*`) onto a
//! rectilinear PROCESSORS arrangement. The composition yields, per array
//! dimension, either a processor-grid dimension with a distribution format
//! or a collapsed (fully local) dimension. Arrays with no mapping directives
//! get the implementation-default distribution — replication, as the paper
//! notes ("e.g. replication").

use hpf_lang::ast::{AlignSub, Directive, DistFormat};
use hpf_lang::sema::{AnalyzedProgram, SymbolKind};
use hpf_lang::Span;
use std::collections::BTreeMap;

/// The abstract processor arrangement in use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcGrid {
    pub name: String,
    /// Extent of each grid dimension (product = number of processors).
    pub extents: Vec<i64>,
}

impl ProcGrid {
    pub fn total(&self) -> usize {
        self.extents.iter().product::<i64>().max(1) as usize
    }

    /// Decompose a linear node id into grid coordinates (first dim fastest).
    pub fn coords(&self, mut node: usize) -> Vec<i64> {
        let mut c = Vec::with_capacity(self.extents.len());
        for &e in &self.extents {
            c.push((node % e as usize) as i64);
            node /= e as usize;
        }
        c
    }

    /// Inverse of [`coords`](Self::coords).
    pub fn node_of(&self, coords: &[i64]) -> usize {
        let mut node = 0usize;
        let mut stride = 1usize;
        for (d, &c) in coords.iter().enumerate() {
            node += c as usize * stride;
            stride *= self.extents[d] as usize;
        }
        node
    }
}

/// How one array dimension is mapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimDist {
    /// Not distributed: every owner holds the full extent.
    Collapsed,
    /// BLOCK over processor-grid dimension `pdim` (`pcount` processors,
    /// blocks of `block` template cells).
    Block {
        pdim: usize,
        pcount: i64,
        block: i64,
    },
    /// (Block-)CYCLIC over processor-grid dimension `pdim`: round-robin
    /// blocks of `k` template cells (`k = 1` is pure CYCLIC).
    Cyclic { pdim: usize, pcount: i64, k: i64 },
}

impl DimDist {
    pub fn is_distributed(&self) -> bool {
        !matches!(self, DimDist::Collapsed)
    }

    pub fn pcount(&self) -> i64 {
        match self {
            DimDist::Collapsed => 1,
            DimDist::Block { pcount, .. } | DimDist::Cyclic { pcount, .. } => *pcount,
        }
    }

    pub fn pdim(&self) -> Option<usize> {
        match self {
            DimDist::Collapsed => None,
            DimDist::Block { pdim, .. } | DimDist::Cyclic { pdim, .. } => Some(*pdim),
        }
    }
}

/// Resolved mapping of one array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDist {
    pub array: String,
    /// Declared bounds per dimension.
    pub bounds: Vec<(i64, i64)>,
    /// Affine map into the template per dimension: tmpl = stride*i + offset.
    pub align: Vec<(i64, i64)>,
    /// Distribution of the *aligned template dimension* for each array dim.
    pub dims: Vec<DimDist>,
    /// Fully replicated (no directives, or scalar): every node owns a copy.
    pub replicated: bool,
    pub elem_bytes: u64,
}

impl ArrayDist {
    /// A replicated mapping for an array with the given bounds.
    pub fn replicated(array: &str, bounds: Vec<(i64, i64)>, elem_bytes: u64) -> ArrayDist {
        let n = bounds.len();
        ArrayDist {
            array: array.to_string(),
            bounds,
            align: vec![(1, 0); n],
            dims: vec![DimDist::Collapsed; n],
            replicated: true,
            elem_bytes,
        }
    }

    pub fn rank(&self) -> usize {
        self.bounds.len()
    }

    /// Extent of dimension `d`.
    pub fn extent(&self, d: usize) -> i64 {
        let (lb, ub) = self.bounds[d];
        (ub - lb + 1).max(0)
    }

    /// Total element count.
    pub fn elems(&self) -> u64 {
        (0..self.rank()).map(|d| self.extent(d) as u64).product()
    }

    /// Grid coordinate owning index `i` of dimension `d` (template-composed).
    pub fn owner_coord(&self, d: usize, i: i64) -> i64 {
        let (stride, offset) = self.align[d];
        let t = stride * i + offset; // template cell
        match self.dims[d] {
            DimDist::Collapsed => 0,
            DimDist::Block { pcount, block, .. } => {
                // Template lower bound folded into `offset` at construction;
                // template cells are 0-based here.
                (t / block).clamp(0, pcount - 1)
            }
            // `k >= 1` is enforced when the DISTRIBUTE is partitioned, so
            // the block size is used as-is here.
            DimDist::Cyclic { pcount, k, .. } => (t.div_euclid(k)).rem_euclid(pcount),
        }
    }

    /// Number of elements of dimension `d` owned by grid coordinate `c`.
    pub fn local_extent(&self, d: usize, c: i64) -> i64 {
        let (lb, ub) = self.bounds[d];
        match self.dims[d] {
            DimDist::Collapsed => self.extent(d),
            _ => (lb..=ub).filter(|&i| self.owner_coord(d, i) == c).count() as i64,
        }
    }

    /// Per-node element count for a node with grid coordinates `coords`
    /// (coordinates indexed by grid dimension).
    pub fn local_elems(&self, coords: &[i64]) -> u64 {
        if self.replicated {
            return self.elems();
        }
        let mut n = 1u64;
        for d in 0..self.rank() {
            let c = self.dims[d].pdim().map(|p| coords[p]).unwrap_or(0);
            n *= self.local_extent(d, c).max(0) as u64;
        }
        n
    }

    /// Whether indices `i` (per dim) are owned by the node at `coords`.
    pub fn owns(&self, coords: &[i64], idx: &[i64]) -> bool {
        if self.replicated {
            return true;
        }
        for (d, &i) in idx.iter().enumerate().take(self.rank()) {
            if let Some(p) = self.dims[d].pdim() {
                if self.owner_coord(d, i) != coords[p] {
                    return false;
                }
            }
        }
        true
    }

    /// Count of index values in `lo..=hi` (stride `st`) of dimension `d`
    /// owned by grid coordinate `c`.
    pub fn owned_count_in_range(&self, d: usize, c: i64, lo: i64, hi: i64, st: i64) -> u64 {
        if !self.dims[d].is_distributed() {
            if st == 0 {
                return 0;
            }
            return (((hi - lo) / st) + 1).max(0) as u64;
        }
        let mut n = 0u64;
        let mut i = lo;
        while (st > 0 && i <= hi) || (st < 0 && i >= hi) {
            if self.owner_coord(d, i) == c {
                n += 1;
            }
            i += st;
        }
        n
    }
}

/// All resolved array mappings plus the processor grid.
#[derive(Debug, Clone)]
pub struct DistributionTable {
    pub grid: ProcGrid,
    pub arrays: BTreeMap<String, ArrayDist>,
}

impl DistributionTable {
    pub fn get(&self, name: &str) -> Option<&ArrayDist> {
        self.arrays.get(name)
    }
}

/// Error during partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionError {
    pub message: String,
    pub span: Span,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "partitioning error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for PartitionError {}

/// Resolve the two-level mapping for every array in the program.
///
/// `nodes_override`: when the program has no PROCESSORS directive, or when
/// the interface varies machine size, this supplies the processor count
/// (mapped to a 1-D grid).
pub fn partition(
    analyzed: &AnalyzedProgram,
    nodes_override: Option<usize>,
) -> Result<DistributionTable, PartitionError> {
    partition_onto(analyzed, nodes_override, None)
}

/// [`partition`] with an exact processor-grid shape. When `grid_extents` is
/// given it replaces the PROCESSORS arrangement verbatim — no
/// [`reshape_grid`] refactoring — which is what a compile-once artifact
/// needs to re-bind the machine-size critical variable: the caller pins the
/// exact grid the equivalent regenerated source would have declared, so the
/// partitioning (and everything downstream) is identical.
pub fn partition_onto(
    analyzed: &AnalyzedProgram,
    nodes_override: Option<usize>,
    grid_extents: Option<&[i64]>,
) -> Result<DistributionTable, PartitionError> {
    // 1. The processor arrangement: last PROCESSORS directive wins; the
    //    override rescales the total while keeping the shape ratio when it
    //    can (exact grid reshaping is the caller's business via directives).
    let mut grid = ProcGrid {
        name: "P".into(),
        extents: vec![1],
    };
    for d in &analyzed.program.directives {
        if let Directive::Processors { name, .. } = d {
            if let Some(SymbolKind::Processors { shape }) =
                analyzed.symbols.get(name).map(|s| &s.kind)
            {
                grid = ProcGrid {
                    name: name.clone(),
                    extents: shape.clone(),
                };
            }
        }
    }
    if let Some(extents) = grid_extents {
        if extents.is_empty() || extents.iter().any(|&e| e < 1) {
            return Err(PartitionError {
                message: format!("grid_extents must be non-empty and positive, got {extents:?}"),
                span: Span::SYNTHETIC,
            });
        }
        let total: i64 = extents.iter().product();
        if let Some(n) = nodes_override {
            if total != n as i64 {
                return Err(PartitionError {
                    message: format!(
                        "grid_extents {extents:?} hold {total} processors but {n} were requested"
                    ),
                    span: Span::SYNTHETIC,
                });
            }
        }
        grid = ProcGrid {
            name: grid.name.clone(),
            extents: extents.to_vec(),
        };
    } else if let Some(n) = nodes_override {
        if grid.total() != n {
            grid = reshape_grid(&grid, n);
        }
    }

    // 2. Template distributions.
    #[derive(Clone)]
    struct TemplateDist {
        shape: Vec<(i64, i64)>,
        formats: Vec<DistFormat>,
    }
    let mut templates: BTreeMap<String, TemplateDist> = BTreeMap::new();
    for d in &analyzed.program.directives {
        if let Directive::Template { name, .. } = d {
            if let Some(SymbolKind::Template { shape }) =
                analyzed.symbols.get(name).map(|s| &s.kind)
            {
                templates.insert(
                    name.clone(),
                    TemplateDist {
                        shape: shape.clone(),
                        formats: vec![DistFormat::Degenerate; shape.len()],
                    },
                );
            }
        }
    }
    for d in &analyzed.program.directives {
        if let Directive::Distribute {
            target,
            formats,
            span,
            ..
        } = d
        {
            // A non-positive block size has no HPF meaning; reject it here
            // (the one place every DISTRIBUTE flows through, including
            // programmatically built ASTs that never saw the parser) rather
            // than clamping silently inside the ownership arithmetic.
            for f in formats {
                if let DistFormat::CyclicK(k) = f {
                    if *k < 1 {
                        return Err(PartitionError {
                            message: format!(
                                "CYCLIC block size must be a positive integer, got CYCLIC({k})"
                            ),
                            span: *span,
                        });
                    }
                }
            }
            match templates.get_mut(target) {
                Some(t) => t.formats = formats.clone(),
                None => {
                    // DISTRIBUTE directly on an array: synthesize an identity
                    // template (HPF allows distributing arrays directly).
                    let sym = analyzed.symbols.get(target).ok_or_else(|| PartitionError {
                        message: format!("DISTRIBUTE of unknown `{target}`"),
                        span: *span,
                    })?;
                    let shape = sym
                        .shape()
                        .ok_or_else(|| PartitionError {
                            message: format!("DISTRIBUTE of non-array `{target}`"),
                            span: *span,
                        })?
                        .to_vec();
                    templates.insert(
                        target.clone(),
                        TemplateDist {
                            shape,
                            formats: formats.clone(),
                        },
                    );
                }
            }
        }
    }

    // Assign grid dimensions to distributed template dims, in order.
    let assign_pdims = |formats: &[DistFormat]| -> Vec<Option<usize>> {
        let mut next = 0usize;
        formats
            .iter()
            .map(|f| {
                if *f == DistFormat::Degenerate {
                    None
                } else {
                    let p = next.min(grid.extents.len().saturating_sub(1));
                    next += 1;
                    Some(p)
                }
            })
            .collect()
    };

    // 3. Compose alignments.
    let mut arrays: BTreeMap<String, ArrayDist> = BTreeMap::new();
    for d in &analyzed.program.directives {
        if let Directive::Align {
            alignee,
            dummies,
            target,
            target_subs,
            span,
        } = d
        {
            let sym = analyzed
                .symbols
                .get(alignee)
                .ok_or_else(|| PartitionError {
                    message: format!("ALIGN of unknown `{alignee}`"),
                    span: *span,
                })?;
            let bounds = sym
                .shape()
                .ok_or_else(|| PartitionError {
                    message: format!("ALIGN of scalar `{alignee}`"),
                    span: *span,
                })?
                .to_vec();
            // Target may be a template or another (distributed) array.
            let tdist = match templates.get(target) {
                Some(t) => t.clone(),
                None => {
                    return Err(PartitionError {
                        message: format!("ALIGN WITH unknown template `{target}`"),
                        span: *span,
                    })
                }
            };
            let pdims = assign_pdims(&tdist.formats);

            // For each array dim: find which template dim its dummy lands in.
            let subs: Vec<AlignSub> = if target_subs.is_empty() {
                dummies
                    .iter()
                    .map(|d| AlignSub::Affine {
                        dummy: d.clone(),
                        stride: 1,
                        offset: 0,
                    })
                    .collect()
            } else {
                target_subs.clone()
            };
            let mut align = vec![(1i64, 0i64); bounds.len()];
            let mut dims = vec![DimDist::Collapsed; bounds.len()];
            for (tdim, sub) in subs.iter().enumerate() {
                if let AlignSub::Affine {
                    dummy,
                    stride,
                    offset,
                } = sub
                {
                    let adim =
                        dummies
                            .iter()
                            .position(|x| x == dummy)
                            .ok_or_else(|| PartitionError {
                                message: format!("align dummy `{dummy}` not declared"),
                                span: *span,
                            })?;
                    // Template cells are normalized to 0-based.
                    let tlb = tdist.shape[tdim].0;
                    align[adim] = (*stride, *offset - tlb);
                    let textent = (tdist.shape[tdim].1 - tdist.shape[tdim].0 + 1).max(1);
                    dims[adim] = match tdist.formats[tdim] {
                        DistFormat::Degenerate => DimDist::Collapsed,
                        DistFormat::Block => {
                            let pdim = pdims[tdim].expect("distributed dim has pdim");
                            let pcount = grid.extents[pdim];
                            DimDist::Block {
                                pdim,
                                pcount,
                                block: (textent + pcount - 1) / pcount,
                            }
                        }
                        DistFormat::Cyclic => {
                            let pdim = pdims[tdim].expect("distributed dim has pdim");
                            DimDist::Cyclic {
                                pdim,
                                pcount: grid.extents[pdim],
                                k: 1,
                            }
                        }
                        DistFormat::CyclicK(k) => {
                            let pdim = pdims[tdim].expect("distributed dim has pdim");
                            DimDist::Cyclic {
                                pdim,
                                pcount: grid.extents[pdim],
                                k,
                            }
                        }
                    };
                }
            }
            arrays.insert(
                alignee.clone(),
                ArrayDist {
                    array: alignee.clone(),
                    bounds,
                    align,
                    dims,
                    replicated: false,
                    elem_bytes: sym.ty.byte_size(),
                },
            );
        }
    }

    // 3b. Arrays distributed directly (no ALIGN, DISTRIBUTE names the array).
    for (tname, t) in &templates {
        if arrays.contains_key(tname) {
            continue;
        }
        if let Some(sym) = analyzed.symbols.get(tname) {
            if sym.is_array() {
                let pdims = assign_pdims(&t.formats);
                let bounds = sym.shape().expect("array").to_vec();
                let mut align = vec![(1i64, 0i64); bounds.len()];
                let mut dims = vec![DimDist::Collapsed; bounds.len()];
                for tdim in 0..t.formats.len() {
                    let tlb = t.shape[tdim].0;
                    align[tdim] = (1, -tlb);
                    let textent = (t.shape[tdim].1 - t.shape[tdim].0 + 1).max(1);
                    dims[tdim] = match t.formats[tdim] {
                        DistFormat::Degenerate => DimDist::Collapsed,
                        DistFormat::Block => {
                            let pdim = pdims[tdim].expect("pdim");
                            let pcount = grid.extents[pdim];
                            DimDist::Block {
                                pdim,
                                pcount,
                                block: (textent + pcount - 1) / pcount,
                            }
                        }
                        DistFormat::Cyclic => {
                            let pdim = pdims[tdim].expect("pdim");
                            DimDist::Cyclic {
                                pdim,
                                pcount: grid.extents[pdim],
                                k: 1,
                            }
                        }
                        DistFormat::CyclicK(k) => {
                            let pdim = pdims[tdim].expect("pdim");
                            DimDist::Cyclic {
                                pdim,
                                pcount: grid.extents[pdim],
                                k,
                            }
                        }
                    };
                }
                arrays.insert(
                    tname.clone(),
                    ArrayDist {
                        array: tname.clone(),
                        bounds,
                        align,
                        dims,
                        replicated: false,
                        elem_bytes: sym.ty.byte_size(),
                    },
                );
            }
        }
    }

    // 4. Default: replication for unmapped arrays.
    for (name, sym) in &analyzed.symbols {
        if sym.is_array() && !arrays.contains_key(name) {
            arrays.insert(
                name.clone(),
                ArrayDist::replicated(
                    name,
                    sym.shape().expect("array").to_vec(),
                    sym.ty.byte_size(),
                ),
            );
        }
    }

    Ok(DistributionTable { grid, arrays })
}

/// Reshape a grid to a new total processor count, preserving rank: factor
/// `n` into `rank` near-equal powers (2-heavy, matching hypercube subcubes).
pub fn reshape_grid(grid: &ProcGrid, n: usize) -> ProcGrid {
    let rank = grid.extents.len();
    let mut extents = vec![1i64; rank];
    let mut remaining = n as i64;
    // Greedy: repeatedly give the smallest dimension a factor of 2 (or the
    // whole remainder when odd / rank exhausted).
    while remaining > 1 {
        let d = (0..rank).min_by_key(|&d| extents[d]).expect("rank >= 1");
        if remaining % 2 == 0 {
            extents[d] *= 2;
            remaining /= 2;
        } else {
            extents[d] *= remaining;
            remaining = 1;
        }
    }
    ProcGrid {
        name: grid.name.clone(),
        extents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_lang::{analyze, parse_program};
    use std::collections::BTreeMap as Map;

    fn table(src: &str, nodes: Option<usize>) -> DistributionTable {
        let p = parse_program(src).unwrap();
        let a = analyze(&p, &Map::new()).unwrap();
        partition(&a, nodes).unwrap()
    }

    const LAP: &str = "
PROGRAM T
INTEGER, PARAMETER :: N = 16
REAL U(N,N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE TT(N,N)
!HPF$ ALIGN U(I,J) WITH TT(I,J)
!HPF$ DISTRIBUTE TT(BLOCK,*) ONTO P
U = 0.0
END
";

    #[test]
    fn block_star_layout() {
        let t = table(LAP, None);
        assert_eq!(t.grid.total(), 4);
        let u = t.get("U").unwrap();
        assert!(!u.replicated);
        assert!(matches!(
            u.dims[0],
            DimDist::Block {
                pcount: 4,
                block: 4,
                ..
            }
        ));
        assert_eq!(u.dims[1], DimDist::Collapsed);
        // Rows 1..4 on coord 0, 5..8 on coord 1, etc.
        assert_eq!(u.owner_coord(0, 1), 0);
        assert_eq!(u.owner_coord(0, 4), 0);
        assert_eq!(u.owner_coord(0, 5), 1);
        assert_eq!(u.owner_coord(0, 16), 3);
        assert_eq!(u.local_extent(0, 2), 4);
        assert_eq!(u.local_elems(&[0]), 64);
    }

    #[test]
    fn ownership_is_a_partition() {
        let t = table(LAP, None);
        let u = t.get("U").unwrap();
        // every index owned by exactly one coord
        for i in 1..=16 {
            let owners: Vec<i64> = (0..4).filter(|&c| u.owner_coord(0, i) == c).collect();
            assert_eq!(owners.len(), 1, "index {i}");
        }
        let total: i64 = (0..4).map(|c| u.local_extent(0, c)).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn cyclic_distribution() {
        let src = "
PROGRAM T
INTEGER, PARAMETER :: N = 10
REAL A(N)
!HPF$ PROCESSORS P(3)
!HPF$ TEMPLATE TT(N)
!HPF$ ALIGN A(I) WITH TT(I)
!HPF$ DISTRIBUTE TT(CYCLIC) ONTO P
A = 0.0
END
";
        let t = table(src, None);
        let a = t.get("A").unwrap();
        assert!(matches!(a.dims[0], DimDist::Cyclic { pcount: 3, .. }));
        // 1-based index i lands on (i-1) mod 3.
        assert_eq!(a.owner_coord(0, 1), 0);
        assert_eq!(a.owner_coord(0, 2), 1);
        assert_eq!(a.owner_coord(0, 4), 0);
        // 10 elements over 3 procs: 4/3/3.
        assert_eq!(a.local_extent(0, 0), 4);
        assert_eq!(a.local_extent(0, 1), 3);
        assert_eq!(a.local_extent(0, 2), 3);
    }

    /// A `CYCLIC(k)` with `k <= 0` is rejected during partitioning with a
    /// located error — programmatically built ASTs bypass the parser's own
    /// check, so the clamp-free ownership arithmetic relies on this.
    #[test]
    fn non_positive_cyclic_block_size_is_rejected() {
        use hpf_lang::ast::{Directive, DistFormat};
        let src = "
PROGRAM T
INTEGER, PARAMETER :: N = 10
REAL A(N)
!HPF$ PROCESSORS P(2)
!HPF$ DISTRIBUTE A(CYCLIC(3)) ONTO P
A = 0.0
END
";
        for bad in [0i64, -4] {
            let mut p = parse_program(src).unwrap();
            for d in &mut p.directives {
                if let Directive::Distribute { formats, .. } = d {
                    formats[0] = DistFormat::CyclicK(bad);
                }
            }
            let a = analyze(&p, &Map::new()).unwrap();
            let err = partition(&a, None).unwrap_err();
            assert!(
                err.message.contains("CYCLIC block size"),
                "unexpected message: {}",
                err.message
            );
            assert!(err.span.line > 0, "error should carry the directive span");
        }
    }

    /// `grid_extents` overrides are validated: extents must be positive
    /// and hold exactly the requested number of processors.
    #[test]
    fn grid_extents_are_validated() {
        let p = parse_program(LAP).unwrap();
        let a = analyze(&p, &Map::new()).unwrap();
        assert!(partition_onto(&a, Some(8), Some(&[2, 4])).is_ok());
        let err = partition_onto(&a, Some(8), Some(&[2, 2])).unwrap_err();
        assert!(err.message.contains("8 were requested"), "{}", err.message);
        let err = partition_onto(&a, Some(8), Some(&[8, 0])).unwrap_err();
        assert!(err.message.contains("positive"), "{}", err.message);
        let err = partition_onto(&a, Some(1), Some(&[])).unwrap_err();
        assert!(err.message.contains("non-empty"), "{}", err.message);
    }

    #[test]
    fn two_dim_grid() {
        let src = "
PROGRAM T
INTEGER, PARAMETER :: N = 8
REAL U(N,N)
!HPF$ PROCESSORS P(2,2)
!HPF$ TEMPLATE TT(N,N)
!HPF$ ALIGN U(I,J) WITH TT(I,J)
!HPF$ DISTRIBUTE TT(BLOCK,BLOCK) ONTO P
U = 0.0
END
";
        let t = table(src, None);
        assert_eq!(t.grid.extents, vec![2, 2]);
        let u = t.get("U").unwrap();
        assert_eq!(u.dims[0].pdim(), Some(0));
        assert_eq!(u.dims[1].pdim(), Some(1));
        assert_eq!(u.local_elems(&[0, 0]), 16);
        assert!(u.owns(&[0, 0], &[1, 1]));
        assert!(u.owns(&[1, 1], &[8, 8]));
        assert!(!u.owns(&[0, 0], &[8, 8]));
    }

    #[test]
    fn unmapped_arrays_replicated() {
        let t = table("PROGRAM T\nREAL W(8)\nW = 0.0\nEND\n", Some(4));
        let w = t.get("W").unwrap();
        assert!(w.replicated);
        assert_eq!(w.local_elems(&[0]), 8);
    }

    #[test]
    fn align_offset_shifts_ownership() {
        let src = "
PROGRAM T
INTEGER, PARAMETER :: N = 8
REAL A(N)
!HPF$ PROCESSORS P(2)
!HPF$ TEMPLATE TT(9)
!HPF$ ALIGN A(I) WITH TT(I+1)
!HPF$ DISTRIBUTE TT(BLOCK) ONTO P
A = 0.0
END
";
        let t = table(src, None);
        let a = t.get("A").unwrap();
        // template blocks: cells 0..4 -> p0, 5..8 -> p1 (block=5, 9 cells);
        // A(I) sits at template cell I+1-1 = I. A(4)->cell 4->p0, A(5)->p1.
        assert_eq!(a.owner_coord(0, 4), 0);
        assert_eq!(a.owner_coord(0, 5), 1);
    }

    #[test]
    fn distribute_array_directly() {
        let src = "
PROGRAM T
INTEGER, PARAMETER :: N = 8
REAL A(N)
!HPF$ PROCESSORS P(2)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
A = 0.0
END
";
        let t = table(src, None);
        let a = t.get("A").unwrap();
        assert!(matches!(
            a.dims[0],
            DimDist::Block {
                pcount: 2,
                block: 4,
                ..
            }
        ));
    }

    #[test]
    fn nodes_override_reshapes() {
        let t = table(LAP, Some(8));
        assert_eq!(t.grid.total(), 8);
        let u = t.get("U").unwrap();
        assert_eq!(u.dims[0].pcount(), 8);
        // 16 rows over 8 procs: 2 each.
        assert_eq!(u.local_extent(0, 0), 2);
    }

    #[test]
    fn exact_extents_override_beats_reshape() {
        // reshape_grid would turn the 2-D directive grid into [4, 2] for 8
        // nodes; the exact override pins the transposed shape instead —
        // the mechanism compile-once artifacts use to match generated
        // source bit-for-bit.
        let src = "
PROGRAM T
INTEGER, PARAMETER :: N = 16
REAL U(N,N)
!HPF$ PROCESSORS P(2,2)
!HPF$ TEMPLATE TT(N,N)
!HPF$ ALIGN U(I,J) WITH TT(I,J)
!HPF$ DISTRIBUTE TT(BLOCK,BLOCK) ONTO P
U = 0.0
END
";
        let p = parse_program(src).unwrap();
        let a = analyze(&p, &Map::new()).unwrap();
        let reshaped = partition(&a, Some(8)).unwrap();
        assert_eq!(reshaped.grid.extents, vec![4, 2]);
        let exact = partition_onto(&a, Some(8), Some(&[2, 4])).unwrap();
        assert_eq!(exact.grid.extents, vec![2, 4]);
        assert_eq!(exact.grid.total(), 8);
        assert_eq!(exact.grid.name, "P");
        let u = exact.get("U").unwrap();
        assert_eq!(u.dims[0].pcount(), 2);
        assert_eq!(u.dims[1].pcount(), 4);
    }

    #[test]
    fn reshape_grid_factors() {
        let g = ProcGrid {
            name: "P".into(),
            extents: vec![2, 2],
        };
        let r = reshape_grid(&g, 8);
        assert_eq!(r.total(), 8);
        assert_eq!(r.extents.len(), 2);
        let r = reshape_grid(&g, 6);
        assert_eq!(r.total(), 6);
    }

    #[test]
    fn grid_coords_roundtrip() {
        let g = ProcGrid {
            name: "P".into(),
            extents: vec![2, 4],
        };
        for n in 0..8 {
            assert_eq!(g.node_of(&g.coords(n)), n);
        }
    }

    #[test]
    fn owned_count_in_range_block() {
        let t = table(LAP, None);
        let u = t.get("U").unwrap();
        // coordinates 0 owns rows 1..4; range 2..15 intersected = 3.
        assert_eq!(u.owned_count_in_range(0, 0, 2, 15, 1), 3);
        assert_eq!(u.owned_count_in_range(0, 1, 2, 15, 1), 4);
        assert_eq!(u.owned_count_in_range(0, 3, 2, 15, 1), 3);
        // collapsed dim counts the whole range
        assert_eq!(u.owned_count_in_range(1, 0, 2, 15, 1), 14);
    }
}
