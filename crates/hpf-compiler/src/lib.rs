//! # hpf-compiler — Phase 1 of the HPF/Fortran 90D framework
//!
//! The source-to-source compilation pipeline of §4.1:
//!
//! 1. parse (in `hpf-lang`),
//! 2. **normalization** — array assignments and `where` become `forall`
//!    ([`normalize()`](normalize())),
//! 3. **partitioning** — directives resolve to a two-level data mapping
//!    ([`dist`]),
//! 4. **sequentialization** — parallel constructs become local loop nests,
//! 5. **communication detection** — off-processor references become
//!    collective communication calls ([`lower`]),
//! 6. emission of the loosely synchronous **SPMD program structure**
//!    ([`spmd`]) of alternating local-computation / global-communication
//!    phases.

pub mod dist;
pub mod lower;
pub mod normalize;
pub mod ops;
pub mod spmd;

pub use dist::{partition, partition_onto, ArrayDist, DimDist, DistributionTable, ProcGrid};
pub use lower::{compile, CompileError, CompileOptions};
pub use normalize::normalize;
pub use ops::{count_assign, count_expr, expr_type, ExprType, OpCounts};
pub use spmd::{CommPhase, CompPhase, CompileWarning, SeqBlock, SpmdNode, SpmdProgram};

/// Flatten the phase tree (loops/branches descended) — shared by tests and
/// downstream consumers that want a static phase census.
pub fn flatten_phases(nodes: &[SpmdNode], out: &mut Vec<SpmdNode>) {
    for n in nodes {
        match n {
            SpmdNode::Loop { body, .. } => flatten_phases(body, out),
            SpmdNode::Branch {
                arms, else_body, ..
            } => {
                for (_, b) in arms {
                    flatten_phases(b, out);
                }
                flatten_phases(else_body, out);
            }
            other => out.push(other.clone()),
        }
    }
}

#[cfg(test)]
mod tests;
