//! Lowering: sequentialization and communication detection (§4.1 steps 3-5).
//!
//! Walks the normalized AST and emits the loosely synchronous SPMD program:
//! each forall becomes (collective-communication level, local-computation
//! level[, collective write-back level]) exactly as Figure 2 of the paper
//! shows; reductions become partial-computation + global-combine phases;
//! scalar code becomes replicated `Seq` blocks.

use crate::dist::{ArrayDist, DistributionTable};
use crate::normalize::normalize;
use crate::ops::{count_assign, count_expr, OpCounts};
use crate::spmd::{CommPhase, CompPhase, CompileWarning, SeqBlock, SpmdNode, SpmdProgram};
use hpf_lang::ast::*;
use hpf_lang::sema::{const_eval_in, AnalyzedProgram};
use hpf_lang::Span;
use machine::CollectiveOp;
use std::collections::BTreeMap;

/// Options steering compilation and the static heuristics (the knobs the
/// paper exposes to the user: critical-variable values, optimization
/// toggles, machine size).
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Physical node count (overrides the PROCESSORS total when different).
    pub nodes: usize,
    /// Static mask-density heuristic for masked foralls (the predictor's
    /// guess when no profile exists; ground truth comes from execution).
    pub mask_density_hint: f64,
    /// Trip-count guess for DO WHILE loops the tracer cannot resolve.
    pub while_trips_hint: u64,
    /// Branch-probability heuristic for IF arms.
    pub branch_prob_hint: f64,
    /// User-supplied critical-variable values (§4.2: "allowing the user to
    /// explicitly specify their values").
    pub critical_values: BTreeMap<String, i64>,
    /// Compiler optimization toggle: reorder generated loops for stride-1
    /// inner access where legal (§4.2 "loop re-ordering etc.").
    pub loop_reorder: bool,
    /// Exact processor-grid extents, replacing the PROCESSORS arrangement
    /// verbatim (no grid reshaping). Used when re-binding the machine-size
    /// critical variable on a compile-once artifact: the caller supplies
    /// the grid the equivalent regenerated source would declare.
    pub grid_extents: Option<Vec<i64>>,
    /// Parallel I/O configuration (stripe factor, I/O-server count) applied
    /// to READ/WRITE/CHECKPOINT statements. The default leaves both on the
    /// machine's own table, so programs without I/O statements compile
    /// identically to builds that predate the I/O subsystem.
    pub io: hpf_io::IoConfig,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            nodes: 8,
            mask_density_hint: 1.0,
            while_trips_hint: 16,
            branch_prob_hint: 0.5,
            critical_values: BTreeMap::new(),
            loop_reorder: false,
            grid_extents: None,
            io: hpf_io::IoConfig::default(),
        }
    }
}

/// Compilation error.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    pub message: String,
    pub span: Span,
    /// When the failure came from parallel-I/O validation, the typed cause.
    /// Pipeline consumers route these to the `io` stage instead of
    /// `compile`, so services and CLIs can answer with I/O-specific
    /// diagnostics.
    pub io: Option<hpf_io::IoError>,
}

impl CompileError {
    /// Wrap a typed I/O subsystem error at `span`.
    pub fn from_io(err: hpf_io::IoError, span: Span) -> CompileError {
        CompileError {
            message: err.to_string(),
            span,
            io: Some(err),
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for CompileError {}

type CResult<T> = Result<T, CompileError>;

fn cerr<T>(message: impl Into<String>, span: Span) -> CResult<T> {
    Err(CompileError {
        message: message.into(),
        span,
        io: None,
    })
}

/// Compile an analyzed program to the SPMD IR.
pub fn compile(analyzed: &AnalyzedProgram, opts: &CompileOptions) -> CResult<SpmdProgram> {
    let _span = hpf_trace::span("compile");
    let normalized = {
        let _s = hpf_trace::span("normalize");
        normalize(analyzed).map_err(|e| CompileError {
            message: e.message,
            span: e.span,
            io: None,
        })?
    };
    let dist = {
        let _s = hpf_trace::span("partition");
        crate::dist::partition_onto(analyzed, Some(opts.nodes), opts.grid_extents.as_deref())
            .map_err(|e| CompileError {
                message: e.message,
                span: e.span,
                io: None,
            })?
    };

    let _lower_span = hpf_trace::span("lower");
    let mut lw = Lower {
        analyzed,
        dist: &dist,
        opts,
        loop_env: BTreeMap::new(),
        warnings: Vec::new(),
    };
    let mut body = Vec::new();
    for st in &normalized {
        lw.stmt(st, &mut body)?;
    }
    let warnings = lw.warnings;

    Ok(SpmdProgram {
        name: analyzed.program.name.clone(),
        nodes: opts.nodes,
        grid: dist.grid.clone(),
        dist,
        body,
        symbols: analyzed.symbols.clone(),
        warnings,
    })
}

struct Lower<'a> {
    analyzed: &'a AnalyzedProgram,
    dist: &'a DistributionTable,
    opts: &'a CompileOptions,
    /// Enclosing DO variables bound to representative (midpoint) values so
    /// that dependent bounds (triangular loops) still resolve statically.
    loop_env: BTreeMap<String, i64>,
    /// Graceful-degradation diagnostics (attached to the SpmdProgram).
    warnings: Vec<CompileWarning>,
}

impl<'a> Lower<'a> {
    /// Constant-evaluate an expression using parameters, traced critical
    /// variables, user-specified critical values, and loop midpoints.
    fn eval_i64(&self, e: &Expr) -> CResult<i64> {
        let mut env = self.loop_env.clone();
        for (k, v) in &self.analyzed.resolved_critical {
            env.entry(k.clone()).or_insert(*v);
        }
        for (k, v) in &self.opts.critical_values {
            env.insert(k.clone(), *v);
        }
        match const_eval_in(e, &self.analyzed.symbols, &env) {
            Ok(v) => v.as_i64().ok_or_else(|| CompileError {
                message: "bound did not evaluate to an integer".into(),
                span: e.span(),
                io: None,
            }),
            Err(err) => cerr(
                format!(
                    "cannot statically resolve `{}` ({}); supply the critical variable's value",
                    hpf_lang::pretty_expr(e),
                    err.message
                ),
                e.span(),
            ),
        }
    }

    /// Graceful degradation for loop/forall bounds (§4.2's critical
    /// variables): when a bound cannot be resolved statically, fall back to
    /// `default` — a worst-case value — and record a warning instead of
    /// rejecting the program. The prediction becomes a bound, not an exact
    /// estimate, which is the honest answer when the trip count is unknown.
    fn eval_bound(&mut self, e: &Expr, default: i64) -> i64 {
        match self.eval_i64(e) {
            Ok(v) => v,
            Err(err) => {
                self.warnings.push(CompileWarning {
                    message: format!("{}; assuming worst-case bound {default}", err.message),
                    span: e.span(),
                });
                default
            }
        }
    }

    /// The largest declared array extent — the worst-case trip count for a
    /// loop whose bound depends on an unresolvable critical variable (every
    /// loop in the modelled programs iterates over some declared array).
    fn worst_case_extent(&self) -> i64 {
        self.analyzed
            .symbols
            .values()
            .filter_map(|s| s.shape())
            .flat_map(|dims| dims.iter().map(|&(lo, hi)| hi - lo + 1))
            .max()
            .unwrap_or(self.opts.while_trips_hint as i64)
            .max(1)
    }

    fn stmt(&mut self, st: &Stmt, out: &mut Vec<SpmdNode>) -> CResult<()> {
        match st {
            Stmt::Forall { header, body, span } => self.lower_forall(header, body, *span, out),
            Stmt::Assign { lhs, rhs, span } => self.lower_scalar_assign(lhs, rhs, *span, out),
            Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
                span,
            } => {
                let worst = self.worst_case_extent();
                let lo_v = self.eval_bound(lo, 1);
                let hi_v = self.eval_bound(hi, worst);
                let st_v = match step {
                    Some(s) => self.eval_bound(s, 1),
                    None => 1,
                };
                if st_v == 0 {
                    return cerr("DO step of zero", *span);
                }
                let trips = if (st_v > 0 && lo_v > hi_v) || (st_v < 0 && lo_v < hi_v) {
                    0
                } else {
                    ((hi_v - lo_v) / st_v + 1).max(0) as u64
                };
                // Bind the loop variable to its midpoint for nested bounds.
                let mid = lo_v + ((hi_v - lo_v) / 2 / st_v.max(1)) * st_v.max(1);
                let prev = self.loop_env.insert(var.clone(), mid);
                let mut inner = Vec::new();
                for s in body {
                    self.stmt(s, &mut inner)?;
                }
                match prev {
                    Some(p) => {
                        self.loop_env.insert(var.clone(), p);
                    }
                    None => {
                        self.loop_env.remove(var);
                    }
                }
                out.push(SpmdNode::Loop {
                    var: var.clone(),
                    trips,
                    estimated: false,
                    body: inner,
                    span: *span,
                });
                Ok(())
            }
            Stmt::DoWhile { cond, body, span } => {
                // Induction-variable recognition: `DO WHILE (v > c)` with a
                // body step `v = v / k` is a geometric loop with a statically
                // known trip count (the LFK-2 ICCG level loop). The induction
                // variable is bound to its geometric mean for dependent
                // bounds — still a heuristic, so recursive-halving kernels
                // keep a deliberate residual error.
                let induction = self.recognize_geometric(cond, body);
                let (trips, estimated, bind) = match induction {
                    Some((var, trips, geo_mid)) => (trips, false, Some((var, geo_mid))),
                    None => (self.opts.while_trips_hint, true, None),
                };
                let prev = bind
                    .as_ref()
                    .map(|(var, mid)| (var.clone(), self.loop_env.insert(var.clone(), *mid)));

                let mut inner = Vec::new();
                // Charge the condition evaluation per trip as a Seq block.
                let cond_ops = count_expr(cond, self.analyzed, &BTreeMap::new());
                inner.push(SpmdNode::Seq(SeqBlock {
                    label: "while-test".into(),
                    span: *span,
                    ops: cond_ops,
                }));
                for s in body {
                    self.stmt(s, &mut inner)?;
                }
                if let Some((var, old)) = prev {
                    match old {
                        Some(v) => {
                            self.loop_env.insert(var, v);
                        }
                        None => {
                            self.loop_env.remove(&var);
                        }
                    }
                }
                out.push(SpmdNode::Loop {
                    var: "<while>".into(),
                    trips,
                    estimated,
                    body: inner,
                    span: *span,
                });
                Ok(())
            }
            Stmt::If {
                arms,
                else_body,
                span,
            } => {
                let mut spmd_arms = Vec::new();
                for (cond, body) in arms {
                    let mut inner = Vec::new();
                    let cond_ops = count_expr(cond, self.analyzed, &BTreeMap::new());
                    inner.push(SpmdNode::Seq(SeqBlock {
                        label: "if-test".into(),
                        span: cond.span(),
                        ops: cond_ops,
                    }));
                    for s in body {
                        self.stmt(s, &mut inner)?;
                    }
                    spmd_arms.push((self.opts.branch_prob_hint, inner));
                }
                let mut els = Vec::new();
                for s in else_body {
                    self.stmt(s, &mut els)?;
                }
                out.push(SpmdNode::Branch {
                    arms: spmd_arms,
                    else_body: els,
                    span: *span,
                });
                Ok(())
            }
            Stmt::Print { items, span } => {
                let mut ops = OpCounts::zero();
                for e in items {
                    ops += count_expr(e, self.analyzed, &BTreeMap::new());
                }
                ops.calls += 1.0; // I/O library call
                out.push(SpmdNode::Seq(SeqBlock {
                    label: "print".into(),
                    span: *span,
                    ops,
                }));
                Ok(())
            }
            Stmt::Stop { .. } => Ok(()),
            Stmt::Io { kind, arrays, span } => self.lower_io(*kind, arrays, *span, out),
            Stmt::Where { span, .. } => cerr("WHERE should have been normalized away", *span),
            Stmt::Call { name, span, .. } => cerr(
                format!("CALL `{name}`: user procedures are outside the subset"),
                *span,
            ),
        }
    }

    /// Lower a READ/WRITE/CHECKPOINT statement to a single parallel-I/O
    /// phase. Each named array must be distributed (parallel I/O moves the
    /// partitioned sections; replicated data goes through the host's normal
    /// sequential path and is outside the model). A bare CHECKPOINT snapshots
    /// every distributed array in the program.
    fn lower_io(
        &mut self,
        kind: IoStmtKind,
        arrays: &[String],
        span: Span,
        out: &mut Vec<SpmdNode>,
    ) -> CResult<()> {
        let io_kind = match kind {
            IoStmtKind::Read => hpf_io::IoKind::Read,
            IoStmtKind::Write => hpf_io::IoKind::Write,
            IoStmtKind::Checkpoint => hpf_io::IoKind::Checkpoint,
        };

        let names: Vec<String> = if arrays.is_empty() {
            // Bare CHECKPOINT: all distributed arrays, in deterministic
            // (BTreeMap) order.
            self.dist
                .arrays
                .iter()
                .filter(|(_, ad)| !ad.replicated)
                .map(|(n, _)| n.clone())
                .collect()
        } else {
            arrays.to_vec()
        };
        if names.is_empty() {
            return Err(CompileError::from_io(
                hpf_io::IoError::UnpartitionedArray {
                    array: "<none>".into(),
                },
                span,
            ));
        }

        let nodes = self.dist.grid.total();
        let mut total_bytes = 0u64;
        let mut per_node = vec![0u64; nodes];
        for name in &names {
            let ad = match self.dist.get(name) {
                Some(ad) if !ad.replicated => ad,
                Some(_) => {
                    return Err(CompileError::from_io(
                        hpf_io::IoError::UnpartitionedArray {
                            array: name.clone(),
                        },
                        span,
                    ))
                }
                None => {
                    let err = if self.analyzed.symbols.contains_key(name) {
                        hpf_io::IoError::UnpartitionedArray {
                            array: name.clone(),
                        }
                    } else {
                        hpf_io::IoError::UnknownArray {
                            array: name.clone(),
                        }
                    };
                    return Err(CompileError::from_io(err, span));
                }
            };
            total_bytes += ad.elems() * ad.elem_bytes;
            for (n, acc) in per_node.iter_mut().enumerate() {
                *acc += ad.local_elems(&self.dist.grid.coords(n)) * ad.elem_bytes;
            }
        }

        let (servers, stripe_factor) = self
            .opts
            .io
            .resolve(self.opts.nodes)
            .map_err(|e| CompileError::from_io(e, span))?;

        out.push(SpmdNode::Io {
            phase: hpf_io::IoPhase {
                kind: io_kind,
                arrays: names,
                total_bytes,
                bytes_per_node: per_node.iter().copied().max().unwrap_or(0),
                participants: nodes,
                servers,
                stripe_factor,
            },
            span,
        });
        Ok(())
    }

    /// Recognize `DO WHILE (v > c)` / `DO WHILE (v >= c)` with a body step
    /// `v = v / k` (k ≥ 2) and a statically known initial `v`: returns
    /// (variable, exact trip count, geometric-mean value of `v`).
    fn recognize_geometric(&self, cond: &Expr, body: &[Stmt]) -> Option<(String, u64, i64)> {
        let (var, limit, strict) = match cond {
            Expr::Binary { op, lhs, rhs, .. } => {
                let v = match lhs.as_ref() {
                    Expr::Ref(r) if r.subs.is_empty() => r.name.clone(),
                    _ => return None,
                };
                let c = self.eval_i64(rhs).ok()?;
                match op {
                    BinOp::Gt => (v, c, true),
                    BinOp::Ge => (v, c, false),
                    _ => return None,
                }
            }
            _ => return None,
        };
        // Find the division step.
        let mut k = None;
        for st in body {
            if let Stmt::Assign { lhs, rhs, .. } = st {
                if lhs.name == var && lhs.subs.is_empty() {
                    if let Expr::Binary {
                        op: BinOp::Div,
                        lhs: l,
                        rhs: r,
                        ..
                    } = rhs
                    {
                        if matches!(l.as_ref(), Expr::Ref(rr) if rr.name == var && rr.subs.is_empty())
                        {
                            if let Expr::IntLit(kk, _) = r.as_ref() {
                                if *kk >= 2 {
                                    k = Some(*kk);
                                }
                            }
                        }
                    }
                }
            }
        }
        let k = k?;
        let init = self.eval_i64(&Expr::var(var.clone())).ok()?;
        let mut v = init;
        let mut trips = 0u64;
        let mut post_sum = 0i64;
        while (strict && v > limit) || (!strict && v >= limit) {
            v /= k;
            post_sum += v;
            trips += 1;
            if trips > 64 {
                return None; // not a plausible geometric loop
            }
        }
        if trips == 0 {
            return None;
        }
        // Work-preserving representative: the mean of the post-step values
        // (dependent loop bounds are linear in the induction variable, so
        // trips × mean reproduces the total iteration count).
        let mean = (post_sum as f64 / trips as f64).round() as i64;
        Some((var, trips, mean.max(1)))
    }

    // ---- scalar assignments (incl. reductions) ---------------------------

    fn lower_scalar_assign(
        &mut self,
        lhs: &DataRef,
        rhs: &Expr,
        span: Span,
        out: &mut Vec<SpmdNode>,
    ) -> CResult<()> {
        // Detect a top-level reduction structure: the RHS contains one or
        // more transformational reductions over distributed arrays.
        let mut reductions = Vec::new();
        collect_reductions(rhs, &mut reductions);
        if reductions.is_empty() {
            let ops = count_assign(lhs, rhs, self.analyzed, &BTreeMap::new());
            out.push(SpmdNode::Seq(SeqBlock {
                label: format!("{} = …", lhs.name),
                span,
                ops,
            }));
            return Ok(());
        }

        for (intr, args, rspan) in reductions {
            let arr = match args.first() {
                Some(Expr::Ref(r)) if r.subs.is_empty() => r.name.clone(),
                _ => return cerr("reduction argument must be a whole array", rspan),
            };
            let ad = self.dist.get(&arr).ok_or_else(|| CompileError {
                message: format!("no distribution for `{arr}`"),
                span: rspan,
                io: None,
            })?;
            let elem_bytes = ad.elem_bytes;

            // Partial-reduction computation phase over locally owned elems.
            let nodes = self.dist.grid.total();
            let mut per_node = Vec::with_capacity(nodes);
            for n in 0..nodes {
                per_node.push(ad.local_elems(&self.dist.grid.coords(n)));
            }
            let total: u64 = if ad.replicated {
                ad.elems()
            } else {
                per_node.iter().sum()
            };
            let mut per_iter = OpCounts {
                loads: 1.0,
                ..OpCounts::zero()
            };
            per_iter.index += 1.0;
            let (op, label) = match intr {
                Intrinsic::Sum => {
                    per_iter.fadd += 1.0;
                    (CollectiveOp::Reduce, "global sum")
                }
                Intrinsic::Product => {
                    per_iter.fmul += 1.0;
                    (CollectiveOp::Reduce, "global product")
                }
                Intrinsic::MaxVal | Intrinsic::MinVal => {
                    per_iter.cmp += 1.0;
                    (CollectiveOp::Reduce, "global max/min")
                }
                Intrinsic::MaxLoc | Intrinsic::MinLoc => {
                    per_iter.cmp += 1.0;
                    per_iter.int_ops += 1.0;
                    (CollectiveOp::ReduceLoc, "maxloc")
                }
                Intrinsic::DotProduct => {
                    per_iter.loads += 1.0;
                    per_iter.index += 1.0;
                    per_iter.fadd += 1.0;
                    per_iter.fmul += 1.0;
                    (CollectiveOp::Reduce, "dot product")
                }
                other => {
                    return cerr(
                        format!("{} is not a supported reduction", other.name()),
                        rspan,
                    )
                }
            };
            let ws = per_node.iter().copied().max().unwrap_or(0) * elem_bytes;
            out.push(SpmdNode::Comp(CompPhase {
                label: format!("partial {label} over {arr}"),
                span: rspan,
                total_iters: total,
                per_node_iters: per_node,
                per_iter,
                masked_ops: None,
                mask_density_hint: None,
                loop_depth: 1,
                working_set_bytes: ws,
                locality: 1.0,
            }));
            if !ad.replicated && nodes > 1 {
                out.push(SpmdNode::Comm(CommPhase {
                    label: format!("{label} combine"),
                    span: rspan,
                    op,
                    bytes_per_node: elem_bytes,
                    participants: nodes,
                    contiguous: true,
                    shift_grid_dim: None,
                    arrays: vec![arr],
                }));
            }
        }

        // Residual scalar work combining the reduction results.
        let mut ops = OpCounts {
            stores: 1.0,
            ..OpCounts::zero()
        };
        ops += count_residual(rhs, self.analyzed);
        out.push(SpmdNode::Seq(SeqBlock {
            label: format!("{} = …", lhs.name),
            span,
            ops,
        }));
        Ok(())
    }

    // ---- forall -----------------------------------------------------------

    fn lower_forall(
        &mut self,
        header: &ForallHeader,
        body: &[Stmt],
        span: Span,
        out: &mut Vec<SpmdNode>,
    ) -> CResult<()> {
        // Resolve the index space.
        struct TripletR {
            var: String,
            lo: i64,
            hi: i64,
            st: i64,
        }
        let mut trips = Vec::new();
        let worst = self.worst_case_extent();
        for t in &header.triplets {
            let lo = self.eval_bound(&t.lo, 1);
            let hi = self.eval_bound(&t.hi, worst);
            let st = match &t.stride {
                Some(s) => self.eval_bound(s, 1),
                None => 1,
            };
            if st == 0 {
                return cerr("forall stride of zero", span);
            }
            trips.push(TripletR {
                var: t.var.clone(),
                lo,
                hi,
                st,
            });
        }
        let count_of = |t: &TripletR| -> u64 { (((t.hi - t.lo) / t.st) + 1).max(0) as u64 };
        let dummies: BTreeMap<String, ()> = trips.iter().map(|t| (t.var.clone(), ())).collect();

        for st_body in body {
            let (lhs, rhs) = match st_body {
                Stmt::Assign { lhs, rhs, .. } => (lhs, rhs),
                Stmt::Forall {
                    header: h2,
                    body: b2,
                    span: s2,
                } => {
                    // Nested forall: lower independently (iteration-space
                    // product is approximated by scaling inside a Loop).
                    let outer: u64 = trips.iter().map(count_of).product();
                    let mut inner = Vec::new();
                    self.lower_forall(h2, b2, *s2, &mut inner)?;
                    out.push(SpmdNode::Loop {
                        var: "<forall>".into(),
                        trips: outer,
                        estimated: false,
                        body: inner,
                        span: *s2,
                    });
                    continue;
                }
                other => {
                    return cerr("forall body must be assignments", other.span());
                }
            };

            let nodes = self.dist.grid.total();
            let lhs_dist = self.dist.get(&lhs.name).ok_or_else(|| CompileError {
                message: format!("no distribution for `{}`", lhs.name),
                span: lhs.span,
                io: None,
            })?;

            // Map each triplet dummy to the LHS dimension it indexes
            // (affine, stride ±1) — the owner-computes partitioning basis.
            // dummy -> (lhs_dim, a, b) with index = a*dummy + b.
            let mut dummy_dim: BTreeMap<String, (usize, i64, i64)> = BTreeMap::new();
            let mut lhs_indirect = false;
            for (d, s) in lhs.subs.iter().enumerate() {
                match s {
                    Subscript::Index(e) => match affine_in(e, &dummies) {
                        Some((Some(v), a, b)) => {
                            dummy_dim.insert(v, (d, a, b));
                        }
                        Some((None, _, _)) => {} // constant subscript
                        None => lhs_indirect = true,
                    },
                    Subscript::Triplet { .. } => {
                        return cerr("LHS sections inside forall bodies", lhs.span)
                    }
                }
            }

            // Per-node iteration counts (owner-computes on the LHS).
            let mut per_node = vec![1u64; nodes];
            let mut total: u64 = 1;
            for t in &trips {
                let cnt = count_of(t);
                total = total.saturating_mul(cnt);
                match dummy_dim.get(&t.var) {
                    Some(&(d, a, b)) if lhs_dist.dims[d].is_distributed() && !lhs_indirect => {
                        let pdim = lhs_dist.dims[d].pdim().expect("distributed");
                        for (n, pn) in per_node.iter_mut().enumerate() {
                            let c = self.dist.grid.coords(n)[pdim];
                            // index values: a*dummy+b over dummy range
                            let (ilo, ihi, ist) = (a * t.lo + b, a * t.hi + b, a * t.st);
                            *pn = pn
                                .saturating_mul(lhs_dist.owned_count_in_range(d, c, ilo, ihi, ist));
                        }
                    }
                    _ => {
                        for pn in per_node.iter_mut() {
                            *pn = pn.saturating_mul(cnt);
                        }
                    }
                }
            }
            if lhs_dist.replicated || lhs_indirect {
                // replicated LHS: every node executes everything
                per_node = vec![total; nodes];
            }

            // ---- communication detection over RHS (and mask) ----
            let trip_counts: BTreeMap<String, u64> =
                trips.iter().map(|t| (t.var.clone(), count_of(t))).collect();
            let mut comm_phases: Vec<CommPhase> = Vec::new();
            let analyze_expr = |e: &Expr, phases: &mut Vec<CommPhase>| -> CResult<()> {
                let mut refs = Vec::new();
                collect_refs(e, &mut refs);
                for r in refs {
                    if let Some(ph) = self.classify_ref(
                        &r,
                        lhs,
                        lhs_dist,
                        &dummy_dim,
                        &dummies,
                        &trip_counts,
                        nodes,
                    )? {
                        merge_phase(phases, ph);
                    }
                }
                Ok(())
            };
            analyze_expr(rhs, &mut comm_phases)?;
            if let Some(m) = &header.mask {
                analyze_expr(m, &mut comm_phases)?;
            }

            // ---- operation counts ----
            let assign_ops = count_assign(lhs, rhs, self.analyzed, &dummies);
            let (per_iter, masked_ops, mask_hint) = match &header.mask {
                None => (assign_ops, None, None),
                Some(m) => {
                    let mut mask_ops = count_expr(m, self.analyzed, &dummies);
                    mask_ops.branches += 1.0;
                    (
                        mask_ops,
                        Some(assign_ops),
                        Some(self.opts.mask_density_hint),
                    )
                }
            };

            // ---- locality model ----
            // Generated loop nest follows header order, last triplet
            // innermost. Memory stride of the inner loop = product of the
            // *local* extents of LHS dims faster-varying than the indexed
            // dim (column-major).
            let locality = if self.opts.loop_reorder {
                // optimizer picks a stride-1 ordering when some dummy
                // indexes dim 0
                if trips
                    .iter()
                    .any(|t| dummy_dim.get(&t.var).map(|&(d, ..)| d) == Some(0))
                {
                    1.0
                } else {
                    self.inner_locality(&trips.last().map(|t| t.var.clone()), &dummy_dim, lhs_dist)
                }
            } else {
                self.inner_locality(&trips.last().map(|t| t.var.clone()), &dummy_dim, lhs_dist)
            };

            // ---- working set ----
            let mut arrays_touched: Vec<String> = vec![lhs.name.clone()];
            let mut refs = Vec::new();
            collect_refs(rhs, &mut refs);
            if let Some(m) = &header.mask {
                collect_refs(m, &mut refs);
            }
            for r in &refs {
                if !arrays_touched.contains(&r.name) {
                    arrays_touched.push(r.name.clone());
                }
            }
            let max_iters = per_node.iter().copied().max().unwrap_or(0);
            let ws: u64 = arrays_touched
                .iter()
                .map(|a| {
                    let eb = self.dist.get(a).map(|d| d.elem_bytes).unwrap_or(4);
                    max_iters * eb
                })
                .sum();

            // Figure-2 order: gather level, then computation level, then
            // (when needed) the write-back level.
            for ph in comm_phases {
                out.push(SpmdNode::Comm(ph));
            }
            out.push(SpmdNode::Comp(CompPhase {
                label: format!("forall -> {}", lhs.name),
                span,
                total_iters: total,
                per_node_iters: per_node.clone(),
                per_iter,
                masked_ops,
                mask_density_hint: mask_hint,
                loop_depth: trips.len() as u32,
                working_set_bytes: ws,
                locality,
            }));
            if lhs_indirect && !lhs_dist.replicated && nodes > 1 {
                // Scatter computed values to their owners.
                let bytes = max_iters * lhs_dist.elem_bytes * (nodes as u64 - 1) / nodes as u64;
                out.push(SpmdNode::Comm(CommPhase {
                    label: format!("scatter -> {}", lhs.name),
                    span,
                    op: CollectiveOp::Scatter,
                    bytes_per_node: bytes.max(1),
                    participants: nodes,
                    contiguous: false,
                    shift_grid_dim: None,
                    arrays: vec![lhs.name.clone()],
                }));
            }
        }
        Ok(())
    }

    /// Locality of the innermost generated loop: 1.0 when it strides unit
    /// through local memory, decreasing as the stride (in elements) grows.
    fn inner_locality(
        &self,
        inner_var: &Option<String>,
        dummy_dim: &BTreeMap<String, (usize, i64, i64)>,
        lhs_dist: &ArrayDist,
    ) -> f64 {
        let Some(var) = inner_var else { return 1.0 };
        let Some(&(d, _, _)) = dummy_dim.get(var) else {
            return 0.5;
        };
        if d == 0 {
            return 1.0; // first dimension: unit stride in column-major
        }
        // Stride = product of local extents of faster dims.
        let mut stride_elems: i64 = 1;
        for dd in 0..d {
            let pc = lhs_dist.dims[dd].pcount();
            stride_elems *= (lhs_dist.extent(dd) + pc - 1) / pc.max(1);
        }
        let line = 32.0; // cache line bytes (i860)
        let stride_bytes = stride_elems as f64 * lhs_dist.elem_bytes as f64;
        (line / stride_bytes).clamp(0.05, 1.0)
    }

    /// Classify one RHS array reference against the LHS home distribution,
    /// returning the communication phase it requires (None = local).
    #[allow(clippy::too_many_arguments)]
    fn classify_ref(
        &self,
        r: &DataRef,
        lhs: &DataRef,
        lhs_dist: &ArrayDist,
        dummy_dim: &BTreeMap<String, (usize, i64, i64)>,
        dummies: &BTreeMap<String, ()>,
        trip_counts: &BTreeMap<String, u64>,
        nodes: usize,
    ) -> CResult<Option<CommPhase>> {
        if r.subs.is_empty() {
            return Ok(None); // scalar
        }
        let Some(rd) = self.dist.get(&r.name) else {
            return Ok(None);
        };
        if rd.replicated {
            return Ok(None);
        }
        // Reads of the LHS array at identical subscripts are local.
        let elem = rd.elem_bytes;

        // Max per-node iteration volume (for gather sizing).
        let total_iters: u64 = trip_counts.values().product();
        let per_node_iters = (total_iters / nodes as u64).max(1);

        let mut worst: Option<CommPhase> = None;
        let mut consider = |ph: CommPhase| {
            let rank = |op: CollectiveOp| match op {
                CollectiveOp::Shift => 1,
                CollectiveOp::Broadcast => 2,
                CollectiveOp::Gather => 3,
                CollectiveOp::AllToAll => 4,
                _ => 0,
            };
            match &worst {
                Some(w) if rank(w.op) >= rank(ph.op) => {}
                _ => worst = Some(ph),
            }
        };

        for (d, s) in r.subs.iter().enumerate() {
            let Subscript::Index(e) = s else {
                return cerr("sections inside forall bodies", r.span);
            };
            if !rd.dims[d].is_distributed() {
                continue; // this dimension is local regardless of the index
            }
            let pdim = rd.dims[d].pdim().expect("distributed");
            match affine_in(e, dummies) {
                Some((Some(v), a, b)) => {
                    // Which LHS dim does this dummy drive, and is it mapped
                    // to the same grid dimension?
                    match dummy_dim.get(&v) {
                        Some(&(ld, la, lb2)) => {
                            let lhs_mapped =
                                lhs_dist.dims.get(ld).map(|dd| dd.pdim()).unwrap_or(None);
                            if lhs_mapped == Some(pdim) && a == la {
                                // Same grid dim, same direction: offset-only.
                                // Template-space offset:
                                let (ras, rao) = rd.align[d];
                                let (las, lao) = lhs_dist.align[ld];
                                let t_off = (ras * b + rao) - (las * lb2 + lao);
                                if t_off == 0 && ras == las {
                                    continue; // perfectly aligned: local
                                }
                                // Shift volume: for BLOCK, only the |off|
                                // boundary planes cross processors; for
                                // CYCLIC, *every* element's neighbor lives on
                                // another processor, so the whole local
                                // portion of the shifted dimension moves.
                                let pc_shift = lhs_dist.dims[ld].pcount() as u64;
                                let own_count = trip_counts.get(&v).copied().unwrap_or(1);
                                let delta = match lhs_dist.dims[ld] {
                                    crate::dist::DimDist::Cyclic { k, .. } => {
                                        // δ of every k-block crosses: the
                                        // local share scaled by min(δ/k, 1).
                                        let local = own_count.div_ceil(pc_shift.max(1)).max(1);
                                        let frac_num = t_off.unsigned_abs().min(k as u64);
                                        // k >= 1 is guaranteed by partition-
                                        // time validation of the DISTRIBUTE.
                                        (local * frac_num / k as u64).max(1)
                                    }
                                    _ => t_off.unsigned_abs().max(1),
                                };
                                let cross: u64 = trip_counts
                                    .iter()
                                    .filter(|(k, _)| **k != v)
                                    .map(|(k, c)| {
                                        // local share if that dummy's dim distributed
                                        match dummy_dim.get(k) {
                                            Some(&(dd, ..))
                                                if lhs_dist.dims[dd].is_distributed() =>
                                            {
                                                let pc = lhs_dist.dims[dd].pcount() as u64;
                                                (*c).div_ceil(pc).max(1)
                                            }
                                            _ => *c,
                                        }
                                    })
                                    .product();
                                // Contiguous boundary iff the fixed dim is
                                // the last dimension (column-major hyperplane).
                                let contiguous = d == rd.rank() - 1 || rd.rank() == 1;
                                consider(CommPhase {
                                    label: format!("shift {} (δ={t_off}, dim {})", r.name, d + 1),
                                    span: r.span,
                                    op: CollectiveOp::Shift,
                                    bytes_per_node: (delta * cross * elem).max(1),
                                    participants: nodes,
                                    contiguous,
                                    shift_grid_dim: Some(pdim),
                                    arrays: vec![r.name.clone()],
                                });
                            } else {
                                // Transposed or cross-mapped access.
                                consider(CommPhase {
                                    label: format!("remap {}", r.name),
                                    span: r.span,
                                    op: CollectiveOp::AllToAll,
                                    bytes_per_node: per_node_iters * elem,
                                    participants: nodes,
                                    contiguous: false,
                                    shift_grid_dim: None,
                                    arrays: vec![r.name.clone()],
                                });
                            }
                        }
                        None => {
                            // Dummy not partitioned on LHS: iteration runs the
                            // full range on every node, reading a distributed
                            // dim → gather of the remote part.
                            let cnt = trip_counts.get(&v).copied().unwrap_or(1);
                            let remote = cnt * elem * (nodes as u64 - 1) / nodes as u64;
                            consider(CommPhase {
                                label: format!("gather {}", r.name),
                                span: r.span,
                                op: CollectiveOp::Gather,
                                bytes_per_node: remote.max(1),
                                participants: nodes,
                                contiguous: false,
                                shift_grid_dim: None,
                                arrays: vec![r.name.clone()],
                            });
                        }
                    }
                }
                Some((None, _, c)) => {
                    // Constant subscript of a distributed dim: the slice
                    // lives on one coordinate — broadcast it.
                    let _ = c;
                    let cross: u64 = trip_counts.values().product::<u64>()
                        / trip_counts.values().copied().max().unwrap_or(1).max(1);
                    consider(CommPhase {
                        label: format!("broadcast {}", r.name),
                        span: r.span,
                        op: CollectiveOp::Broadcast,
                        bytes_per_node: (cross.max(1) * elem).max(1),
                        participants: nodes,
                        contiguous: true,
                        shift_grid_dim: None,
                        arrays: vec![r.name.clone()],
                    });
                }
                None => {
                    // Indirect (data-dependent) subscript: unstructured gather.
                    consider(CommPhase {
                        label: format!("gather {} (indirect)", r.name),
                        span: r.span,
                        op: CollectiveOp::Gather,
                        bytes_per_node: (per_node_iters * elem * (nodes as u64 - 1) / nodes as u64)
                            .max(1),
                        participants: nodes,
                        contiguous: false,
                        shift_grid_dim: None,
                        arrays: vec![r.name.clone()],
                    });
                }
            }
        }
        // A read of the LHS array itself, aligned at zero offset, is local —
        // `worst == None` in that case.
        let _ = lhs;
        Ok(worst.filter(|_| nodes > 1))
    }
}

/// Merge a new comm phase into the list: same (op, array, direction sign)
/// phases keep the larger payload (the compiler coalesces ghost exchanges).
fn merge_phase(phases: &mut Vec<CommPhase>, ph: CommPhase) {
    for p in phases.iter_mut() {
        if p.op == ph.op
            && p.arrays == ph.arrays
            && p.label == ph.label
            && p.shift_grid_dim == ph.shift_grid_dim
        {
            p.bytes_per_node = p.bytes_per_node.max(ph.bytes_per_node);
            return;
        }
    }
    phases.push(ph);
}

/// Decompose `e` as `a*dummy + b`; `Some((None, 0, c))` for constants;
/// `None` for non-affine.
fn affine_in(e: &Expr, dummies: &BTreeMap<String, ()>) -> Option<(Option<String>, i64, i64)> {
    match e {
        Expr::IntLit(v, _) => Some((None, 0, *v)),
        Expr::Ref(r) if r.subs.is_empty() => {
            if dummies.contains_key(&r.name) {
                Some((Some(r.name.clone()), 1, 0))
            } else {
                // Loop variables / scalars: treat as constant-like (affine
                // offset unknown but uniform) — classify as constant 0.
                Some((None, 0, 0))
            }
        }
        Expr::Unary {
            op: UnOp::Neg,
            operand,
            ..
        } => {
            let (v, a, b) = affine_in(operand, dummies)?;
            Some((v, -a, -b))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let l = affine_in(lhs, dummies)?;
            let r = affine_in(rhs, dummies)?;
            match op {
                BinOp::Add | BinOp::Sub => {
                    let sign = if *op == BinOp::Sub { -1 } else { 1 };
                    match (l.0, r.0) {
                        (Some(v), None) => Some((Some(v), l.1, l.2 + sign * r.2)),
                        (None, Some(v)) => Some((Some(v), sign * r.1, l.2 + sign * r.2)),
                        (None, None) => Some((None, 0, l.2 + sign * r.2)),
                        (Some(_), Some(_)) => None, // two dummies: non-affine here
                    }
                }
                BinOp::Mul => match (l.0.clone(), r.0.clone()) {
                    (Some(v), None) => Some((Some(v), l.1 * r.2, l.2 * r.2)),
                    (None, Some(v)) => Some((Some(v), r.1 * l.2, r.2 * l.2)),
                    (None, None) => Some((None, 0, l.2 * r.2)),
                    _ => None,
                },
                _ => None,
            }
        }
        _ => None,
    }
}

/// Collect all array references in an expression.
fn collect_refs(e: &Expr, out: &mut Vec<DataRef>) {
    match e {
        Expr::Ref(r) if !r.subs.is_empty() => {
            out.push(r.clone());
            for s in &r.subs {
                if let Subscript::Index(ix) = s {
                    collect_refs(ix, out);
                }
            }
        }
        Expr::Intrinsic { args, .. } => {
            for a in args {
                collect_refs(a, out);
            }
        }
        Expr::Unary { operand, .. } => collect_refs(operand, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_refs(lhs, out);
            collect_refs(rhs, out);
        }
        _ => {}
    }
}

/// Find top-level reduction intrinsics in a scalar RHS.
fn collect_reductions<'e>(e: &'e Expr, out: &mut Vec<(Intrinsic, &'e [Expr], Span)>) {
    match e {
        Expr::Intrinsic { name, args, span } if name.is_transformational() => {
            out.push((*name, args.as_slice(), *span));
        }
        Expr::Intrinsic { args, .. } => {
            for a in args {
                collect_reductions(a, out);
            }
        }
        Expr::Unary { operand, .. } => collect_reductions(operand, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_reductions(lhs, out);
            collect_reductions(rhs, out);
        }
        _ => {}
    }
}

/// Count the scalar ops in a reduction-bearing RHS, excluding the
/// reductions themselves (they are charged in their own phases).
fn count_residual(e: &Expr, analyzed: &AnalyzedProgram) -> OpCounts {
    match e {
        Expr::Intrinsic { name, .. } if name.is_transformational() => OpCounts::zero(),
        Expr::Binary { op, lhs, rhs, .. } => {
            let mut c = count_residual(lhs, analyzed) + count_residual(rhs, analyzed);
            match op {
                BinOp::Add | BinOp::Sub => c.fadd += 1.0,
                BinOp::Mul => c.fmul += 1.0,
                BinOp::Div => c.fdiv += 1.0,
                _ => c.cmp += 1.0,
            }
            c
        }
        Expr::Unary { operand, .. } => count_residual(operand, analyzed),
        Expr::Intrinsic { args, .. } => {
            let mut c = OpCounts::zero();
            for a in args {
                c += count_residual(a, analyzed);
            }
            c.ftrans += 1.0;
            c
        }
        other => count_expr(other, analyzed, &BTreeMap::new()),
    }
}
