//! Normalization: array assignment statements and `where` statements are
//! transformed into equivalent `forall` statements "with no loss of
//! information" (§4.1 step 1, §4.3). Transformational shift intrinsics in
//! the right-hand side are rewritten into shifted element references so the
//! communication-detection step sees a uniform index-offset form.

use hpf_lang::ast::*;
use hpf_lang::sema::{AnalyzedProgram, SymbolKind};
use hpf_lang::Span;

/// Error raised when a construct cannot be normalized.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizeError {
    pub message: String,
    pub span: Span,
}

impl std::fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "normalization error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for NormalizeError {}

type NResult<T> = Result<T, NormalizeError>;

/// Normalize the executable part of a program.
pub fn normalize(analyzed: &AnalyzedProgram) -> NResult<Vec<Stmt>> {
    let n = Normalizer {
        analyzed,
        fresh: std::cell::Cell::new(0),
    };
    let mut out = Vec::new();
    for st in &analyzed.program.body {
        out.push(n.stmt(st)?);
    }
    Ok(out)
}

struct Normalizer<'a> {
    analyzed: &'a AnalyzedProgram,
    fresh: std::cell::Cell<u32>,
}

impl<'a> Normalizer<'a> {
    fn fresh_dummy(&self) -> String {
        let k = self.fresh.get();
        self.fresh.set(k + 1);
        format!("I${k}")
    }

    fn array_shape(&self, name: &str) -> Option<&[(i64, i64)]> {
        self.analyzed.symbols.get(name).and_then(|s| s.shape())
    }

    fn is_array(&self, name: &str) -> bool {
        matches!(
            self.analyzed.symbols.get(name).map(|s| &s.kind),
            Some(SymbolKind::Array { .. })
        )
    }

    fn stmt(&self, st: &Stmt) -> NResult<Stmt> {
        Ok(match st {
            Stmt::Assign { lhs, rhs, span } => {
                if self.is_array(&lhs.name) && !lhs.subs.iter().all(|s| s.is_index()) {
                    // Section or whole-array assignment → forall.
                    self.arrayize(lhs, rhs, *span)?
                } else if self.is_array(&lhs.name) && lhs.subs.is_empty() {
                    self.arrayize(lhs, rhs, *span)?
                } else {
                    st.clone()
                }
            }
            Stmt::Where {
                mask,
                body,
                elsewhere,
                span,
            } => {
                // WHERE → one forall per assignment, masked; ELSEWHERE gets
                // the negated mask.
                let mut stmts = Vec::new();
                for (arm, negate) in [(body, false), (elsewhere, true)] {
                    for s in arm.iter() {
                        match s {
                            Stmt::Assign {
                                lhs,
                                rhs,
                                span: aspan,
                            } => {
                                let mut f = self.arrayize(lhs, rhs, *aspan)?;
                                if let Stmt::Forall { header, .. } = &mut f {
                                    let m = self.rewrite_elemental(
                                        mask,
                                        &header.triplets.clone(),
                                        lhs,
                                    )?;
                                    header.mask = Some(if negate {
                                        Expr::Unary {
                                            op: UnOp::Not,
                                            operand: Box::new(m),
                                            span: mask.span(),
                                        }
                                    } else {
                                        m
                                    });
                                }
                                stmts.push(f);
                            }
                            other => {
                                return Err(NormalizeError {
                                    message: "WHERE body must contain only array assignments"
                                        .into(),
                                    span: other.span(),
                                })
                            }
                        }
                    }
                }
                if stmts.len() == 1 {
                    stmts.pop().expect("one")
                } else {
                    // Wrap multiple foralls in a 1-trip loop to keep the
                    // single-statement return shape.
                    Stmt::Do {
                        var: "I$W".into(),
                        lo: Expr::int(1),
                        hi: Expr::int(1),
                        step: None,
                        body: stmts,
                        span: *span,
                    }
                }
            }
            Stmt::Forall { header, body, span } => {
                // Bodies are already element-wise; only rewrite shift
                // intrinsics that may appear in RHS.
                let body = body
                    .iter()
                    .map(|s| match s {
                        Stmt::Assign { lhs, rhs, span } => Ok(Stmt::Assign {
                            lhs: lhs.clone(),
                            rhs: self.strip_shifts_elementwise(rhs)?,
                            span: *span,
                        }),
                        other => self.stmt(other),
                    })
                    .collect::<NResult<Vec<_>>>()?;
                Stmt::Forall {
                    header: header.clone(),
                    body,
                    span: *span,
                }
            }
            Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
                span,
            } => Stmt::Do {
                var: var.clone(),
                lo: lo.clone(),
                hi: hi.clone(),
                step: step.clone(),
                body: body
                    .iter()
                    .map(|s| self.stmt(s))
                    .collect::<NResult<Vec<_>>>()?,
                span: *span,
            },
            Stmt::DoWhile { cond, body, span } => Stmt::DoWhile {
                cond: cond.clone(),
                body: body
                    .iter()
                    .map(|s| self.stmt(s))
                    .collect::<NResult<Vec<_>>>()?,
                span: *span,
            },
            Stmt::If {
                arms,
                else_body,
                span,
            } => Stmt::If {
                arms: arms
                    .iter()
                    .map(|(c, b)| {
                        Ok((
                            c.clone(),
                            b.iter()
                                .map(|s| self.stmt(s))
                                .collect::<NResult<Vec<_>>>()?,
                        ))
                    })
                    .collect::<NResult<Vec<_>>>()?,
                else_body: else_body
                    .iter()
                    .map(|s| self.stmt(s))
                    .collect::<NResult<Vec<_>>>()?,
                span: *span,
            },
            other => other.clone(),
        })
    }

    /// Turn `lhs = rhs` (array/section assignment) into an equivalent forall.
    fn arrayize(&self, lhs: &DataRef, rhs: &Expr, span: Span) -> NResult<Stmt> {
        let shape = self.array_shape(&lhs.name).ok_or_else(|| NormalizeError {
            message: format!("`{}` has no resolved shape", lhs.name),
            span,
        })?;

        // Build a triplet per sectioned dimension of the LHS.
        let mut triplets: Vec<ForallTriplet> = Vec::new();
        let mut new_subs: Vec<Subscript> = Vec::new();
        // For RHS mapping: per LHS *section* dimension (in order), the
        // (dummy, lhs_lo, lhs_stride).
        let mut loop_dims: Vec<(String, Expr, Expr)> = Vec::new();

        if lhs.subs.is_empty() {
            for (lb, ub) in shape.iter() {
                let d = self.fresh_dummy();
                triplets.push(ForallTriplet {
                    var: d.clone(),
                    lo: Expr::int(*lb),
                    hi: Expr::int(*ub),
                    stride: None,
                });
                loop_dims.push((d.clone(), Expr::int(*lb), Expr::int(1)));
                new_subs.push(Subscript::Index(Expr::var(d)));
            }
        } else {
            for (dnum, s) in lhs.subs.iter().enumerate() {
                match s {
                    Subscript::Index(e) => new_subs.push(Subscript::Index(e.clone())),
                    Subscript::Triplet { lo, hi, stride } => {
                        let (lb, ub) = shape[dnum];
                        let d = self.fresh_dummy();
                        let lo = lo.clone().unwrap_or(Expr::int(lb));
                        let hi = hi.clone().unwrap_or(Expr::int(ub));
                        let st = stride.clone().unwrap_or(Expr::int(1));
                        triplets.push(ForallTriplet {
                            var: d.clone(),
                            lo: lo.clone(),
                            hi,
                            stride: if matches!(st, Expr::IntLit(1, _)) {
                                None
                            } else {
                                Some(st.clone())
                            },
                        });
                        loop_dims.push((d.clone(), lo, st));
                        new_subs.push(Subscript::Index(Expr::var(d)));
                    }
                }
            }
        }

        let body_rhs = self.rewrite_elemental(rhs, &triplets, lhs)?;
        let new_lhs = DataRef {
            name: lhs.name.clone(),
            subs: new_subs,
            span: lhs.span,
        };
        Ok(Stmt::Forall {
            header: ForallHeader {
                triplets,
                mask: None,
            },
            body: vec![Stmt::Assign {
                lhs: new_lhs,
                rhs: body_rhs,
                span,
            }],
            span,
        })
    }

    /// Rewrite an array-valued RHS into an element-wise expression over the
    /// forall dummies of the LHS section.
    fn rewrite_elemental(
        &self,
        e: &Expr,
        triplets: &[ForallTriplet],
        lhs: &DataRef,
    ) -> NResult<Expr> {
        Ok(match e {
            Expr::IntLit(..) | Expr::RealLit(..) | Expr::LogicalLit(..) | Expr::StrLit(..) => {
                e.clone()
            }
            Expr::Ref(r) => {
                if !self.is_array(&r.name) {
                    return Ok(e.clone());
                }
                Expr::Ref(self.elementize_ref(r, triplets, lhs)?)
            }
            Expr::Intrinsic { name, args, span } => {
                use Intrinsic::*;
                match name {
                    CShift | TShift | EoShift => {
                        // CSHIFT(B, s [, dim]) → B(dummy_dim + s) — the value
                        // semantics live in hpf-eval; here only the access
                        // pattern matters, and a circular shift is exactly a
                        // neighbor exchange.
                        let base = match args.first() {
                            Some(Expr::Ref(r)) => r,
                            _ => {
                                return Err(NormalizeError {
                                    message: "shift of a non-reference is outside the subset"
                                        .into(),
                                    span: *span,
                                })
                            }
                        };
                        let shift = args.get(1).cloned().unwrap_or(Expr::int(1));
                        let dim = match args.get(2) {
                            Some(Expr::IntLit(d, _)) => *d as usize,
                            _ => 1,
                        };
                        let mut r = self.elementize_ref(base, triplets, lhs)?;
                        if dim == 0 || dim > r.subs.len() {
                            return Err(NormalizeError {
                                message: "shift dimension out of range".into(),
                                span: *span,
                            });
                        }
                        if let Subscript::Index(ix) = &r.subs[dim - 1] {
                            r.subs[dim - 1] =
                                Subscript::Index(Expr::bin(BinOp::Add, ix.clone(), shift));
                        }
                        Expr::Ref(r)
                    }
                    // Reductions inside an elemental context are outside the
                    // subset (they would need a comm phase per element).
                    Sum | Product | MaxVal | MinVal | MaxLoc | MinLoc | DotProduct | MatMul
                    | Transpose | Spread => {
                        return Err(NormalizeError {
                            message: format!(
                                "{} cannot appear in an elemental right-hand side",
                                name.name()
                            ),
                            span: *span,
                        })
                    }
                    _ => Expr::Intrinsic {
                        name: *name,
                        args: args
                            .iter()
                            .map(|a| self.rewrite_elemental(a, triplets, lhs))
                            .collect::<NResult<Vec<_>>>()?,
                        span: *span,
                    },
                }
            }
            Expr::Unary { op, operand, span } => Expr::Unary {
                op: *op,
                operand: Box::new(self.rewrite_elemental(operand, triplets, lhs)?),
                span: *span,
            },
            Expr::Binary {
                op,
                lhs: l,
                rhs: r,
                span,
            } => Expr::Binary {
                op: *op,
                lhs: Box::new(self.rewrite_elemental(l, triplets, lhs)?),
                rhs: Box::new(self.rewrite_elemental(r, triplets, lhs)?),
                span: *span,
            },
        })
    }

    /// Map an array reference appearing in an elemental RHS onto the forall
    /// dummies: whole arrays get the dummies directly (with bound offsets);
    /// sections get `sec_lo + ((dummy - lhs_lo)/lhs_st)*sec_st`.
    fn elementize_ref(
        &self,
        r: &DataRef,
        triplets: &[ForallTriplet],
        lhs: &DataRef,
    ) -> NResult<DataRef> {
        let shape = self.array_shape(&r.name).ok_or_else(|| NormalizeError {
            message: format!("`{}` has no resolved shape", r.name),
            span: r.span,
        })?;
        // LHS loop-dim descriptors in order.
        let lhs_dims: Vec<(String, Expr, Expr)> = {
            let mut v = Vec::new();
            let mut ti = 0;
            if lhs.subs.is_empty() {
                let lshape = self.array_shape(&lhs.name).expect("lhs shape");
                for (lb, _) in lshape.iter() {
                    v.push((triplets[ti].var.clone(), Expr::int(*lb), Expr::int(1)));
                    ti += 1;
                }
            } else {
                for s in &lhs.subs {
                    if let Subscript::Triplet { lo, stride, .. } = s {
                        let t = &triplets[ti];
                        v.push((
                            t.var.clone(),
                            lo.clone().unwrap_or_else(|| t.lo.clone()),
                            stride.clone().unwrap_or(Expr::int(1)),
                        ));
                        ti += 1;
                    }
                }
            }
            v
        };

        if r.subs.is_empty() {
            // Whole-array RHS: conformance pairs loop dims with dims 1..k.
            if shape.len() != lhs_dims.len() {
                return Err(NormalizeError {
                    message: format!(
                        "`{}` (rank {}) not conformable with LHS section (rank {})",
                        r.name,
                        shape.len(),
                        lhs_dims.len()
                    ),
                    span: r.span,
                });
            }
            let mut subs = Vec::new();
            for (d, (lb, _)) in shape.iter().enumerate() {
                let (dummy, lhs_lo, lhs_st) = &lhs_dims[d];
                subs.push(Subscript::Index(section_index(
                    dummy,
                    lhs_lo,
                    lhs_st,
                    &Expr::int(*lb),
                    &Expr::int(1),
                )));
            }
            return Ok(DataRef {
                name: r.name.clone(),
                subs,
                span: r.span,
            });
        }

        // Sectioned/indexed RHS: triplet dims consume loop dims in order.
        let mut subs = Vec::new();
        let mut li = 0usize;
        for (dnum, s) in r.subs.iter().enumerate() {
            match s {
                Subscript::Index(e) => subs.push(Subscript::Index(e.clone())),
                Subscript::Triplet { lo, stride, .. } => {
                    if li >= lhs_dims.len() {
                        return Err(NormalizeError {
                            message: format!(
                                "`{}` section has more dimensions than the LHS section",
                                r.name
                            ),
                            span: r.span,
                        });
                    }
                    let (dummy, lhs_lo, lhs_st) = &lhs_dims[li];
                    li += 1;
                    let (lb, _) = shape[dnum];
                    let sec_lo = lo.clone().unwrap_or(Expr::int(lb));
                    let sec_st = stride.clone().unwrap_or(Expr::int(1));
                    subs.push(Subscript::Index(section_index(
                        dummy, lhs_lo, lhs_st, &sec_lo, &sec_st,
                    )));
                }
            }
        }
        if li != lhs_dims.len() {
            return Err(NormalizeError {
                message: format!(
                    "`{}` section rank {} does not match LHS section rank {}",
                    r.name,
                    li,
                    lhs_dims.len()
                ),
                span: r.span,
            });
        }
        Ok(DataRef {
            name: r.name.clone(),
            subs,
            span: r.span,
        })
    }

    /// Strip shift intrinsics inside an explicit forall body (they appear as
    /// elementwise shifts of already-subscripted refs only in whole-array
    /// form, which the subset forbids; elemental intrinsics pass through).
    fn strip_shifts_elementwise(&self, e: &Expr) -> NResult<Expr> {
        Ok(e.clone())
    }
}

/// Build `sec_lo + ((dummy - lhs_lo)/lhs_st) * sec_st`, simplified for the
/// common unit-stride identity cases so communication detection sees clean
/// affine forms like `I` or `I + 5`.
fn section_index(dummy: &str, lhs_lo: &Expr, lhs_st: &Expr, sec_lo: &Expr, sec_st: &Expr) -> Expr {
    let unit = |e: &Expr| matches!(e, Expr::IntLit(1, _));
    let as_int = |e: &Expr| match e {
        Expr::IntLit(v, _) => Some(*v),
        _ => None,
    };
    if unit(lhs_st) && unit(sec_st) {
        // index = dummy + (sec_lo - lhs_lo)
        if let (Some(a), Some(b)) = (as_int(sec_lo), as_int(lhs_lo)) {
            let off = a - b;
            return if off == 0 {
                Expr::var(dummy)
            } else {
                Expr::bin(BinOp::Add, Expr::var(dummy), Expr::int(off))
            };
        }
        // symbolic bounds: dummy + sec_lo - lhs_lo
        return Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Add, Expr::var(dummy), sec_lo.clone()),
            lhs_lo.clone(),
        );
    }
    // General: sec_lo + ((dummy - lhs_lo) / lhs_st) * sec_st
    Expr::bin(
        BinOp::Add,
        sec_lo.clone(),
        Expr::bin(
            BinOp::Mul,
            Expr::bin(
                BinOp::Div,
                Expr::bin(BinOp::Sub, Expr::var(dummy), lhs_lo.clone()),
                lhs_st.clone(),
            ),
            sec_st.clone(),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_lang::{analyze, parse_program};
    use std::collections::BTreeMap;

    fn norm(src: &str) -> Vec<Stmt> {
        let p = parse_program(src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        normalize(&a).unwrap()
    }

    #[test]
    fn whole_array_assignment_becomes_forall() {
        let out = norm("PROGRAM T\nREAL A(8)\nA = 2.0\nEND\n");
        match &out[0] {
            Stmt::Forall { header, body, .. } => {
                assert_eq!(header.triplets.len(), 1);
                assert!(header.mask.is_none());
                assert_eq!(body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn conformable_binary_rhs_elementized() {
        let out = norm("PROGRAM T\nREAL A(8), B(8), C(8)\nA = B + C * 2.0\nEND\n");
        if let Stmt::Forall { body, .. } = &out[0] {
            if let Stmt::Assign { rhs, .. } = &body[0] {
                // B and C must now carry element subscripts.
                let txt = hpf_lang::pretty_expr(rhs);
                assert!(txt.contains("B(I$"), "{txt}");
                assert!(txt.contains("C(I$"), "{txt}");
                return;
            }
        }
        panic!("not normalized");
    }

    #[test]
    fn section_offsets_computed() {
        let out = norm("PROGRAM T\nREAL A(10), B(10)\nA(1:5) = B(6:10)\nEND\n");
        if let Stmt::Forall { header, body, .. } = &out[0] {
            assert_eq!(header.triplets.len(), 1);
            if let Stmt::Assign { rhs, .. } = &body[0] {
                let txt = hpf_lang::pretty_expr(rhs);
                assert!(txt.contains("+ 5"), "expected offset 5, got {txt}");
                return;
            }
        }
        panic!("not normalized");
    }

    #[test]
    fn two_dim_whole_assignment() {
        let out = norm("PROGRAM T\nREAL A(4,6), B(4,6)\nA = B\nEND\n");
        if let Stmt::Forall { header, .. } = &out[0] {
            assert_eq!(header.triplets.len(), 2);
        } else {
            panic!()
        }
    }

    #[test]
    fn where_becomes_masked_forall() {
        let out = norm("PROGRAM T\nREAL A(8)\nWHERE (A > 0.0) A = 1.0 / A\nEND\n");
        if let Stmt::Forall { header, .. } = &out[0] {
            let m = header.mask.as_ref().expect("mask");
            let txt = hpf_lang::pretty_expr(m);
            assert!(txt.contains("A(I$"), "{txt}");
        } else {
            panic!()
        }
    }

    #[test]
    fn elsewhere_negates_mask() {
        let out = norm(
            "PROGRAM T\nREAL A(8)\nWHERE (A > 0.0)\nA = 1.0\nELSEWHERE\nA = -1.0\nEND WHERE\nEND\n",
        );
        // wrapped in a 1-trip DO holding two foralls
        if let Stmt::Do { body, .. } = &out[0] {
            assert_eq!(body.len(), 2);
            if let Stmt::Forall { header, .. } = &body[1] {
                let txt = hpf_lang::pretty_expr(header.mask.as_ref().unwrap());
                assert!(txt.contains(".NOT."), "{txt}");
                return;
            }
        }
        panic!("bad WHERE normalization: {out:?}");
    }

    #[test]
    fn cshift_becomes_offset_ref() {
        let out = norm("PROGRAM T\nREAL A(8), B(8)\nA = CSHIFT(B, 1)\nEND\n");
        if let Stmt::Forall { body, .. } = &out[0] {
            if let Stmt::Assign { rhs, .. } = &body[0] {
                let txt = hpf_lang::pretty_expr(rhs);
                assert!(txt.contains("+ 1"), "{txt}");
                return;
            }
        }
        panic!()
    }

    #[test]
    fn scalar_assignments_untouched() {
        let out = norm("PROGRAM T\nREAL S, A(4)\nA = 1.0\nS = SUM(A)\nEND\n");
        assert!(matches!(out[1], Stmt::Assign { .. }));
    }

    #[test]
    fn reduction_in_elemental_context_rejected() {
        let p = parse_program("PROGRAM T\nREAL A(8), B(8)\nA = B + SUM(B)\nEND\n").unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        assert!(normalize(&a).is_err());
    }

    #[test]
    fn nonconformable_rejected() {
        let p = parse_program("PROGRAM T\nREAL A(8), B(9)\nREAL C(8,8)\nA = C\nEND\n").unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        assert!(normalize(&a).is_err());
    }

    #[test]
    fn explicit_forall_passes_through() {
        let out = norm("PROGRAM T\nREAL A(8), B(8)\nFORALL (I = 2:7) A(I) = B(I-1)\nEND\n");
        assert!(matches!(&out[0], Stmt::Forall { .. }));
    }
}
