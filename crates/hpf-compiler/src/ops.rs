//! Static operation counting: how many machine operations of each class one
//! evaluation of an expression / statement costs. This is the per-AAU
//! parameterization the interpretation functions consume.

use hpf_lang::ast::*;
use hpf_lang::sema::{AnalyzedProgram, SymbolKind};
use std::collections::BTreeMap;
use std::ops::{Add, AddAssign, Mul};

/// Operation counts per evaluation (fractional: probability-weighted paths).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCounts {
    pub fadd: f64,
    pub fmul: f64,
    pub fdiv: f64,
    pub ftrans: f64,
    pub int_ops: f64,
    pub imul: f64,
    pub idiv: f64,
    pub cmp: f64,
    pub logical: f64,
    pub loads: f64,
    pub stores: f64,
    pub index: f64,
    pub calls: f64,
    pub branches: f64,
}

impl OpCounts {
    pub fn zero() -> OpCounts {
        OpCounts::default()
    }

    /// Total floating-point operations (for MFlop/s style reporting).
    pub fn flops(&self) -> f64 {
        self.fadd + self.fmul + self.fdiv + self.ftrans
    }

    /// Total memory references.
    pub fn mem_refs(&self) -> f64 {
        self.loads + self.stores
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == OpCounts::default()
    }
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(self, o: OpCounts) -> OpCounts {
        OpCounts {
            fadd: self.fadd + o.fadd,
            fmul: self.fmul + o.fmul,
            fdiv: self.fdiv + o.fdiv,
            ftrans: self.ftrans + o.ftrans,
            int_ops: self.int_ops + o.int_ops,
            imul: self.imul + o.imul,
            idiv: self.idiv + o.idiv,
            cmp: self.cmp + o.cmp,
            logical: self.logical + o.logical,
            loads: self.loads + o.loads,
            stores: self.stores + o.stores,
            index: self.index + o.index,
            calls: self.calls + o.calls,
            branches: self.branches + o.branches,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, o: OpCounts) {
        *self = *self + o;
    }
}

impl Mul<f64> for OpCounts {
    type Output = OpCounts;
    fn mul(self, k: f64) -> OpCounts {
        OpCounts {
            fadd: self.fadd * k,
            fmul: self.fmul * k,
            fdiv: self.fdiv * k,
            ftrans: self.ftrans * k,
            int_ops: self.int_ops * k,
            imul: self.imul * k,
            idiv: self.idiv * k,
            cmp: self.cmp * k,
            logical: self.logical * k,
            loads: self.loads * k,
            stores: self.stores * k,
            index: self.index * k,
            calls: self.calls * k,
            branches: self.branches * k,
        }
    }
}

/// Scalar result type of an expression, for choosing FP vs integer ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprType {
    Int,
    Real,
    Logical,
}

/// Infer the scalar result type of an expression.
pub fn expr_type(e: &Expr, analyzed: &AnalyzedProgram, dummies: &BTreeMap<String, ()>) -> ExprType {
    match e {
        Expr::IntLit(..) => ExprType::Int,
        Expr::RealLit(..) => ExprType::Real,
        Expr::LogicalLit(..) => ExprType::Logical,
        Expr::StrLit(..) => ExprType::Int,
        Expr::Ref(r) => {
            if r.subs.is_empty() && dummies.contains_key(&r.name) {
                return ExprType::Int;
            }
            match analyzed.symbols.get(&r.name) {
                Some(sym) => match sym.ty {
                    TypeSpec::Integer => ExprType::Int,
                    TypeSpec::Logical => ExprType::Logical,
                    _ => ExprType::Real,
                },
                None => match hpf_lang::sema::implicit_type(&r.name) {
                    TypeSpec::Integer => ExprType::Int,
                    _ => ExprType::Real,
                },
            }
        }
        Expr::Intrinsic { name, args, .. } => {
            use Intrinsic::*;
            match name {
                MaxLoc | MinLoc | Size | Int | Nint => ExprType::Int,
                Real | Dble | Float | Sqrt | Exp | Log | Log10 | Sin | Cos | Tan | Atan
                | DotProduct => ExprType::Real,
                _ => args
                    .first()
                    .map(|a| expr_type(a, analyzed, dummies))
                    .unwrap_or(ExprType::Real),
            }
        }
        Expr::Unary { op: UnOp::Not, .. } => ExprType::Logical,
        Expr::Unary { operand, .. } => expr_type(operand, analyzed, dummies),
        Expr::Binary { op, lhs, rhs, .. } => {
            if op.is_relational_or_logical() {
                ExprType::Logical
            } else {
                let l = expr_type(lhs, analyzed, dummies);
                let r = expr_type(rhs, analyzed, dummies);
                if l == ExprType::Real || r == ExprType::Real {
                    ExprType::Real
                } else {
                    ExprType::Int
                }
            }
        }
    }
}

/// Count the operations of one *scalar* evaluation of `e`.
///
/// Array references charge one load plus index arithmetic per subscript;
/// scalar references are assumed register-resident after the first touch
/// (the optimizer keeps loop-invariant scalars in registers), charging a
/// quarter-load on average. Transformational intrinsics are *not* counted
/// here — the lowering pass expands them into phases.
pub fn count_expr(
    e: &Expr,
    analyzed: &AnalyzedProgram,
    dummies: &BTreeMap<String, ()>,
) -> OpCounts {
    let mut c = OpCounts::zero();
    count_into(e, analyzed, dummies, &mut c);
    c
}

fn count_into(
    e: &Expr,
    analyzed: &AnalyzedProgram,
    dummies: &BTreeMap<String, ()>,
    c: &mut OpCounts,
) {
    match e {
        Expr::IntLit(..) | Expr::RealLit(..) | Expr::LogicalLit(..) | Expr::StrLit(..) => {}
        Expr::Ref(r) => {
            if r.subs.is_empty() {
                let is_dummy = dummies.contains_key(&r.name);
                let is_param = matches!(
                    analyzed.symbols.get(&r.name).map(|s| &s.kind),
                    Some(SymbolKind::Parameter { .. })
                );
                if !is_dummy && !is_param {
                    c.loads += 0.25; // register-cached scalar
                }
            } else {
                c.loads += 1.0;
                c.index += r.subs.len() as f64;
                for s in &r.subs {
                    if let Subscript::Index(ix) = s {
                        count_into(ix, analyzed, dummies, c);
                    }
                }
            }
        }
        Expr::Intrinsic { name, args, .. } => {
            use Intrinsic::*;
            for a in args {
                count_into(a, analyzed, dummies, c);
            }
            match name {
                Abs | Sign => c.fadd += 1.0,
                Sqrt | Exp | Log | Log10 | Sin | Cos | Tan | Atan => c.ftrans += 1.0,
                Min | Max => c.cmp += (args.len().max(2) - 1) as f64,
                Mod => c.idiv += 1.0,
                Int | Nint | Real | Dble | Float => c.int_ops += 1.0,
                // transformational: expanded by lowering, charge call linkage
                _ => c.calls += 1.0,
            }
        }
        Expr::Unary { op, operand, .. } => {
            count_into(operand, analyzed, dummies, c);
            match op {
                UnOp::Not => c.logical += 1.0,
                UnOp::Neg => match expr_type(operand, analyzed, dummies) {
                    ExprType::Real => c.fadd += 1.0,
                    _ => c.int_ops += 1.0,
                },
                UnOp::Plus => {}
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            count_into(lhs, analyzed, dummies, c);
            count_into(rhs, analyzed, dummies, c);
            let real = expr_type(lhs, analyzed, dummies) == ExprType::Real
                || expr_type(rhs, analyzed, dummies) == ExprType::Real;
            match op {
                BinOp::Add | BinOp::Sub => {
                    if real {
                        c.fadd += 1.0
                    } else {
                        c.int_ops += 1.0
                    }
                }
                BinOp::Mul => {
                    if real {
                        c.fmul += 1.0
                    } else {
                        c.imul += 1.0
                    }
                }
                BinOp::Div => {
                    if real {
                        c.fdiv += 1.0
                    } else {
                        c.idiv += 1.0
                    }
                }
                BinOp::Pow => {
                    // integer exponent: repeated multiply; otherwise exp/log
                    if let Expr::IntLit(k, _) = rhs.as_ref() {
                        let muls = (k.unsigned_abs().max(1) as f64).log2().ceil().max(1.0);
                        if real {
                            c.fmul += muls
                        } else {
                            c.imul += muls
                        }
                    } else {
                        c.ftrans += 1.0;
                    }
                }
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    c.cmp += 1.0
                }
                BinOp::And | BinOp::Or | BinOp::Eqv | BinOp::Neqv => c.logical += 1.0,
            }
        }
    }
}

/// Count one execution of a scalar assignment `lhs = rhs` (store included).
pub fn count_assign(
    lhs: &DataRef,
    rhs: &Expr,
    analyzed: &AnalyzedProgram,
    dummies: &BTreeMap<String, ()>,
) -> OpCounts {
    let mut c = count_expr(rhs, analyzed, dummies);
    c.stores += 1.0;
    if !lhs.subs.is_empty() {
        c.index += lhs.subs.len() as f64;
        for s in &lhs.subs {
            if let Subscript::Index(ix) = s {
                count_into(ix, analyzed, dummies, &mut c);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_lang::{analyze, parse_program};
    use std::collections::BTreeMap as Map;

    fn prog(src: &str) -> AnalyzedProgram {
        analyze(&parse_program(src).unwrap(), &Map::new()).unwrap()
    }

    fn first_assign(a: &AnalyzedProgram) -> (&DataRef, &Expr) {
        fn find(stmts: &[Stmt]) -> Option<(&DataRef, &Expr)> {
            for s in stmts {
                match s {
                    Stmt::Assign { lhs, rhs, .. } => return Some((lhs, rhs)),
                    Stmt::Forall { body, .. } => {
                        if let Some(r) = find(body) {
                            return Some(r);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        find(&a.program.body).expect("assignment")
    }

    #[test]
    fn stencil_counts() {
        let a = prog(
            "PROGRAM T\nREAL U(8,8), V(8,8)\nFORALL (I=2:7, J=2:7) V(I,J) = 0.25 * (U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))\nEND\n",
        );
        let (lhs, rhs) = first_assign(&a);
        let mut dum = Map::new();
        dum.insert("I".to_string(), ());
        dum.insert("J".to_string(), ());
        let c = count_assign(lhs, rhs, &a, &dum);
        assert_eq!(c.fadd, 3.0); // the three FP adds between U refs
        assert_eq!(c.int_ops, 4.0); // the four I±1 / J±1 offset computations
        assert_eq!(c.fmul, 1.0);
        assert_eq!(c.loads, 4.0);
        assert_eq!(c.stores, 1.0);
        assert_eq!(c.index, 8.0 + 2.0);
    }

    #[test]
    fn integer_vs_real_ops() {
        let a = prog("PROGRAM T\nINTEGER K, M\nK = M * 3 + 1\nEND\n");
        let (lhs, rhs) = first_assign(&a);
        let c = count_assign(lhs, rhs, &a, &Map::new());
        assert_eq!(c.imul, 1.0);
        assert_eq!(c.int_ops, 1.0);
        assert_eq!(c.fmul, 0.0);
    }

    #[test]
    fn transcendental_counted() {
        let a = prog("PROGRAM T\nREAL X, Y\nY = SQRT(X) + EXP(X)\nEND\n");
        let (lhs, rhs) = first_assign(&a);
        let c = count_assign(lhs, rhs, &a, &Map::new());
        assert_eq!(c.ftrans, 2.0);
        assert_eq!(c.fadd, 1.0);
    }

    #[test]
    fn division_distinguished() {
        let a = prog("PROGRAM T\nREAL X, Y\nY = 1.0 / X\nEND\n");
        let (_, rhs) = first_assign(&a);
        let c = count_expr(rhs, &a, &Map::new());
        assert_eq!(c.fdiv, 1.0);
        assert_eq!(c.fmul, 0.0);
    }

    #[test]
    fn integer_power_becomes_multiplies() {
        let a = prog("PROGRAM T\nREAL X, Y\nY = X ** 4\nEND\n");
        let (_, rhs) = first_assign(&a);
        let c = count_expr(rhs, &a, &Map::new());
        assert_eq!(c.ftrans, 0.0);
        assert!(c.fmul >= 2.0);
    }

    #[test]
    fn expr_type_inference() {
        let a = prog("PROGRAM T\nINTEGER K\nREAL X\nX = K + 1\nEND\n");
        let (_, rhs) = first_assign(&a);
        assert_eq!(expr_type(rhs, &a, &Map::new()), ExprType::Int);
    }

    #[test]
    fn opcounts_algebra() {
        let a = OpCounts {
            fadd: 1.0,
            loads: 2.0,
            ..OpCounts::zero()
        };
        let b = OpCounts {
            fadd: 3.0,
            stores: 1.0,
            ..OpCounts::zero()
        };
        let s = a + b;
        assert_eq!(s.fadd, 4.0);
        assert_eq!(s.mem_refs(), 3.0);
        let d = s * 2.0;
        assert_eq!(d.fadd, 8.0);
        assert_eq!(d.flops(), 8.0);
        assert!(OpCounts::zero().is_zero());
    }
}
