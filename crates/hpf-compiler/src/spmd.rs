//! The loosely synchronous SPMD intermediate representation — the output of
//! Phase 1 (§4.1, step 5): "a loosely synchronous SPMD program structure …
//! consisting of alternating phases of local computation and global
//! communication".
//!
//! This IR plays the role of the Fortran 77 + Message-Passing node program
//! the NPAC compiler emitted. Three consumers read it: the application
//! abstraction (AAG/SAAG construction), the interpretation engine (static
//! prediction), and the iPSC/860 discrete-event simulator (ground truth).

use crate::dist::{DistributionTable, ProcGrid};
use crate::ops::OpCounts;
use hpf_lang::sema::SymbolTable;
use hpf_lang::Span;
use machine::CollectiveOp;

/// A non-fatal compilation diagnostic: the compiler degraded gracefully
/// (e.g. an unresolvable critical variable replaced by a worst-case bound)
/// instead of rejecting the program.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileWarning {
    pub message: String,
    pub span: Span,
}

impl std::fmt::Display for CompileWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "warning at {}: {}", self.span, self.message)
    }
}

/// A compiled SPMD program.
#[derive(Debug, Clone)]
pub struct SpmdProgram {
    pub name: String,
    /// Number of physical nodes the program is mapped to.
    pub nodes: usize,
    pub grid: ProcGrid,
    pub dist: DistributionTable,
    pub body: Vec<SpmdNode>,
    pub symbols: SymbolTable,
    /// Graceful-degradation diagnostics collected during lowering.
    pub warnings: Vec<CompileWarning>,
}

impl SpmdProgram {
    /// Total communication phases in the program (statically).
    pub fn comm_phase_count(&self) -> usize {
        fn walk(nodes: &[SpmdNode]) -> usize {
            nodes
                .iter()
                .map(|n| match n {
                    SpmdNode::Comm(_) => 1,
                    SpmdNode::Loop { body, .. } => walk(body),
                    SpmdNode::Branch {
                        arms, else_body, ..
                    } => arms.iter().map(|(_, b)| walk(b)).sum::<usize>() + walk(else_body),
                    _ => 0,
                })
                .sum()
        }
        walk(&self.body)
    }

    /// All parallel-I/O phases in the program, in source order (loop and
    /// branch bodies are walked once, not multiplied by trip counts).
    pub fn io_phases(&self) -> Vec<&hpf_io::IoPhase> {
        fn walk<'a>(nodes: &'a [SpmdNode], out: &mut Vec<&'a hpf_io::IoPhase>) {
            for n in nodes {
                match n {
                    SpmdNode::Io { phase, .. } => out.push(phase),
                    SpmdNode::Loop { body, .. } => walk(body, out),
                    SpmdNode::Branch {
                        arms, else_body, ..
                    } => {
                        for (_, b) in arms {
                            walk(b, out);
                        }
                        walk(else_body, out);
                    }
                    _ => {}
                }
            }
        }
        let mut v = Vec::new();
        walk(&self.body, &mut v);
        v
    }

    /// Render the phase structure as an indented outline (Figure-2 style).
    pub fn outline(&self) -> String {
        let mut out = String::new();
        fn walk(nodes: &[SpmdNode], depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            for n in nodes {
                match n {
                    SpmdNode::Seq(s) => {
                        out.push_str(&format!("{pad}Seq     {} ({})\n", s.label, s.span));
                    }
                    SpmdNode::Comp(c) => {
                        let mask = c
                            .mask_density_hint
                            .map(|d| format!(", mask~{d:.2}"))
                            .unwrap_or_default();
                        out.push_str(&format!(
                            "{pad}Comp    {} [{} iters{}] ({})\n",
                            c.label, c.total_iters, mask, c.span
                        ));
                    }
                    SpmdNode::Comm(c) => {
                        out.push_str(&format!(
                            "{pad}Comm    {} {:?} [{} B/node, p={}] ({})\n",
                            c.label, c.op, c.bytes_per_node, c.participants, c.span
                        ));
                    }
                    SpmdNode::Io { phase, span } => {
                        out.push_str(&format!("{pad}Io      {} ({})\n", phase.outline(), span));
                    }
                    SpmdNode::Loop {
                        var, trips, body, ..
                    } => {
                        out.push_str(&format!("{pad}Loop    {var} x{trips}\n"));
                        walk(body, depth + 1, out);
                    }
                    SpmdNode::Branch {
                        arms, else_body, ..
                    } => {
                        for (i, (p, b)) in arms.iter().enumerate() {
                            out.push_str(&format!(
                                "{pad}{} (p~{p:.2})\n",
                                if i == 0 { "If  " } else { "Elif" }
                            ));
                            walk(b, depth + 1, out);
                        }
                        if !else_body.is_empty() {
                            out.push_str(&format!("{pad}Else\n"));
                            walk(else_body, depth + 1, out);
                        }
                    }
                }
            }
        }
        walk(&self.body, 0, &mut out);
        out
    }
}

/// One node of the SPMD program structure.
#[derive(Debug, Clone)]
pub enum SpmdNode {
    /// Replicated scalar computation executed identically on every node.
    Seq(SeqBlock),
    /// Local (owner-computes) computation phase.
    Comp(CompPhase),
    /// Global communication phase.
    Comm(CommPhase),
    /// Parallel I/O phase: a striped READ/WRITE/CHECKPOINT over the I/O
    /// servers (descriptor defined in `hpf-io`).
    Io { phase: hpf_io::IoPhase, span: Span },
    /// Counted loop around nested phases.
    Loop {
        var: String,
        /// Resolved trip count (critical-variable tracing / user input).
        trips: u64,
        /// Whether `trips` was estimated rather than resolved exactly
        /// (e.g. DO WHILE with a heuristic guess).
        estimated: bool,
        body: Vec<SpmdNode>,
        span: Span,
    },
    /// Conditional around nested phases. Arm weights are the static branch-
    /// probability heuristic the interpretation functions use.
    Branch {
        arms: Vec<(f64, Vec<SpmdNode>)>,
        else_body: Vec<SpmdNode>,
        span: Span,
    },
}

impl SpmdNode {
    pub fn span(&self) -> Span {
        match self {
            SpmdNode::Seq(s) => s.span,
            SpmdNode::Comp(c) => c.span,
            SpmdNode::Comm(c) => c.span,
            SpmdNode::Loop { span, .. }
            | SpmdNode::Branch { span, .. }
            | SpmdNode::Io { span, .. } => *span,
        }
    }
}

/// Replicated scalar work (scalar assignments, I/O).
#[derive(Debug, Clone)]
pub struct SeqBlock {
    pub label: String,
    pub span: Span,
    /// Operation counts for one execution.
    pub ops: OpCounts,
}

/// A local computation phase: the sequentialized loop nest executing the
/// locally owned part of a forall / array operation.
#[derive(Debug, Clone)]
pub struct CompPhase {
    pub label: String,
    pub span: Span,
    /// Global iteration count (all nodes together, before masking).
    pub total_iters: u64,
    /// Iterations owned by each node (len == nodes).
    pub per_node_iters: Vec<u64>,
    /// Operations per (unmasked) iteration.
    pub per_iter: OpCounts,
    /// Additional per-iteration cost when the mask is TRUE (body of a
    /// masked forall); `per_iter` then holds the mask-evaluation cost.
    pub masked_ops: Option<OpCounts>,
    /// Static mask-density heuristic used by the predictor (None = no mask).
    pub mask_density_hint: Option<f64>,
    /// Nesting depth of the generated loop nest (for loop overheads).
    pub loop_depth: u32,
    /// Per-node working set in bytes (distinct data touched).
    pub working_set_bytes: u64,
    /// Unit-stride fraction of memory references in `[0,1]` — drives the
    /// memory component's hit-ratio model.
    pub locality: f64,
}

impl CompPhase {
    /// Iterations on the busiest node — the loosely synchronous phase
    /// finishes when the slowest node does.
    pub fn max_node_iters(&self) -> u64 {
        self.per_node_iters.iter().copied().max().unwrap_or(0)
    }

    /// Load imbalance ratio (max/mean); 1.0 = perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let max = self.max_node_iters() as f64;
        let mean = self.total_iters as f64 / self.per_node_iters.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// A communication phase.
#[derive(Debug, Clone)]
pub struct CommPhase {
    pub label: String,
    pub span: Span,
    pub op: CollectiveOp,
    /// Payload per participating node, bytes.
    pub bytes_per_node: u64,
    /// Number of participating processors.
    pub participants: usize,
    /// For Shift: whether the transferred boundary is contiguous in local
    /// (column-major) memory. Strided boundaries pay extra packing.
    pub contiguous: bool,
    /// For Shift: the distributed grid dimension being crossed.
    pub shift_grid_dim: Option<usize>,
    /// The arrays involved (for tracing / per-line attribution).
    pub arrays: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(per_node: Vec<u64>) -> CompPhase {
        CompPhase {
            label: "t".into(),
            span: Span::SYNTHETIC,
            total_iters: per_node.iter().sum(),
            per_node_iters: per_node,
            per_iter: OpCounts::zero(),
            masked_ops: None,
            mask_density_hint: None,
            loop_depth: 1,
            working_set_bytes: 0,
            locality: 1.0,
        }
    }

    #[test]
    fn imbalance_metrics() {
        let p = phase(vec![4, 4, 4, 4]);
        assert_eq!(p.max_node_iters(), 4);
        assert!((p.imbalance() - 1.0).abs() < 1e-12);
        let p = phase(vec![8, 0, 0, 0]);
        assert_eq!(p.imbalance(), 4.0);
    }

    #[test]
    fn empty_phase_is_balanced() {
        let p = phase(vec![0, 0]);
        assert_eq!(p.imbalance(), 1.0);
        assert_eq!(p.max_node_iters(), 0);
    }
}
