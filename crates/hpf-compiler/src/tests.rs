//! Compiler integration tests: distribution shapes, phase structure,
//! communication detection, trip resolution, load balance, locality.

use crate::*;
use hpf_lang::{analyze, parse_program};
use machine::CollectiveOp;
use std::collections::BTreeMap;

pub fn compile_src(src: &str, nodes: usize) -> SpmdProgram {
    let p = parse_program(src).unwrap();
    let a = analyze(&p, &BTreeMap::new()).unwrap();
    compile(
        &a,
        &CompileOptions {
            nodes,
            ..Default::default()
        },
    )
    .unwrap()
}

fn phases(p: &SpmdProgram) -> Vec<SpmdNode> {
    let mut v = Vec::new();
    flatten_phases(&p.body, &mut v);
    v
}

const LAPLACE: &str = "
PROGRAM LAP
INTEGER, PARAMETER :: N = 64
REAL U(N,N), V(N,N)
INTEGER IT
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN U(I,J) WITH T(I,J)
!HPF$ ALIGN V(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(BLOCK,*) ONTO P
U = 0.0
DO IT = 1, 10
FORALL (I=2:N-1, J=2:N-1) V(I,J) = 0.25 * (U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))
U(2:N-1, 2:N-1) = V(2:N-1, 2:N-1)
END DO
END
";

#[test]
fn laplace_structure() {
    let p = compile_src(LAPLACE, 4);
    assert_eq!(p.nodes, 4);
    let ph = phases(&p);
    let comps = ph.iter().filter(|n| matches!(n, SpmdNode::Comp(_))).count();
    assert_eq!(comps, 3, "init, stencil, copy: {}", p.outline());
    let comms: Vec<&CommPhase> = ph
        .iter()
        .filter_map(|n| match n {
            SpmdNode::Comm(c) => Some(c),
            _ => None,
        })
        .collect();
    // stencil needs two shift phases (up and down ghost rows)
    assert_eq!(comms.len(), 2, "{}", p.outline());
    assert!(comms.iter().all(|c| c.op == CollectiveOp::Shift));
    for c in comms {
        assert!(!c.contiguous, "dim-1 boundary is strided");
        assert!(c.bytes_per_node >= 62 * 4, "bytes {}", c.bytes_per_node);
    }
}

#[test]
fn laplace_star_block_contiguous_shifts() {
    let src = LAPLACE.replace("(BLOCK,*)", "(*,BLOCK)");
    let p = compile_src(&src, 4);
    let ph = phases(&p);
    let comms: Vec<&CommPhase> = ph
        .iter()
        .filter_map(|n| match n {
            SpmdNode::Comm(c) => Some(c),
            _ => None,
        })
        .collect();
    assert_eq!(comms.len(), 2);
    assert!(
        comms.iter().all(|c| c.contiguous),
        "dim-2 boundary is contiguous"
    );
}

#[test]
fn laplace_per_node_balance() {
    let p = compile_src(LAPLACE, 4);
    let ph = phases(&p);
    let stencil = ph
        .iter()
        .find_map(|n| match n {
            SpmdNode::Comp(c) if c.label.contains("-> V") => Some(c),
            _ => None,
        })
        .expect("stencil phase");
    assert_eq!(stencil.total_iters, 62 * 62);
    assert_eq!(stencil.per_node_iters.len(), 4);
    assert_eq!(stencil.per_node_iters.iter().sum::<u64>(), 62 * 62);
    assert_eq!(stencil.max_node_iters(), 16 * 62);
}

#[test]
fn reduction_lowering() {
    let src = "
PROGRAM R
INTEGER, PARAMETER :: N = 128
REAL A(N), S
!HPF$ PROCESSORS P(8)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
A = 1.0
S = SUM(A)
END
";
    let p = compile_src(src, 8);
    let ph = phases(&p);
    let has_reduce = ph
        .iter()
        .any(|n| matches!(n, SpmdNode::Comm(c) if c.op == CollectiveOp::Reduce));
    assert!(has_reduce, "{}", p.outline());
    let partial = ph
        .iter()
        .find_map(|n| match n {
            SpmdNode::Comp(c) if c.label.contains("partial") => Some(c),
            _ => None,
        })
        .expect("partial phase");
    assert_eq!(partial.per_node_iters, vec![16; 8]);
}

#[test]
fn single_node_has_no_comm() {
    let p = compile_src(LAPLACE, 1);
    assert_eq!(p.comm_phase_count(), 0, "{}", p.outline());
}

#[test]
fn transpose_requires_all_to_all() {
    let src = "
PROGRAM TR
INTEGER, PARAMETER :: N = 32
REAL A(N,N), B(N,N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN A(I,J) WITH T(I,J)
!HPF$ ALIGN B(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(BLOCK,*) ONTO P
FORALL (I=1:N, J=1:N) B(I,J) = A(J,I)
END
";
    let p = compile_src(src, 4);
    let ph = phases(&p);
    assert!(
        ph.iter()
            .any(|n| matches!(n, SpmdNode::Comm(c) if c.op == CollectiveOp::AllToAll)),
        "{}",
        p.outline()
    );
}

#[test]
fn indirect_access_gathers() {
    let src = "
PROGRAM G
INTEGER, PARAMETER :: N = 64
REAL X(N), Y(N)
INTEGER IDX(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN X(I) WITH T(I)
!HPF$ ALIGN Y(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
FORALL (I=1:N) Y(I) = X(IDX(I))
END
";
    let p = compile_src(src, 4);
    let ph = phases(&p);
    assert!(
        ph.iter()
            .any(|n| matches!(n, SpmdNode::Comm(c) if c.op == CollectiveOp::Gather)),
        "{}",
        p.outline()
    );
}

#[test]
fn masked_forall_has_density_hint() {
    let src = "
PROGRAM M
INTEGER, PARAMETER :: N = 32
REAL P1(N), Q(N)
!HPF$ PROCESSORS PR(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN P1(I) WITH T(I)
!HPF$ ALIGN Q(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO PR
FORALL (I=1:N, Q(I) .NE. 0.0) P1(I) = 1.0 / Q(I)
END
";
    let p = compile_src(src, 4);
    let ph = phases(&p);
    let comp = ph
        .iter()
        .find_map(|n| match n {
            SpmdNode::Comp(c) => Some(c),
            _ => None,
        })
        .unwrap();
    assert!(comp.mask_density_hint.is_some());
    assert!(comp.masked_ops.is_some());
    assert!(comp.masked_ops.as_ref().unwrap().fdiv > 0.0);
}

#[test]
fn do_loop_trips_resolved() {
    let p = compile_src(LAPLACE, 4);
    let loop_node = p
        .body
        .iter()
        .find_map(|n| match n {
            SpmdNode::Loop {
                trips, estimated, ..
            } => Some((*trips, *estimated)),
            _ => None,
        })
        .expect("loop");
    assert_eq!(loop_node, (10, false));
}

#[test]
fn do_while_estimated() {
    let src = "
PROGRAM W
REAL X
X = 1.0
DO WHILE (X > 0.001)
X = X * 0.5
END DO
END
";
    let p = compile_src(src, 2);
    let est = p
        .body
        .iter()
        .find_map(|n| match n {
            SpmdNode::Loop { estimated, .. } => Some(*estimated),
            _ => None,
        })
        .unwrap();
    assert!(est);
}

#[test]
fn critical_variable_resolution_feeds_bounds() {
    let src = "
PROGRAM C
INTEGER M
REAL A(128)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
M = 100
FORALL (I=1:M) A(I) = 1.0
END
";
    let p = compile_src(src, 4);
    let ph = phases(&p);
    let comp = ph
        .iter()
        .find_map(|n| match n {
            SpmdNode::Comp(c) => Some(c),
            _ => None,
        })
        .unwrap();
    assert_eq!(comp.total_iters, 100);
}

#[test]
fn user_critical_values_override() {
    let src = "
PROGRAM C
INTEGER M
REAL A(128), S
S = SUM(A)
M = INT(S)
FORALL (I=1:M) A(I) = 1.0
END
";
    let p = parse_program(src).unwrap();
    let a = analyze(&p, &BTreeMap::new()).unwrap();
    // Without a user-supplied value the unresolvable critical variable
    // degrades to the worst-case bound (the largest array extent, 128)
    // with a warning — not a hard error.
    let fallback = compile(
        &a,
        &CompileOptions {
            nodes: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(fallback.warnings.len(), 1, "{:?}", fallback.warnings);
    assert!(fallback.warnings[0].message.contains("worst-case"));
    let comp_fb = phases(&fallback)
        .iter()
        .filter_map(|n| match n {
            SpmdNode::Comp(c) => Some(c.total_iters),
            _ => None,
        })
        .next_back()
        .unwrap();
    assert_eq!(comp_fb, 128);
    let mut opts = CompileOptions {
        nodes: 2,
        ..Default::default()
    };
    opts.critical_values.insert("M".into(), 64);
    let sp = compile(&a, &opts).unwrap();
    let ph = phases(&sp);
    let comp = ph
        .iter()
        .filter_map(|n| match n {
            SpmdNode::Comp(c) => Some(c),
            _ => None,
        })
        .next_back()
        .unwrap();
    assert_eq!(comp.total_iters, 64);
}

#[test]
fn locality_favors_block_star_for_row_stencil() {
    let p_bs = compile_src(LAPLACE, 4);
    let src = LAPLACE.replace("(BLOCK,*)", "(*,BLOCK)");
    let p_sb = compile_src(&src, 4);
    let loc = |p: &SpmdProgram| {
        let ph = phases(p);
        ph.iter()
            .find_map(|n| match n {
                SpmdNode::Comp(c) if c.label.contains("-> V") => Some(c.locality),
                _ => None,
            })
            .unwrap()
    };
    assert!(
        loc(&p_bs) > loc(&p_sb),
        "(Block,*) locality {} should beat (*,Block) {}",
        loc(&p_bs),
        loc(&p_sb)
    );
}

#[test]
fn outline_renders() {
    let p = compile_src(LAPLACE, 4);
    let o = p.outline();
    assert!(o.contains("Comp"));
    assert!(o.contains("Comm"));
    assert!(o.contains("Loop"));
}

#[test]
fn cyclic_balances_triangular_iteration() {
    let mk = |dist: &str| {
        format!(
            "
PROGRAM TRI
INTEGER, PARAMETER :: N = 64
REAL A(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A({dist}) ONTO P
FORALL (I=33:N) A(I) = 1.0
END
"
        )
    };
    let pb = compile_src(&mk("BLOCK"), 4);
    let pc = compile_src(&mk("CYCLIC"), 4);
    let imb = |p: &SpmdProgram| {
        let ph = phases(p);
        ph.iter()
            .find_map(|n| match n {
                SpmdNode::Comp(c) => Some(c.imbalance()),
                _ => None,
            })
            .unwrap()
    };
    assert!(imb(&pb) > 1.9, "BLOCK imbalance {}", imb(&pb));
    assert!(imb(&pc) < 1.1, "CYCLIC imbalance {}", imb(&pc));
}

#[test]
fn constant_subscript_of_distributed_dim_broadcasts() {
    // Every node reads row 1 of a row-distributed matrix: the slice lives
    // on one coordinate and must be broadcast.
    let src = "
PROGRAM B
INTEGER, PARAMETER :: N = 64
REAL A(N,N), R(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN A(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(BLOCK,*) ONTO P
FORALL (J = 1:N) R(J) = A(1, J)
END
";
    let p = compile_src(src, 4);
    let ph = phases(&p);
    assert!(
        ph.iter()
            .any(|n| matches!(n, SpmdNode::Comm(c) if c.op == CollectiveOp::Broadcast)),
        "{}",
        p.outline()
    );
}

#[test]
fn loop_reorder_improves_star_block_locality() {
    let src = "
PROGRAM L
INTEGER, PARAMETER :: N = 128
REAL U(N,N), V(N,N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN U(I,J) WITH T(I,J)
!HPF$ ALIGN V(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(*,BLOCK) ONTO P
FORALL (I=2:N-1, J=2:N-1) V(I,J) = U(I-1,J) + U(I+1,J)
END
";
    let prog = hpf_lang::parse_program(src).unwrap();
    let a = hpf_lang::analyze(&prog, &BTreeMap::new()).unwrap();
    let base = compile(
        &a,
        &CompileOptions {
            nodes: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let opt = compile(
        &a,
        &CompileOptions {
            nodes: 4,
            loop_reorder: true,
            ..Default::default()
        },
    )
    .unwrap();
    let loc = |p: &SpmdProgram| {
        let mut v = Vec::new();
        flatten_phases(&p.body, &mut v);
        v.iter()
            .find_map(|n| match n {
                SpmdNode::Comp(c) => Some(c.locality),
                _ => None,
            })
            .unwrap()
    };
    assert!(
        loc(&opt) > loc(&base),
        "reorder {} vs base {}",
        loc(&opt),
        loc(&base)
    );
    assert_eq!(
        loc(&opt),
        1.0,
        "stride-1 ordering available via dim-1 dummy"
    );
}

#[test]
fn align_offset_changes_shift_direction_bytes() {
    // B aligned one cell to the right of A: reading B(I) from A's home is a
    // δ=+1 template offset → one shift phase.
    let src = "
PROGRAM O
INTEGER, PARAMETER :: N = 64
REAL A(N), B(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N+1)
!HPF$ ALIGN A(I) WITH T(I)
!HPF$ ALIGN B(I) WITH T(I+1)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
FORALL (I = 1:N) A(I) = B(I)
END
";
    let p = compile_src(src, 4);
    let ph = phases(&p);
    let shifts: Vec<&CommPhase> = ph
        .iter()
        .filter_map(|n| match n {
            SpmdNode::Comm(c) if c.op == CollectiveOp::Shift => Some(c),
            _ => None,
        })
        .collect();
    assert_eq!(shifts.len(), 1, "{}", p.outline());
    assert_eq!(shifts[0].bytes_per_node, 4, "one boundary element");
}

#[test]
fn strided_section_assignment_iteration_count() {
    let src = "
PROGRAM S
INTEGER, PARAMETER :: N = 64
REAL A(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
A(1:N:4) = 1.0
END
";
    let p = compile_src(src, 4);
    let ph = phases(&p);
    let comp = ph
        .iter()
        .find_map(|n| match n {
            SpmdNode::Comp(c) => Some(c),
            _ => None,
        })
        .unwrap();
    assert_eq!(comp.total_iters, 16);
    assert_eq!(comp.per_node_iters.iter().sum::<u64>(), 16);
}

#[test]
fn geometric_while_recognized_exactly() {
    let src = "
PROGRAM G
INTEGER, PARAMETER :: N = 256
INTEGER II
REAL X
II = N
X = 0.0
DO WHILE (II > 1)
  X = X + II
  II = II / 2
END DO
END
";
    let p = compile_src(src, 1);
    let (trips, est) = p
        .body
        .iter()
        .find_map(|n| match n {
            SpmdNode::Loop {
                trips, estimated, ..
            } => Some((*trips, *estimated)),
            _ => None,
        })
        .unwrap();
    assert_eq!(trips, 8, "log2(256) levels");
    assert!(!est, "induction recognized, not estimated");
}

#[test]
fn non_geometric_while_stays_estimated() {
    let src = "
PROGRAM W
REAL X
X = 100.0
DO WHILE (X > 1.0)
  X = X - 3.0
END DO
END
";
    let p = compile_src(src, 1);
    let est = p
        .body
        .iter()
        .find_map(|n| match n {
            SpmdNode::Loop { estimated, .. } => Some(*estimated),
            _ => None,
        })
        .unwrap();
    assert!(est, "subtractive loops are not recognized");
}

#[test]
fn two_dim_grid_coords_partition_elements() {
    let src = "
PROGRAM P2
INTEGER, PARAMETER :: N = 32
REAL A(N,N)
!HPF$ PROCESSORS P(2,4)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN A(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK) ONTO P
A = 0.0
END
";
    let p = compile_src(src, 8);
    let a = p.dist.get("A").unwrap();
    let total: u64 = (0..8).map(|n| a.local_elems(&p.grid.coords(n))).sum();
    assert_eq!(total, 32 * 32);
}

#[test]
fn print_of_reduction_is_seq_only() {
    // PRINT *, SUM(A): accepted, charged as a Seq library call (the output
    // statement is host I/O, not a parallel reduction phase in the subset).
    let src = "
PROGRAM PR
INTEGER, PARAMETER :: N = 32
REAL A(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
A = 1.0
PRINT *, SUM(A)
END
";
    let p = compile_src(src, 4);
    let ph = phases(&p);
    assert!(ph
        .iter()
        .any(|n| matches!(n, SpmdNode::Seq(s) if s.label == "print")));
}

#[test]
fn block_cyclic_distribution_resolves() {
    let src = "
PROGRAM BC
INTEGER, PARAMETER :: N = 64
REAL A(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(CYCLIC(4)) ONTO P
A = 0.0
END
";
    let p = compile_src(src, 4);
    let a = p.dist.get("A").unwrap();
    assert!(matches!(
        a.dims[0],
        DimDist::Cyclic {
            pcount: 4,
            k: 4,
            ..
        }
    ));
    // blocks of 4: indices 1..4 on c0, 5..8 on c1, 17..20 back on c0.
    assert_eq!(a.owner_coord(0, 1), 0);
    assert_eq!(a.owner_coord(0, 4), 0);
    assert_eq!(a.owner_coord(0, 5), 1);
    assert_eq!(a.owner_coord(0, 17), 0);
    // partition: 16 per coordinate
    for c in 0..4 {
        assert_eq!(a.local_extent(0, c), 16, "coord {c}");
    }
}

#[test]
fn block_cyclic_shift_volume_between_block_and_cyclic() {
    // For a unit-offset stencil: BLOCK moves 1 boundary element, CYCLIC
    // moves the whole local share, CYCLIC(k) moves ~1/k of it.
    let mk = |dist: &str| {
        format!(
            "
PROGRAM S
INTEGER, PARAMETER :: N = 256
REAL A(N), B(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN A(I) WITH T(I)
!HPF$ ALIGN B(I) WITH T(I)
!HPF$ DISTRIBUTE T({dist}) ONTO P
FORALL (I = 2:N) A(I) = B(I-1)
END
"
        )
    };
    let bytes = |dist: &str| {
        let p = compile_src(&mk(dist), 4);
        let mut v = Vec::new();
        flatten_phases(&p.body, &mut v);
        v.iter()
            .find_map(|n| match n {
                SpmdNode::Comm(c) if c.op == CollectiveOp::Shift => Some(c.bytes_per_node),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no shift for {dist}: {}", p.outline()))
    };
    let block = bytes("BLOCK");
    let cyc = bytes("CYCLIC");
    let bc8 = bytes("CYCLIC(8)");
    assert!(block < bc8, "block {block} < cyclic(8) {bc8}");
    assert!(bc8 < cyc, "cyclic(8) {bc8} < cyclic {cyc}");
}

#[test]
fn cyclic_one_parses_as_pure_cyclic() {
    let src = "
PROGRAM C1
INTEGER, PARAMETER :: N = 16
REAL A(N)
!HPF$ PROCESSORS P(2)
!HPF$ DISTRIBUTE A(CYCLIC(1)) ONTO P
A = 0.0
END
";
    let p = compile_src(src, 2);
    let a = p.dist.get("A").unwrap();
    assert!(matches!(a.dims[0], DimDist::Cyclic { k: 1, .. }));
}

#[test]
fn io_statements_lower_to_phases() {
    let src = "
PROGRAM OOC
INTEGER, PARAMETER :: N = 64
REAL A(N), B(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN A(I) WITH TPL(I)
!HPF$ ALIGN B(I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL(BLOCK) ONTO P
A = 0.0
READ(A)
B = A
CHECKPOINT
WRITE(B)
END
";
    let p = compile_src(src, 4);
    let io: Vec<_> = p.io_phases();
    assert_eq!(io.len(), 3);
    assert_eq!(io[0].kind, hpf_io::IoKind::Read);
    assert_eq!(io[0].arrays, vec!["A".to_string()]);
    assert_eq!(io[0].total_bytes, 64 * 4);
    assert_eq!(io[0].bytes_per_node, 16 * 4);
    assert_eq!(io[0].participants, 4);
    // Bare CHECKPOINT snapshots every distributed array, in name order.
    assert_eq!(io[1].kind, hpf_io::IoKind::Checkpoint);
    assert_eq!(io[1].arrays, vec!["A".to_string(), "B".to_string()]);
    assert_eq!(io[1].total_bytes, 2 * 64 * 4);
    assert_eq!(io[2].kind, hpf_io::IoKind::Write);
}

#[test]
fn io_of_unknown_array_is_a_compile_error() {
    let src = "
PROGRAM BAD
INTEGER, PARAMETER :: N = 16
REAL A(N)
!HPF$ PROCESSORS P(2)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
A = 0.0
READ(NOSUCH)
END
";
    let p = parse_program(src).unwrap();
    let a = analyze(&p, &BTreeMap::new());
    // Semantic analysis may reject the unknown name first; if it passes,
    // lowering must produce a typed I/O error.
    if let Ok(a) = a {
        let err = compile(
            &a,
            &CompileOptions {
                nodes: 2,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err.io, Some(hpf_io::IoError::UnknownArray { .. })),
            "expected UnknownArray, got {err:?}"
        );
    }
}

#[test]
fn io_server_count_validated_against_nodes() {
    let src = "
PROGRAM BAD
INTEGER, PARAMETER :: N = 16
REAL A(N)
!HPF$ PROCESSORS P(2)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
A = 0.0
WRITE(A)
END
";
    let p = parse_program(src).unwrap();
    let a = analyze(&p, &BTreeMap::new()).unwrap();
    let err = compile(
        &a,
        &CompileOptions {
            nodes: 2,
            io: hpf_io::IoConfig {
                io_servers: 8,
                stripe_factor: 1,
            },
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(err.io, Some(hpf_io::IoError::ServersExceedNodes { .. })),
        "expected ServersExceedNodes, got {err:?}"
    );
}

#[test]
fn checkpoint_of_replicated_only_program_is_an_error() {
    // No distributed arrays at all: a bare CHECKPOINT has nothing durable
    // to snapshot and must be rejected with the typed error.
    let src = "
PROGRAM SCALARS
REAL X
X = 1.0
CHECKPOINT
END
";
    let p = parse_program(src).unwrap();
    let a = analyze(&p, &BTreeMap::new()).unwrap();
    let err = compile(
        &a,
        &CompileOptions {
            nodes: 2,
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(err.io, Some(hpf_io::IoError::UnpartitionedArray { .. })),
        "expected UnpartitionedArray, got {err:?}"
    );
}
