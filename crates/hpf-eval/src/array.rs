//! Fortran array values: rectangular, column-major, with explicit lower
//! bounds — the storage model the Fortran 90D compiler assumes.

use hpf_lang::value::Value;
use hpf_lang::TypeSpec;

/// A Fortran array value (column-major element order).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayVal {
    /// Lower bound per dimension.
    pub lbounds: Vec<i64>,
    /// Extent (number of elements) per dimension.
    pub extents: Vec<usize>,
    /// Elements in column-major order.
    pub data: Vec<Value>,
}

impl ArrayVal {
    /// Create an array filled with the type's default initial value
    /// (zero / `.FALSE.`; matching how the benchmark drivers zero storage).
    pub fn zeroed(shape: &[(i64, i64)], ty: TypeSpec) -> ArrayVal {
        let lbounds: Vec<i64> = shape.iter().map(|(lb, _)| *lb).collect();
        let extents: Vec<usize> = shape
            .iter()
            .map(|(lb, ub)| (ub - lb + 1).max(0) as usize)
            .collect();
        let n: usize = extents.iter().product();
        let fill = match ty {
            TypeSpec::Integer => Value::Int(0),
            TypeSpec::Real | TypeSpec::DoublePrecision => Value::Real(0.0),
            TypeSpec::Logical => Value::Logical(false),
        };
        ArrayVal {
            lbounds,
            extents,
            data: vec![fill; n],
        }
    }

    /// Build a rank-1 array from values.
    pub fn from_vec(data: Vec<Value>) -> ArrayVal {
        ArrayVal {
            lbounds: vec![1],
            extents: vec![data.len()],
            data,
        }
    }

    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Column-major linear offset of a multi-dimensional index
    /// (indices use the array's own bounds). `None` if out of range.
    pub fn offset(&self, idx: &[i64]) -> Option<usize> {
        if idx.len() != self.rank() {
            return None;
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for (d, &i) in idx.iter().enumerate() {
            let rel = i - self.lbounds[d];
            if rel < 0 || rel as usize >= self.extents[d] {
                return None;
            }
            off += rel as usize * stride;
            stride *= self.extents[d];
        }
        Some(off)
    }

    pub fn get(&self, idx: &[i64]) -> Option<&Value> {
        self.offset(idx).map(|o| &self.data[o])
    }

    pub fn set(&mut self, idx: &[i64], v: Value) -> bool {
        match self.offset(idx) {
            Some(o) => {
                self.data[o] = v;
                true
            }
            None => false,
        }
    }

    /// Inverse of [`offset`](Self::offset): linear offset → index vector.
    pub fn index_of(&self, mut off: usize) -> Vec<i64> {
        let mut idx = Vec::with_capacity(self.rank());
        for d in 0..self.rank() {
            let e = self.extents[d];
            idx.push(self.lbounds[d] + (off % e) as i64);
            off /= e;
        }
        idx
    }

    /// Whether two arrays are conformable (same extents, bounds ignored).
    pub fn conformable(&self, other: &ArrayVal) -> bool {
        self.extents == other.extents
    }

    /// CSHIFT: circularly shift along `dim` (1-based) by `shift`
    /// (positive shifts toward lower indices, per Fortran 90).
    pub fn cshift(&self, shift: i64, dim: usize) -> Option<ArrayVal> {
        if dim == 0 || dim > self.rank() {
            return None;
        }
        let d = dim - 1;
        let e = self.extents[d] as i64;
        if e == 0 {
            return Some(self.clone());
        }
        let mut out = self.clone();
        for off in 0..self.data.len() {
            let mut idx = self.index_of(off);
            // element at position i comes from position i + shift (wrapped)
            let rel = idx[d] - self.lbounds[d];
            let src = (rel + shift).rem_euclid(e);
            idx[d] = self.lbounds[d] + src;
            out.data[off] = self
                .get(&idx)
                .cloned()
                .unwrap_or_else(|| self.data[off].clone());
        }
        Some(out)
    }

    /// EOSHIFT / TSHIFT: end-off shift along `dim` with zero/false fill.
    pub fn eoshift(&self, shift: i64, dim: usize) -> Option<ArrayVal> {
        if dim == 0 || dim > self.rank() {
            return None;
        }
        let d = dim - 1;
        let e = self.extents[d] as i64;
        let fill = match self.data.first() {
            Some(Value::Int(_)) => Value::Int(0),
            Some(Value::Logical(_)) => Value::Logical(false),
            _ => Value::Real(0.0),
        };
        let mut out = self.clone();
        for off in 0..self.data.len() {
            let mut idx = self.index_of(off);
            let rel = idx[d] - self.lbounds[d];
            let src = rel + shift;
            out.data[off] = if src < 0 || src >= e {
                fill.clone()
            } else {
                idx[d] = self.lbounds[d] + src;
                self.get(&idx).cloned().unwrap_or_else(|| fill.clone())
            };
        }
        Some(out)
    }

    /// TRANSPOSE of a rank-2 array.
    pub fn transpose(&self) -> Option<ArrayVal> {
        if self.rank() != 2 {
            return None;
        }
        let (n0, n1) = (self.extents[0], self.extents[1]);
        let mut out = ArrayVal {
            lbounds: vec![self.lbounds[1], self.lbounds[0]],
            extents: vec![n1, n0],
            data: self.data.clone(),
        };
        for j in 0..n1 {
            for i in 0..n0 {
                out.data[j + i * n1] = self.data[i + j * n0].clone();
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(n: i64) -> ArrayVal {
        ArrayVal::from_vec((1..=n).map(Value::Int).collect())
    }

    #[test]
    fn offset_roundtrip_2d() {
        let a = ArrayVal::zeroed(&[(1, 3), (1, 4)], TypeSpec::Real);
        for off in 0..12 {
            let idx = a.index_of(off);
            assert_eq!(a.offset(&idx), Some(off));
        }
    }

    #[test]
    fn column_major_layout() {
        // A(2,3): A(1,1) A(2,1) A(1,2) ...
        let mut a = ArrayVal::zeroed(&[(1, 2), (1, 3)], TypeSpec::Integer);
        a.set(&[2, 1], Value::Int(21));
        assert_eq!(a.data[1], Value::Int(21));
        a.set(&[1, 2], Value::Int(12));
        assert_eq!(a.data[2], Value::Int(12));
    }

    #[test]
    fn nonunit_lower_bounds() {
        let mut a = ArrayVal::zeroed(&[(0, 4)], TypeSpec::Integer);
        assert!(a.set(&[0], Value::Int(7)));
        assert_eq!(a.get(&[0]), Some(&Value::Int(7)));
        assert!(a.get(&[5]).is_none());
        assert!(a.get(&[-1]).is_none());
    }

    #[test]
    fn cshift_positive_moves_toward_lower() {
        let a = iota(4);
        let s = a.cshift(1, 1).unwrap();
        let got: Vec<i64> = s.data.iter().map(|v| v.as_i64().unwrap()).collect();
        assert_eq!(got, vec![2, 3, 4, 1]);
    }

    #[test]
    fn cshift_negative() {
        let a = iota(4);
        let s = a.cshift(-1, 1).unwrap();
        let got: Vec<i64> = s.data.iter().map(|v| v.as_i64().unwrap()).collect();
        assert_eq!(got, vec![4, 1, 2, 3]);
    }

    #[test]
    fn cshift_full_cycle_is_identity() {
        let a = iota(5);
        assert_eq!(a.cshift(5, 1).unwrap(), a);
        assert_eq!(a.cshift(0, 1).unwrap(), a);
    }

    #[test]
    fn eoshift_fills_zero() {
        let a = iota(4);
        let s = a.eoshift(1, 1).unwrap();
        let got: Vec<i64> = s.data.iter().map(|v| v.as_i64().unwrap()).collect();
        assert_eq!(got, vec![2, 3, 4, 0]);
        let s = a.eoshift(-2, 1).unwrap();
        let got: Vec<i64> = s.data.iter().map(|v| v.as_i64().unwrap()).collect();
        assert_eq!(got, vec![0, 0, 1, 2]);
    }

    #[test]
    fn cshift_2d_along_dims() {
        // 2x2: [[1,3],[2,4]] column-major data [1,2,3,4]
        let a = ArrayVal {
            lbounds: vec![1, 1],
            extents: vec![2, 2],
            data: vec![1, 2, 3, 4].into_iter().map(Value::Int).collect(),
        };
        let s1 = a.cshift(1, 1).unwrap(); // shift rows
        let got: Vec<i64> = s1.data.iter().map(|v| v.as_i64().unwrap()).collect();
        assert_eq!(got, vec![2, 1, 4, 3]);
        let s2 = a.cshift(1, 2).unwrap(); // shift columns
        let got: Vec<i64> = s2.data.iter().map(|v| v.as_i64().unwrap()).collect();
        assert_eq!(got, vec![3, 4, 1, 2]);
    }

    #[test]
    fn transpose_2d() {
        let a = ArrayVal {
            lbounds: vec![1, 1],
            extents: vec![2, 3],
            data: (1..=6).map(Value::Int).collect(),
        };
        let t = a.transpose().unwrap();
        assert_eq!(t.extents, vec![3, 2]);
        assert_eq!(t.get(&[3, 1]), a.get(&[1, 3]));
        assert_eq!(t.get(&[2, 2]), a.get(&[2, 2]));
    }
}
