//! The functional interpreter: sequential, global-name-space, value-level
//! execution of the HPF/Fortran 90D subset.
//!
//! This is the third tool of the paper's application development environment
//! (§1: "the environment integrates a HPF/Fortran 90D compiler, a functional
//! interpreter and the source based performance prediction tool"). Here it
//! serves three roles: semantics oracle for the compiler, source of
//! data-dependent execution profiles for the machine simulator, and
//! critical-variable resolution of last resort.

use crate::array::ArrayVal;
use crate::profile::ExecutionProfile;
use hpf_lang::ast::*;
use hpf_lang::sema::{AnalyzedProgram, SymbolKind};
use hpf_lang::value::Value;
use hpf_lang::value_ops;
use hpf_lang::Span;
use std::collections::BTreeMap;

/// Evaluation error.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    pub message: String,
    pub span: Span,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "evaluation error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for EvalError {}

type EvalResult<T> = Result<T, EvalError>;

fn err<T>(message: impl Into<String>, span: Span) -> EvalResult<T> {
    Err(EvalError {
        message: message.into(),
        span,
    })
}

/// A scalar or array evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalValue {
    Scalar(Value),
    Array(ArrayVal),
}

impl EvalValue {
    pub fn as_scalar(&self) -> Option<&Value> {
        match self {
            EvalValue::Scalar(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&ArrayVal> {
        match self {
            EvalValue::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// A variable binding.
#[derive(Debug, Clone)]
enum Binding {
    Scalar(Value),
    Array(ArrayVal),
}

/// Outcome of a completed run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Lines produced by PRINT statements.
    pub output: Vec<String>,
    /// Dynamic statement statistics.
    pub profile: ExecutionProfile,
    /// Final values of all scalar variables (inspection hook for tests).
    pub scalars: BTreeMap<String, Value>,
}

/// Run the functional interpreter over an analyzed program.
pub fn run(analyzed: &AnalyzedProgram) -> EvalResult<RunOutcome> {
    run_with_limit(analyzed, 500_000_000)
}

/// Run with an explicit step budget (guards non-terminating DO WHILE loops).
pub fn run_with_limit(analyzed: &AnalyzedProgram, step_limit: u64) -> EvalResult<RunOutcome> {
    let mut ev = Evaluator {
        env: BTreeMap::new(),
        analyzed,
        profile: ExecutionProfile::default(),
        output: Vec::new(),
        steps: 0,
        step_limit,
        stopped: false,
    };
    ev.init_storage();
    for st in &analyzed.program.body {
        if ev.stopped {
            break;
        }
        ev.exec_stmt(st, &BTreeMap::new())?;
    }
    let scalars = ev
        .env
        .iter()
        .filter_map(|(k, b)| match b {
            Binding::Scalar(v) => Some((k.clone(), v.clone())),
            _ => None,
        })
        .collect();
    Ok(RunOutcome {
        output: ev.output,
        profile: ev.profile,
        scalars,
    })
}

struct Evaluator<'a> {
    env: BTreeMap<String, Binding>,
    analyzed: &'a AnalyzedProgram,
    profile: ExecutionProfile,
    output: Vec<String>,
    steps: u64,
    step_limit: u64,
    stopped: bool,
}

/// Forall/implied-do index bindings active during expression evaluation.
type IndexEnv = BTreeMap<String, i64>;

/// Bounds metadata of an array (no element storage) — lets subscript
/// machinery run without borrowing or cloning the array data.
struct ArrayMeta {
    lbounds: Vec<i64>,
    extents: Vec<usize>,
}

impl ArrayMeta {
    fn rank(&self) -> usize {
        self.extents.len()
    }

    fn len(&self) -> usize {
        self.extents.iter().product()
    }

    fn offset(&self, idx: &[i64]) -> Option<usize> {
        if idx.len() != self.rank() {
            return None;
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for (d, &i) in idx.iter().enumerate() {
            let rel = i - self.lbounds[d];
            if rel < 0 || rel as usize >= self.extents[d] {
                return None;
            }
            off += rel as usize * stride;
            stride *= self.extents[d];
        }
        Some(off)
    }
}

impl<'a> Evaluator<'a> {
    fn init_storage(&mut self) {
        for (name, sym) in &self.analyzed.symbols {
            match &sym.kind {
                SymbolKind::Scalar => {
                    let v = match sym.ty {
                        TypeSpec::Integer => Value::Int(0),
                        TypeSpec::Logical => Value::Logical(false),
                        _ => Value::Real(0.0),
                    };
                    self.env.insert(name.clone(), Binding::Scalar(v));
                }
                SymbolKind::Array { shape } => {
                    self.env.insert(
                        name.clone(),
                        Binding::Array(ArrayVal::zeroed(shape, sym.ty)),
                    );
                }
                _ => {}
            }
        }
    }

    fn tick(&mut self, n: u64, span: Span) -> EvalResult<()> {
        self.steps += n;
        self.profile.total_steps += n;
        if self.steps > self.step_limit {
            err("step limit exceeded (non-terminating loop?)", span)
        } else {
            Ok(())
        }
    }

    // ---- statements ------------------------------------------------------

    fn exec_stmt(&mut self, st: &Stmt, idx: &IndexEnv) -> EvalResult<()> {
        if self.stopped {
            return Ok(());
        }
        self.profile.entry(st.span()).executions += 1;
        match st {
            Stmt::Assign { lhs, rhs, span } => {
                let v = self.eval_expr(rhs, idx)?;
                self.assign(lhs, v, idx, *span)
            }
            Stmt::Forall { header, body, span } => self.exec_forall(header, body, idx, *span),
            Stmt::Where {
                mask,
                body,
                elsewhere,
                span,
            } => self.exec_where(mask, body, elsewhere, idx, *span),
            Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
                span,
            } => {
                let lo = self.eval_int(lo, idx)?;
                let hi = self.eval_int(hi, idx)?;
                let step = match step {
                    Some(s) => self.eval_int(s, idx)?,
                    None => 1,
                };
                if step == 0 {
                    return err("DO step of zero", *span);
                }
                let mut i = lo;
                loop {
                    let done = if step > 0 { i > hi } else { i < hi };
                    if done || self.stopped {
                        break;
                    }
                    self.tick(1, *span)?;
                    self.profile.entry(*span).iterations += 1;
                    self.env.insert(var.clone(), Binding::Scalar(Value::Int(i)));
                    for s in body {
                        self.exec_stmt(s, idx)?;
                    }
                    // Loop variable may be modified inside in full Fortran;
                    // our subset forbids it, so re-read is unnecessary.
                    i += step;
                }
                Ok(())
            }
            Stmt::DoWhile { cond, body, span } => {
                loop {
                    if self.stopped {
                        break;
                    }
                    let c = self.eval_expr(cond, idx)?;
                    let c = match c {
                        EvalValue::Scalar(Value::Logical(b)) => b,
                        _ => return err("DO WHILE condition must be scalar LOGICAL", *span),
                    };
                    if !c {
                        break;
                    }
                    self.tick(1, *span)?;
                    self.profile.entry(*span).iterations += 1;
                    for s in body {
                        self.exec_stmt(s, idx)?;
                    }
                }
                Ok(())
            }
            Stmt::If {
                arms,
                else_body,
                span,
            } => {
                for (cond, body) in arms {
                    let c = self.eval_expr(cond, idx)?;
                    match c {
                        EvalValue::Scalar(Value::Logical(true)) => {
                            self.profile.entry(*span).mask_true += 1;
                            self.profile.entry(*span).mask_total += 1;
                            for s in body {
                                self.exec_stmt(s, idx)?;
                            }
                            return Ok(());
                        }
                        EvalValue::Scalar(Value::Logical(false)) => {
                            self.profile.entry(*span).mask_total += 1;
                        }
                        _ => return err("IF condition must be scalar LOGICAL", *span),
                    }
                }
                for s in else_body {
                    self.exec_stmt(s, idx)?;
                }
                Ok(())
            }
            Stmt::Call { name, span, .. } => {
                // The subset has no user procedures; CALL is accepted by the
                // parser for completeness but has no executable semantics.
                err(
                    format!("CALL to `{name}` — user procedures are outside the subset"),
                    *span,
                )
            }
            Stmt::Print { items, span } => {
                let mut line = String::new();
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        line.push(' ');
                    }
                    match self.eval_expr(e, idx)? {
                        EvalValue::Scalar(v) => line.push_str(&v.to_string()),
                        EvalValue::Array(a) => {
                            for (j, v) in a.data.iter().enumerate() {
                                if j > 0 {
                                    line.push(' ');
                                }
                                line.push_str(&v.to_string());
                            }
                        }
                    }
                }
                self.tick(1, *span)?;
                self.output.push(line);
                Ok(())
            }
            Stmt::Stop { .. } => {
                self.stopped = true;
                Ok(())
            }
            // Parallel I/O moves data between memory and the striped file
            // system; the functional semantics of the program are unchanged,
            // so evaluation treats it as a (counted) no-op.
            Stmt::Io { span, .. } => {
                self.tick(1, *span)?;
                Ok(())
            }
        }
    }

    /// FORALL semantics: for *each body statement in order*, evaluate all
    /// right-hand sides over the active index set, then commit all
    /// assignments (Fortran 90D/HPF definition — "all the right-hand sides
    /// being evaluated before any left-hand sides are assigned").
    fn exec_forall(
        &mut self,
        header: &ForallHeader,
        body: &[Stmt],
        outer: &IndexEnv,
        span: Span,
    ) -> EvalResult<()> {
        // Resolve the index ranges. HPF evaluates all triplet bounds before
        // any index takes a value, so bounds may reference *enclosing*
        // forall indices (via `outer`) but not sibling triplets.
        struct Range {
            var: String,
            lo: i64,
            count: i64,
            step: i64,
        }
        let mut ranges: Vec<Range> = Vec::with_capacity(header.triplets.len());
        for t in &header.triplets {
            let lo = self.eval_int_in(&t.lo, outer)?;
            let hi = self.eval_int_in(&t.hi, outer)?;
            let step = match &t.stride {
                Some(s) => self.eval_int_in(s, outer)?,
                None => 1,
            };
            if step == 0 {
                return err("FORALL stride of zero", span);
            }
            let count = ((hi - lo) / step + 1).max(0);
            ranges.push(Range {
                var: t.var.clone(),
                lo,
                count,
                step,
            });
        }
        let total: i64 = ranges.iter().map(|r| r.count).product();
        self.tick(total.max(0) as u64, span)?;

        // Enumerate active tuples once (mask applied), reusing one env.
        let mut env = outer.clone();
        let mut active: Vec<Vec<i64>> = Vec::new();
        let mut counters = vec![0i64; ranges.len()];
        let mut mask_true = 0u64;
        for _ in 0..total.max(0) {
            let mut vals = Vec::with_capacity(ranges.len());
            for (r, &c) in ranges.iter().zip(&counters) {
                let v = r.lo + c * r.step;
                env.insert(r.var.clone(), v);
                vals.push(v);
            }
            let keep = match &header.mask {
                None => true,
                Some(m) => match self.eval_expr(m, &env)? {
                    EvalValue::Scalar(Value::Logical(b)) => {
                        if b {
                            mask_true += 1;
                        }
                        b
                    }
                    _ => return err("FORALL mask must be scalar LOGICAL", span),
                },
            };
            if keep {
                active.push(vals);
            }
            // odometer, first triplet fastest
            for d in 0..counters.len() {
                counters[d] += 1;
                if counters[d] < ranges[d].count {
                    break;
                }
                counters[d] = 0;
            }
        }
        if header.mask.is_some() {
            let st = self.profile.entry(span);
            st.mask_total += total.max(0) as u64;
            st.mask_true += mask_true;
        }
        self.profile.entry(span).iterations += active.len() as u64;

        let bind = |env: &mut IndexEnv, ranges: &[Range], vals: &[i64]| {
            for (r, &v) in ranges.iter().zip(vals) {
                env.insert(r.var.clone(), v);
            }
        };

        for st in body {
            match st {
                Stmt::Assign {
                    lhs,
                    rhs,
                    span: sspan,
                } => {
                    // Two-pass: gather (location, value), then commit.
                    let mut updates: Vec<(Vec<i64>, Value)> = Vec::with_capacity(active.len());
                    for vals in &active {
                        bind(&mut env, &ranges, vals);
                        let v = self.eval_expr(rhs, &env)?;
                        let v = match v {
                            EvalValue::Scalar(v) => v,
                            EvalValue::Array(_) => {
                                return err(
                                    "array-valued RHS inside FORALL body is outside the subset",
                                    *sspan,
                                )
                            }
                        };
                        let idx_vals = self.element_index(lhs, &env)?;
                        updates.push((idx_vals, v));
                    }
                    for (idx_vals, v) in updates {
                        self.store_element(&lhs.name, &idx_vals, v, *sspan)?;
                    }
                }
                Stmt::Forall {
                    header: h2,
                    body: b2,
                    span: s2,
                } => {
                    // Nested forall: execute per active tuple.
                    for vals in &active {
                        bind(&mut env, &ranges, vals);
                        let inner = env.clone();
                        self.exec_forall(h2, b2, &inner, *s2)?;
                    }
                }
                other => {
                    return err(
                        "only assignments and nested FORALLs are allowed in a FORALL body",
                        other.span(),
                    )
                }
            }
        }
        Ok(())
    }

    fn exec_where(
        &mut self,
        mask: &Expr,
        body: &[Stmt],
        elsewhere: &[Stmt],
        idx: &IndexEnv,
        span: Span,
    ) -> EvalResult<()> {
        let m = match self.eval_expr(mask, idx)? {
            EvalValue::Array(a) => a,
            EvalValue::Scalar(_) => return err("WHERE mask must be an array", span),
        };
        let trues = m.data.iter().filter(|v| v.truthy()).count() as u64;
        self.profile.entry(span).mask_total += m.len() as u64;
        self.profile.entry(span).mask_true += trues;
        self.tick(m.len() as u64, span)?;

        // Each body statement must be a conformable array assignment.
        for (stmts, negate) in [(body, false), (elsewhere, true)] {
            for st in stmts {
                match st {
                    Stmt::Assign {
                        lhs,
                        rhs,
                        span: sspan,
                    } => {
                        let rhs_v = self.eval_expr(rhs, idx)?;
                        let cur = match self.env.get(&lhs.name) {
                            Some(Binding::Array(a)) => a.clone(),
                            _ => return err("WHERE assignment target must be an array", *sspan),
                        };
                        if !lhs.subs.is_empty() {
                            return err(
                                "sections on WHERE assignment targets are outside the subset",
                                *sspan,
                            );
                        }
                        let mut newv = cur.clone();
                        for off in 0..cur.len() {
                            let active = m.data[off].truthy() != negate;
                            if !active {
                                continue;
                            }
                            let v = match &rhs_v {
                                EvalValue::Scalar(v) => v.clone(),
                                EvalValue::Array(a) => {
                                    if !a.conformable(&cur) {
                                        return err("WHERE operands not conformable", *sspan);
                                    }
                                    a.data[off].clone()
                                }
                            };
                            newv.data[off] = v;
                        }
                        self.env.insert(lhs.name.clone(), Binding::Array(newv));
                    }
                    other => return err("WHERE body must contain only assignments", other.span()),
                }
            }
        }
        Ok(())
    }

    // ---- assignment --------------------------------------------------------

    fn assign(
        &mut self,
        lhs: &DataRef,
        v: EvalValue,
        idx: &IndexEnv,
        span: Span,
    ) -> EvalResult<()> {
        let is_array = matches!(self.env.get(&lhs.name), Some(Binding::Array(_)));
        if !is_array {
            if !lhs.subs.is_empty() {
                return err(format!("`{}` is not an array", lhs.name), span);
            }
            let v = match v {
                EvalValue::Scalar(v) => v,
                EvalValue::Array(_) => return err("cannot assign array to scalar", span),
            };
            let v = self.coerce_to_symbol_type(&lhs.name, v);
            self.tick(1, span)?;
            self.env.insert(lhs.name.clone(), Binding::Scalar(v));
            return Ok(());
        }
        if lhs.subs.iter().all(|s| s.is_index()) && !lhs.subs.is_empty() {
            // Element assignment.
            let idx_vals = self.element_index(lhs, idx)?;
            let v = match v {
                EvalValue::Scalar(v) => v,
                EvalValue::Array(_) => return err("cannot assign array to array element", span),
            };
            self.tick(1, span)?;
            return self.store_element(&lhs.name, &idx_vals, v, span);
        }
        // Whole-array or section assignment, written in place.
        let Some(meta) = self.array_meta(&lhs.name) else {
            return err(format!("`{}` is not an array", lhs.name), span);
        };
        let (offsets, sec_extents) = self.section_offsets(&meta, lhs, idx, span)?;
        self.tick(offsets.len() as u64, span)?;
        let ty = self.analyzed.symbols.get(&lhs.name).map(|s| s.ty);
        let coerce = |v: Value| match ty {
            Some(TypeSpec::Integer) => Value::Int(v.as_i64().unwrap_or(0)),
            Some(TypeSpec::Real | TypeSpec::DoublePrecision) => {
                Value::Real(v.as_f64().unwrap_or(0.0))
            }
            _ => v,
        };
        let target = match self.env.get_mut(&lhs.name) {
            Some(Binding::Array(a)) => a,
            _ => unreachable!("checked above"),
        };
        match v {
            EvalValue::Scalar(v) => {
                for &off in &offsets {
                    target.data[off] = coerce(v.clone());
                }
            }
            EvalValue::Array(a) => {
                let n: usize = sec_extents.iter().product();
                if a.len() != n {
                    return err(
                        format!(
                            "shape mismatch in assignment: section has {n} elements, RHS has {}",
                            a.len()
                        ),
                        span,
                    );
                }
                for (k, &off) in offsets.iter().enumerate() {
                    target.data[off] = coerce(a.data[k].clone());
                }
            }
        }
        Ok(())
    }

    fn coerce_to_symbol_type(&self, name: &str, v: Value) -> Value {
        match self.analyzed.symbols.get(name).map(|s| s.ty) {
            Some(TypeSpec::Integer) => Value::Int(v.as_i64().unwrap_or(0)),
            Some(TypeSpec::Real | TypeSpec::DoublePrecision) => {
                Value::Real(v.as_f64().unwrap_or(0.0))
            }
            _ => v,
        }
    }

    fn store_element(
        &mut self,
        name: &str,
        idx_vals: &[i64],
        v: Value,
        span: Span,
    ) -> EvalResult<()> {
        let v = self.coerce_to_symbol_type(name, v);
        match self.env.get_mut(name) {
            Some(Binding::Array(a)) => {
                if a.set(idx_vals, v) {
                    Ok(())
                } else {
                    err(
                        format!("index {idx_vals:?} out of bounds for `{name}`"),
                        span,
                    )
                }
            }
            _ => err(format!("`{name}` is not an array"), span),
        }
    }

    /// Evaluate the (all-Index) subscripts of an element reference.
    fn element_index(&mut self, r: &DataRef, idx: &IndexEnv) -> EvalResult<Vec<i64>> {
        let mut out = Vec::with_capacity(r.subs.len());
        for s in &r.subs {
            match s {
                Subscript::Index(e) => out.push(self.eval_int_in(e, idx)?),
                Subscript::Triplet { .. } => {
                    return err("expected element subscript, found section", r.span)
                }
            }
        }
        Ok(out)
    }

    /// Compute the column-major linear offsets selected by a (possibly
    /// sectioned) reference, plus the section's extents.
    fn section_offsets(
        &mut self,
        arr: &ArrayMeta,
        r: &DataRef,
        idx: &IndexEnv,
        span: Span,
    ) -> EvalResult<(Vec<usize>, Vec<usize>)> {
        if r.subs.is_empty() {
            return Ok(((0..arr.len()).collect(), arr.extents.clone()));
        }
        if r.subs.len() != arr.rank() {
            return err(
                format!("rank mismatch: `{}` has rank {}", r.name, arr.rank()),
                span,
            );
        }
        // Per-dimension index lists.
        let mut dim_lists: Vec<Vec<i64>> = Vec::with_capacity(arr.rank());
        let mut sec_extents = Vec::new();
        for (d, s) in r.subs.iter().enumerate() {
            match s {
                Subscript::Index(e) => {
                    dim_lists.push(vec![self.eval_int_in(e, idx)?]);
                }
                Subscript::Triplet { lo, hi, stride } => {
                    let lb = arr.lbounds[d];
                    let ub = lb + arr.extents[d] as i64 - 1;
                    let lo = match lo {
                        Some(e) => self.eval_int_in(e, idx)?,
                        None => lb,
                    };
                    let hi = match hi {
                        Some(e) => self.eval_int_in(e, idx)?,
                        None => ub,
                    };
                    let step = match stride {
                        Some(e) => self.eval_int_in(e, idx)?,
                        None => 1,
                    };
                    if step == 0 {
                        return err("section stride of zero", span);
                    }
                    let mut list = Vec::new();
                    let mut i = lo;
                    loop {
                        let done = if step > 0 { i > hi } else { i < hi };
                        if done {
                            break;
                        }
                        list.push(i);
                        i += step;
                    }
                    sec_extents.push(list.len());
                    dim_lists.push(list);
                }
            }
        }
        if sec_extents.is_empty() {
            sec_extents.push(1); // pure element treated as 1-element section
        }
        // Cartesian product in column-major order (first dim varies fastest).
        let mut offsets = Vec::new();
        let total: usize = dim_lists.iter().map(|l| l.len()).product();
        let mut counters = vec![0usize; dim_lists.len()];
        for _ in 0..total {
            let mut index = Vec::with_capacity(dim_lists.len());
            for (d, c) in counters.iter().enumerate() {
                index.push(dim_lists[d][*c]);
            }
            match arr.offset(&index) {
                Some(o) => offsets.push(o),
                None => return err(format!("section index {index:?} out of bounds"), span),
            }
            // Increment odometer, first dimension fastest.
            for d in 0..counters.len() {
                counters[d] += 1;
                if counters[d] < dim_lists[d].len() {
                    break;
                }
                counters[d] = 0;
            }
        }
        Ok((offsets, sec_extents))
    }

    // ---- expressions --------------------------------------------------------

    fn eval_int(&mut self, e: &Expr, idx: &IndexEnv) -> EvalResult<i64> {
        self.eval_int_in(e, idx)
    }

    fn eval_int_in(&mut self, e: &Expr, idx: &IndexEnv) -> EvalResult<i64> {
        match self.eval_expr(e, idx)? {
            EvalValue::Scalar(v) => v.as_i64().ok_or_else(|| EvalError {
                message: "expected integer value".into(),
                span: e.span(),
            }),
            _ => err("expected scalar integer, found array", e.span()),
        }
    }

    fn eval_expr(&mut self, e: &Expr, idx: &IndexEnv) -> EvalResult<EvalValue> {
        self.tick(1, e.span())?;
        match e {
            Expr::IntLit(v, _) => Ok(EvalValue::Scalar(Value::Int(*v))),
            Expr::RealLit(v, _) => Ok(EvalValue::Scalar(Value::Real(*v))),
            Expr::LogicalLit(v, _) => Ok(EvalValue::Scalar(Value::Logical(*v))),
            Expr::StrLit(s, _) => Ok(EvalValue::Scalar(Value::Str(s.clone()))),
            Expr::Ref(r) => self.eval_ref(r, idx),
            Expr::Intrinsic { name, args, span } => self.eval_intrinsic(*name, args, idx, *span),
            Expr::Unary { op, operand, span } => {
                let v = self.eval_expr(operand, idx)?;
                match v {
                    EvalValue::Scalar(v) => value_ops::apply_unary(*op, &v)
                        .map(EvalValue::Scalar)
                        .ok_or_else(|| EvalError {
                            message: "bad operand for unary operator".into(),
                            span: *span,
                        }),
                    EvalValue::Array(mut a) => {
                        self.tick(a.len() as u64, *span)?;
                        for v in &mut a.data {
                            *v = value_ops::apply_unary(*op, v).ok_or_else(|| EvalError {
                                message: "bad array operand for unary operator".into(),
                                span: *span,
                            })?;
                        }
                        Ok(EvalValue::Array(a))
                    }
                }
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let l = self.eval_expr(lhs, idx)?;
                let r = self.eval_expr(rhs, idx)?;
                self.apply_binary_elemental(*op, l, r, *span)
            }
        }
    }

    fn apply_binary_elemental(
        &mut self,
        op: BinOp,
        l: EvalValue,
        r: EvalValue,
        span: Span,
    ) -> EvalResult<EvalValue> {
        use EvalValue::*;
        match (l, r) {
            (Scalar(a), Scalar(b)) => {
                value_ops::apply_binary(op, &a, &b)
                    .map(Scalar)
                    .ok_or_else(|| EvalError {
                        message: "bad operands".into(),
                        span,
                    })
            }
            (Array(a), Scalar(b)) => {
                self.tick(a.len() as u64, span)?;
                let mut out = a.clone();
                for (o, v) in out.data.iter_mut().zip(&a.data) {
                    *o = value_ops::apply_binary(op, v, &b).ok_or_else(|| EvalError {
                        message: "bad operands".into(),
                        span,
                    })?;
                }
                Ok(Array(out))
            }
            (Scalar(a), Array(b)) => {
                self.tick(b.len() as u64, span)?;
                let mut out = b.clone();
                for (o, v) in out.data.iter_mut().zip(&b.data) {
                    *o = value_ops::apply_binary(op, &a, v).ok_or_else(|| EvalError {
                        message: "bad operands".into(),
                        span,
                    })?;
                }
                Ok(Array(out))
            }
            (Array(a), Array(b)) => {
                if !a.conformable(&b) {
                    return err("operands not conformable", span);
                }
                self.tick(a.len() as u64, span)?;
                let mut out = a.clone();
                for ((o, x), y) in out.data.iter_mut().zip(&a.data).zip(&b.data) {
                    *o = value_ops::apply_binary(op, x, y).ok_or_else(|| EvalError {
                        message: "bad operands".into(),
                        span,
                    })?;
                }
                Ok(Array(out))
            }
        }
    }

    fn eval_ref(&mut self, r: &DataRef, idx: &IndexEnv) -> EvalResult<EvalValue> {
        // forall / implied-do dummies shadow the environment.
        if r.subs.is_empty() {
            if let Some(v) = idx.get(&r.name) {
                return Ok(EvalValue::Scalar(Value::Int(*v)));
            }
            // Named constants live in the symbol table, not the store.
            if let Some(SymbolKind::Parameter { value }) =
                self.analyzed.symbols.get(&r.name).map(|s| &s.kind)
            {
                return Ok(EvalValue::Scalar(value.clone()));
            }
        }
        // Fast paths avoid cloning array storage: indices are evaluated
        // first (which may tick), then the store is borrowed immutably.
        match self.env.get(&r.name) {
            Some(Binding::Scalar(_)) => {
                if !r.subs.is_empty() {
                    return err(format!("`{}` is not an array", r.name), r.span);
                }
                match self.env.get(&r.name) {
                    Some(Binding::Scalar(v)) => Ok(EvalValue::Scalar(v.clone())),
                    _ => unreachable!("checked above"),
                }
            }
            Some(Binding::Array(_)) => {
                if r.subs.is_empty() {
                    match self.env.get(&r.name) {
                        Some(Binding::Array(a)) => return Ok(EvalValue::Array(a.clone())),
                        _ => unreachable!(),
                    }
                }
                if r.subs.iter().all(|s| s.is_index()) {
                    let iv = self.element_index(r, idx)?;
                    match self.env.get(&r.name) {
                        Some(Binding::Array(a)) => match a.get(&iv) {
                            Some(v) => Ok(EvalValue::Scalar(v.clone())),
                            None => err(
                                format!("index {iv:?} out of bounds for `{}`", r.name),
                                r.span,
                            ),
                        },
                        _ => unreachable!(),
                    }
                } else {
                    let Some(meta) = self.array_meta(&r.name) else {
                        return err(format!("`{}` is not an array", r.name), r.span);
                    };
                    let (offsets, sec_extents) = self.section_offsets(&meta, r, idx, r.span)?;
                    self.tick(offsets.len() as u64, r.span)?;
                    let a = match self.env.get(&r.name) {
                        Some(Binding::Array(a)) => a,
                        _ => unreachable!(),
                    };
                    let data: Vec<Value> = offsets.iter().map(|&o| a.data[o].clone()).collect();
                    // Rank of the section = number of triplet subscripts.
                    let extents = if sec_extents.is_empty() {
                        vec![data.len()]
                    } else {
                        sec_extents
                    };
                    Ok(EvalValue::Array(ArrayVal {
                        lbounds: vec![1; extents.len()],
                        extents,
                        data,
                    }))
                }
            }
            None => err(format!("undefined variable `{}`", r.name), r.span),
        }
    }

    /// Cheap copy of an array's bounds metadata (no element data).
    fn array_meta(&self, name: &str) -> Option<ArrayMeta> {
        match self.env.get(name) {
            Some(Binding::Array(a)) => Some(ArrayMeta {
                lbounds: a.lbounds.clone(),
                extents: a.extents.clone(),
            }),
            _ => None,
        }
    }

    fn eval_intrinsic(
        &mut self,
        name: Intrinsic,
        args: &[Expr],
        idx: &IndexEnv,
        span: Span,
    ) -> EvalResult<EvalValue> {
        use Intrinsic::*;
        let vals: Vec<EvalValue> = args
            .iter()
            .map(|a| self.eval_expr(a, idx))
            .collect::<EvalResult<_>>()?;

        // Transformational (array) intrinsics.
        match name {
            CShift | TShift | EoShift => {
                let a = vals
                    .first()
                    .and_then(|v| v.as_array())
                    .ok_or_else(|| EvalError {
                        message: "shift of non-array".into(),
                        span,
                    })?;
                let shift = match vals
                    .get(1)
                    .and_then(|v| v.as_scalar())
                    .and_then(|v| v.as_i64())
                {
                    Some(s) => s,
                    None => return err("shift amount must be scalar integer", span),
                };
                let dim = match vals.get(2) {
                    Some(v) => v.as_scalar().and_then(|v| v.as_i64()).unwrap_or(1) as usize,
                    None => 1,
                };
                self.tick(a.len() as u64, span)?;
                let out = if name == CShift {
                    a.cshift(shift, dim)
                } else {
                    a.eoshift(shift, dim)
                };
                out.map(EvalValue::Array).ok_or_else(|| EvalError {
                    message: "bad shift dimension".into(),
                    span,
                })
            }
            Sum | Product | MaxVal | MinVal => {
                let a = vals
                    .first()
                    .and_then(|v| v.as_array())
                    .ok_or_else(|| EvalError {
                        message: "reduction of non-array".into(),
                        span,
                    })?;
                self.tick(a.len() as u64, span)?;
                let mut acc: Option<Value> = None;
                for v in &a.data {
                    acc = Some(match &acc {
                        None => v.clone(),
                        Some(cur) => {
                            let combined = match name {
                                Sum => value_ops::apply_binary(BinOp::Add, cur, v),
                                Product => value_ops::apply_binary(BinOp::Mul, cur, v),
                                MaxVal => value_ops::apply_intrinsic_scalar(
                                    Max,
                                    &[cur.clone(), v.clone()],
                                ),
                                MinVal => value_ops::apply_intrinsic_scalar(
                                    Min,
                                    &[cur.clone(), v.clone()],
                                ),
                                _ => unreachable!(),
                            };
                            combined.ok_or_else(|| EvalError {
                                message: "non-numeric reduction".into(),
                                span,
                            })?
                        }
                    });
                }
                let zero = match name {
                    Sum => Value::Real(0.0),
                    Product => Value::Real(1.0),
                    _ => Value::Real(f64::NEG_INFINITY),
                };
                Ok(EvalValue::Scalar(acc.unwrap_or(zero)))
            }
            MaxLoc | MinLoc => {
                let a = vals
                    .first()
                    .and_then(|v| v.as_array())
                    .ok_or_else(|| EvalError {
                        message: "maxloc of non-array".into(),
                        span,
                    })?;
                if a.rank() != 1 {
                    return err("MAXLOC/MINLOC restricted to rank-1 in the subset", span);
                }
                self.tick(a.len() as u64, span)?;
                let mut best: Option<(usize, f64)> = None;
                for (i, v) in a.data.iter().enumerate() {
                    let x = v.as_f64().ok_or_else(|| EvalError {
                        message: "non-numeric maxloc".into(),
                        span,
                    })?;
                    let better = match best {
                        None => true,
                        Some((_, b)) => {
                            if name == MaxLoc {
                                x > b
                            } else {
                                x < b
                            }
                        }
                    };
                    if better {
                        best = Some((i, x));
                    }
                }
                // Fortran returns a rank-1 result array; subset returns the
                // 1-based position as a scalar INTEGER for simplicity.
                Ok(EvalValue::Scalar(Value::Int(
                    best.map(|(i, _)| i as i64 + 1).unwrap_or(0),
                )))
            }
            DotProduct => {
                let a = vals.first().and_then(|v| v.as_array());
                let b = vals.get(1).and_then(|v| v.as_array());
                match (a, b) {
                    (Some(a), Some(b)) if a.conformable(b) => {
                        self.tick(2 * a.len() as u64, span)?;
                        let mut acc = 0.0f64;
                        for (x, y) in a.data.iter().zip(&b.data) {
                            acc += x.as_f64().unwrap_or(0.0) * y.as_f64().unwrap_or(0.0);
                        }
                        Ok(EvalValue::Scalar(Value::Real(acc)))
                    }
                    _ => err("DOT_PRODUCT of non-conformable arrays", span),
                }
            }
            Transpose => {
                let a = vals
                    .first()
                    .and_then(|v| v.as_array())
                    .ok_or_else(|| EvalError {
                        message: "transpose of non-array".into(),
                        span,
                    })?;
                self.tick(a.len() as u64, span)?;
                a.transpose()
                    .map(EvalValue::Array)
                    .ok_or_else(|| EvalError {
                        message: "TRANSPOSE needs rank 2".into(),
                        span,
                    })
            }
            MatMul => {
                let a = vals.first().and_then(|v| v.as_array());
                let b = vals.get(1).and_then(|v| v.as_array());
                match (a, b) {
                    (Some(a), Some(b)) if a.rank() == 2 && b.rank() == 2 => {
                        let (m, k) = (a.extents[0], a.extents[1]);
                        let (k2, n) = (b.extents[0], b.extents[1]);
                        if k != k2 {
                            return err("MATMUL inner dimensions disagree", span);
                        }
                        self.tick((m * n * k) as u64, span)?;
                        let mut out = ArrayVal {
                            lbounds: vec![1, 1],
                            extents: vec![m, n],
                            data: vec![Value::Real(0.0); m * n],
                        };
                        for j in 0..n {
                            for i in 0..m {
                                let mut acc = 0.0;
                                for p in 0..k {
                                    let x = a.data[i + p * m].as_f64().unwrap_or(0.0);
                                    let y = b.data[p + j * k].as_f64().unwrap_or(0.0);
                                    acc += x * y;
                                }
                                out.data[i + j * m] = Value::Real(acc);
                            }
                        }
                        Ok(EvalValue::Array(out))
                    }
                    _ => err("MATMUL needs two rank-2 arrays", span),
                }
            }
            Spread => err(
                "SPREAD is not supported by the functional interpreter",
                span,
            ),
            Size => {
                let a = vals
                    .first()
                    .and_then(|v| v.as_array())
                    .ok_or_else(|| EvalError {
                        message: "SIZE of non-array".into(),
                        span,
                    })?;
                match vals.get(1) {
                    None => Ok(EvalValue::Scalar(Value::Int(a.len() as i64))),
                    Some(d) => {
                        let d = d.as_scalar().and_then(|v| v.as_i64()).unwrap_or(1) as usize;
                        if d == 0 || d > a.rank() {
                            return err("SIZE dim out of range", span);
                        }
                        Ok(EvalValue::Scalar(Value::Int(a.extents[d - 1] as i64)))
                    }
                }
            }
            // Elemental intrinsics: map over arrays, apply to scalars.
            _ => {
                let any_array = vals.iter().any(|v| matches!(v, EvalValue::Array(_)));
                if !any_array {
                    let scalars: Vec<Value> =
                        vals.iter().filter_map(|v| v.as_scalar().cloned()).collect();
                    return value_ops::apply_intrinsic_scalar(name, &scalars)
                        .map(EvalValue::Scalar)
                        .ok_or_else(|| EvalError {
                            message: format!("bad arguments to {}", name.name()),
                            span,
                        });
                }
                // Elementwise with scalar broadcast.
                let Some(shape) = vals.iter().find_map(|v| v.as_array()).cloned() else {
                    return err(format!("bad arguments to {}", name.name()), span);
                };
                for v in &vals {
                    if let EvalValue::Array(a) = v {
                        if !a.conformable(&shape) {
                            return err("elemental intrinsic operands not conformable", span);
                        }
                    }
                }
                self.tick(shape.len() as u64, span)?;
                let mut out = shape.clone();
                for off in 0..shape.len() {
                    let scalars: Vec<Value> = vals
                        .iter()
                        .map(|v| match v {
                            EvalValue::Scalar(s) => s.clone(),
                            EvalValue::Array(a) => a.data[off].clone(),
                        })
                        .collect();
                    out.data[off] =
                        value_ops::apply_intrinsic_scalar(name, &scalars).ok_or_else(|| {
                            EvalError {
                                message: format!("bad arguments to {}", name.name()),
                                span,
                            }
                        })?;
                }
                Ok(EvalValue::Array(out))
            }
        }
    }
}
