//! # hpf-eval — functional interpreter for HPF/Fortran 90D
//!
//! Sequential, global-name-space, value-level execution of the front end's
//! AST. One of the three tools of the paper's application development
//! environment (compiler, functional interpreter, performance predictor).
//!
//! The [`eval::run`] entry point executes an analyzed program and returns a
//! [`profile::ExecutionProfile`] of dynamic behaviour (loop trips, mask
//! densities, branch outcomes) that the iPSC/860 simulator uses for its
//! ground-truth timing, plus all PRINT output and final scalar values for
//! semantics tests.

pub mod array;
pub mod eval;
pub mod profile;

pub use array::ArrayVal;
pub use eval::{run, run_with_limit, EvalError, EvalValue, RunOutcome};
pub use profile::{ExecutionProfile, StmtStats};

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_lang::{analyze, parse_program};
    use std::collections::BTreeMap;

    fn run_src(src: &str) -> RunOutcome {
        let p = parse_program(src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        run(&a).unwrap()
    }

    #[test]
    fn scalar_arithmetic() {
        let out = run_src("PROGRAM T\nREAL X\nX = 1.5 + 2.0 * 3.0\nEND\n");
        assert_eq!(out.scalars.get("X"), Some(&hpf_lang::Value::Real(7.5)));
    }

    #[test]
    fn whole_array_assignment_and_sum() {
        let out = run_src("PROGRAM T\nREAL A(10), S\nA = 2.0\nS = SUM(A)\nEND\n");
        assert_eq!(out.scalars.get("S"), Some(&hpf_lang::Value::Real(20.0)));
    }

    #[test]
    fn do_loop_accumulates() {
        let out = run_src(
            "PROGRAM T\nINTEGER K\nREAL S\nS = 0.0\nDO K = 1, 10\nS = S + K\nEND DO\nEND\n",
        );
        assert_eq!(out.scalars.get("S"), Some(&hpf_lang::Value::Real(55.0)));
    }

    #[test]
    fn do_loop_with_step() {
        let out =
            run_src("PROGRAM T\nINTEGER K, C\nC = 0\nDO K = 1, 10, 3\nC = C + 1\nEND DO\nEND\n");
        assert_eq!(out.scalars.get("C"), Some(&hpf_lang::Value::Int(4)));
    }

    #[test]
    fn forall_rhs_before_lhs() {
        // The paper's own example semantics: all RHS evaluated before any
        // LHS assigned. X(K+1) = X(K) + X(K-1) over K=2:4 must read the OLD
        // values of X.
        let out = run_src(
            "PROGRAM T
REAL X(5), S
X(1) = 1.0
X(2) = 1.0
X(3) = 1.0
X(4) = 1.0
X(5) = 1.0
FORALL (K = 2:4) X(K+1) = X(K) + X(K-1)
S = X(3) + X(4) + X(5)
END
",
        );
        // All three updates read old values (1+1=2): X(3)=X(4)=X(5)=2.
        assert_eq!(out.scalars.get("S"), Some(&hpf_lang::Value::Real(6.0)));
    }

    #[test]
    fn forall_with_mask() {
        let out = run_src(
            "PROGRAM T
REAL P(4), Q(4), S
Q(1) = 2.0
Q(2) = 0.0
Q(3) = 4.0
Q(4) = 0.0
FORALL (I = 1:4, Q(I) .NE. 0.0) P(I) = 1.0 / Q(I)
S = P(1) + P(2) + P(3) + P(4)
END
",
        );
        assert_eq!(out.scalars.get("S"), Some(&hpf_lang::Value::Real(0.75)));
    }

    #[test]
    fn mask_density_profiled() {
        let src = "PROGRAM T
REAL P(4), Q(4)
Q(1) = 2.0
Q(3) = 4.0
FORALL (I = 1:4, Q(I) .NE. 0.0) P(I) = 1.0
END
";
        let out = run_src(src);
        let stats = out
            .profile
            .iter()
            .map(|(_, s)| s)
            .find(|s| s.mask_total > 0)
            .expect("forall stats");
        assert_eq!(stats.mask_total, 4);
        assert_eq!(stats.mask_true, 2);
        assert_eq!(stats.mask_density(), 0.5);
    }

    #[test]
    fn where_and_elsewhere() {
        let out = run_src(
            "PROGRAM T
REAL A(4), S
A(1) = -1.0
A(2) = 2.0
A(3) = -3.0
A(4) = 4.0
WHERE (A > 0.0)
A = A * 10.0
ELSEWHERE
A = 0.0
END WHERE
S = SUM(A)
END
",
        );
        assert_eq!(out.scalars.get("S"), Some(&hpf_lang::Value::Real(60.0)));
    }

    #[test]
    fn array_sections() {
        let out = run_src(
            "PROGRAM T
REAL A(10), B(10), S
A = 1.0
B = 2.0
A(1:5) = B(6:10)
S = SUM(A)
END
",
        );
        assert_eq!(out.scalars.get("S"), Some(&hpf_lang::Value::Real(15.0)));
    }

    #[test]
    fn strided_section() {
        let out = run_src("PROGRAM T\nREAL A(10), S\nA = 1.0\nA(1:10:2) = 3.0\nS = SUM(A)\nEND\n");
        assert_eq!(out.scalars.get("S"), Some(&hpf_lang::Value::Real(20.0)));
    }

    #[test]
    fn cshift_semantics() {
        let out = run_src(
            "PROGRAM T
REAL A(4), B(4), S
A(1) = 1.0
A(2) = 2.0
A(3) = 3.0
A(4) = 4.0
B = CSHIFT(A, 1)
S = B(1) * 1000.0 + B(4)
END
",
        );
        // B = [2,3,4,1]
        assert_eq!(out.scalars.get("S"), Some(&hpf_lang::Value::Real(2001.0)));
    }

    #[test]
    fn dot_product_and_maxloc() {
        let out = run_src(
            "PROGRAM T
REAL A(3), B(3), D
INTEGER L
A(1) = 1.0
A(2) = 5.0
A(3) = 2.0
B = 2.0
D = DOT_PRODUCT(A, B)
L = MAXLOC(A)
END
",
        );
        assert_eq!(out.scalars.get("D"), Some(&hpf_lang::Value::Real(16.0)));
        assert_eq!(out.scalars.get("L"), Some(&hpf_lang::Value::Int(2)));
    }

    #[test]
    fn if_branches_profiled() {
        let out = run_src(
            "PROGRAM T
INTEGER K, P, Q
P = 0
Q = 0
DO K = 1, 10
IF (MOD(K, 2) == 0) THEN
P = P + 1
ELSE
Q = Q + 1
END IF
END DO
END
",
        );
        assert_eq!(out.scalars.get("P"), Some(&hpf_lang::Value::Int(5)));
        assert_eq!(out.scalars.get("Q"), Some(&hpf_lang::Value::Int(5)));
    }

    #[test]
    fn do_while_terminates() {
        let out =
            run_src("PROGRAM T\nINTEGER K\nK = 1\nDO WHILE (K < 100)\nK = K * 2\nEND DO\nEND\n");
        assert_eq!(out.scalars.get("K"), Some(&hpf_lang::Value::Int(128)));
    }

    #[test]
    fn step_limit_guards_infinite_loop() {
        let p =
            parse_program("PROGRAM T\nINTEGER K\nK = 1\nDO WHILE (K > 0)\nK = 2\nEND DO\nEND\n")
                .unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        assert!(run_with_limit(&a, 10_000).is_err());
    }

    #[test]
    fn out_of_bounds_is_error() {
        let p = parse_program("PROGRAM T\nREAL A(4)\nA(5) = 1.0\nEND\n").unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        assert!(run(&a).is_err());
    }

    #[test]
    fn print_output_collected() {
        let out = run_src("PROGRAM T\nREAL X\nX = 2.5\nPRINT *, X\nEND\n");
        assert_eq!(out.output, vec!["2.5".to_string()]);
    }

    #[test]
    fn stop_halts_execution() {
        let out = run_src("PROGRAM T\nREAL X\nX = 1.0\nSTOP\nX = 2.0\nEND\n");
        assert_eq!(out.scalars.get("X"), Some(&hpf_lang::Value::Real(1.0)));
    }

    #[test]
    fn integer_array_coercion() {
        let out = run_src("PROGRAM T\nINTEGER A(4), S\nA = 2.7\nS = SUM(A)\nEND\n");
        assert_eq!(out.scalars.get("S"), Some(&hpf_lang::Value::Int(8)));
    }

    #[test]
    fn two_dim_forall_transpose() {
        let out = run_src(
            "PROGRAM T
REAL A(3,3), B(3,3), S
FORALL (I = 1:3, J = 1:3) A(I,J) = I * 10.0 + J
FORALL (I = 1:3, J = 1:3) B(I,J) = A(J,I)
S = B(1,3)
END
",
        );
        assert_eq!(out.scalars.get("S"), Some(&hpf_lang::Value::Real(31.0)));
    }

    #[test]
    fn laplace_jacobi_converges_toward_boundary() {
        let out = run_src(
            "PROGRAM LAP
INTEGER, PARAMETER :: N = 8
REAL U(N,N), V(N,N)
INTEGER IT
U = 0.0
U(1:N, 1) = 100.0
DO IT = 1, 50
FORALL (I = 2:N-1, J = 2:N-1) V(I,J) = 0.25 * (U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))
U(2:N-1, 2:N-1) = V(2:N-1, 2:N-1)
END DO
X = U(4,2)
END
",
        );
        let x = out.scalars.get("X").unwrap().as_f64().unwrap();
        assert!(
            x > 10.0 && x < 100.0,
            "interior heated from boundary, got {x}"
        );
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use hpf_lang::{analyze, parse_program};
    use std::collections::BTreeMap;

    fn run_src(src: &str) -> RunOutcome {
        let p = parse_program(src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        run(&a).unwrap()
    }

    fn f(out: &RunOutcome, n: &str) -> f64 {
        out.scalars.get(n).and_then(|v| v.as_f64()).unwrap()
    }

    #[test]
    fn eoshift_fills_zero_at_ends() {
        let out =
            run_src("PROGRAM T\nREAL A(4), B(4), S\nA = 1.0\nB = EOSHIFT(A, 2)\nS = SUM(B)\nEND\n");
        assert_eq!(f(&out, "S"), 2.0);
    }

    #[test]
    fn maxval_minval() {
        let out = run_src(
            "PROGRAM T
REAL A(5), MX, MN
FORALL (I = 1:5) A(I) = (I - 3.0) * (I - 3.0)
MX = MAXVAL(A)
MN = MINVAL(A)
END
",
        );
        assert_eq!(f(&out, "MX"), 4.0);
        assert_eq!(f(&out, "MN"), 0.0);
    }

    #[test]
    fn transpose_assignment() {
        let out = run_src(
            "PROGRAM T
REAL A(2,3), B(3,2), S
FORALL (I = 1:2, J = 1:3) A(I,J) = I * 10.0 + J
B = TRANSPOSE(A)
S = B(3,2)
END
",
        );
        assert_eq!(f(&out, "S"), 23.0);
    }

    #[test]
    fn matmul_small() {
        let out = run_src(
            "PROGRAM T
REAL A(2,2), B(2,2), C(2,2), S
FORALL (I = 1:2, J = 1:2) A(I,J) = I * 1.0
FORALL (I = 1:2, J = 1:2) B(I,J) = J * 1.0
C = MATMUL(A, B)
S = C(2,2)
END
",
        );
        // row 2 of A = [2,2]; col 2 of B = [2,2] -> 8
        assert_eq!(f(&out, "S"), 8.0);
    }

    #[test]
    fn size_intrinsic() {
        let out = run_src(
            "PROGRAM T\nREAL A(3,5)\nINTEGER S1, S2, ST\nS1 = SIZE(A, 1)\nS2 = SIZE(A, 2)\nST = SIZE(A)\nEND\n",
        );
        assert_eq!(out.scalars.get("S1").unwrap().as_i64(), Some(3));
        assert_eq!(out.scalars.get("S2").unwrap().as_i64(), Some(5));
        assert_eq!(out.scalars.get("ST").unwrap().as_i64(), Some(15));
    }

    #[test]
    fn nested_forall_construct() {
        let out = run_src(
            "PROGRAM T
REAL A(4,4), S
FORALL (I = 1:4)
FORALL (J = 1:4) A(I,J) = I * 1.0
END FORALL
S = SUM(A)
END
",
        );
        assert_eq!(f(&out, "S"), 4.0 * (1.0 + 2.0 + 3.0 + 4.0));
    }

    #[test]
    fn forall_with_stride_and_mask() {
        let out = run_src(
            "PROGRAM T
REAL A(12), S
FORALL (I = 1:12:3, I .GT. 3) A(I) = 1.0
S = SUM(A)
END
",
        );
        // I in {1,4,7,10}, masked to {4,7,10}
        assert_eq!(f(&out, "S"), 3.0);
    }

    #[test]
    fn negative_stride_forall() {
        let out =
            run_src("PROGRAM T\nREAL A(8), S\nFORALL (I = 8:1:-2) A(I) = 1.0\nS = SUM(A)\nEND\n");
        assert_eq!(f(&out, "S"), 4.0);
    }

    #[test]
    fn elemental_intrinsic_over_array() {
        let out = run_src("PROGRAM T\nREAL A(4), B(4), S\nA = 4.0\nB = SQRT(A)\nS = SUM(B)\nEND\n");
        assert_eq!(f(&out, "S"), 8.0);
    }

    #[test]
    fn logical_array_mask_where() {
        let out = run_src(
            "PROGRAM T
REAL A(6), S
FORALL (I = 1:6) A(I) = I * 1.0
WHERE (A > 3.0) A = 0.0
S = SUM(A)
END
",
        );
        assert_eq!(f(&out, "S"), 6.0);
    }

    #[test]
    fn profile_counts_do_trips_per_execution() {
        let src = "PROGRAM T
INTEGER K, J
REAL X
DO K = 1, 3
DO J = 1, 5
X = X + 1.0
END DO
END DO
END
";
        let out = run_src(src);
        // inner DO reached 3 times, 5 trips each.
        let inner_line = src.lines().position(|l| l.starts_with("DO J")).unwrap() as u32 + 1;
        let st = out.profile.by_line(inner_line).unwrap();
        assert_eq!(st.executions, 3);
        assert_eq!(st.iterations, 15);
    }

    #[test]
    fn double_precision_arrays() {
        let out = run_src("PROGRAM T\nDOUBLE PRECISION A(4)\nREAL S\nA = 0.25\nS = SUM(A)\nEND\n");
        assert_eq!(f(&out, "S"), 1.0);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let p = parse_program("PROGRAM T\nREAL A(4), B(5)\nA = B\nEND\n").unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        assert!(run(&a).is_err());
    }

    #[test]
    fn section_of_section_error_paths() {
        // out-of-range section
        let p = parse_program("PROGRAM T\nREAL A(4), B(9)\nA(1:4) = B(3:9:2)\nEND\n").unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        assert!(run(&a).is_ok(), "4-element strided section conforms");
        let p = parse_program("PROGRAM T\nREAL A(4), B(9)\nA(1:4) = B(1:9:2)\nEND\n").unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        assert!(run(&a).is_err(), "5 elements into 4 must fail");
    }
}
