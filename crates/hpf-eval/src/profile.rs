//! Execution profile collected by the functional interpreter.
//!
//! The discrete-event simulator (the "measured" machine stand-in) consumes
//! this profile for data-dependent behaviour the static predictor can only
//! model heuristically: actual loop trip counts, forall mask densities, and
//! branch outcomes. This asymmetry — prediction from static resolution,
//! ground truth from actual execution — is what makes the reproduction's
//! prediction error an honest quantity rather than a tuned constant.

use hpf_lang::Span;
use std::collections::BTreeMap;

/// Per-statement dynamic statistics, keyed by the statement's span.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StmtStats {
    /// How many times the statement was reached.
    pub executions: u64,
    /// Total inner iterations (forall index-space points, DO trips).
    pub iterations: u64,
    /// Mask evaluations that were true (forall/where only).
    pub mask_true: u64,
    /// Total mask evaluations (forall/where only).
    pub mask_total: u64,
}

impl StmtStats {
    /// Observed mask selectivity in `[0, 1]`; 1 when no mask was present.
    pub fn mask_density(&self) -> f64 {
        if self.mask_total == 0 {
            1.0
        } else {
            self.mask_true as f64 / self.mask_total as f64
        }
    }
}

/// Profile of one functional-interpreter run.
#[derive(Debug, Clone, Default)]
pub struct ExecutionProfile {
    stats: BTreeMap<(u32, u32), StmtStats>,
    /// Total scalar operations evaluated (a work proxy / runaway guard).
    pub total_steps: u64,
}

impl ExecutionProfile {
    fn key(span: Span) -> (u32, u32) {
        (span.line, span.start)
    }

    pub fn entry(&mut self, span: Span) -> &mut StmtStats {
        self.stats.entry(Self::key(span)).or_default()
    }

    pub fn get(&self, span: Span) -> Option<&StmtStats> {
        self.stats.get(&Self::key(span))
    }

    /// Stats for a statement identified by source line (first match).
    pub fn by_line(&self, line: u32) -> Option<&StmtStats> {
        self.stats
            .iter()
            .find(|((l, _), _)| *l == line)
            .map(|(_, s)| s)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&(u32, u32), &StmtStats)> {
        self.stats.iter()
    }

    pub fn len(&self) -> usize {
        self.stats.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_density_defaults_to_one() {
        let s = StmtStats::default();
        assert_eq!(s.mask_density(), 1.0);
        let s = StmtStats {
            mask_true: 3,
            mask_total: 4,
            ..Default::default()
        };
        assert_eq!(s.mask_density(), 0.75);
    }

    #[test]
    fn profile_accumulates_by_span() {
        let mut p = ExecutionProfile::default();
        let sp = Span::new(0, 5, 3);
        p.entry(sp).executions += 1;
        p.entry(sp).executions += 1;
        assert_eq!(p.get(sp).unwrap().executions, 2);
        assert_eq!(p.by_line(3).unwrap().executions, 2);
        assert!(p.by_line(4).is_none());
    }
}
