//! # hpf-io — the parallel I/O subsystem model
//!
//! The paper's SAU parameter set includes an I/O component (§3.1), but the
//! original interpretation pipeline never priced an I/O phase: no AAU kind,
//! no kernel, no validation path exercised it. Following the ViPIOS design
//! (dedicated I/O server processes, stripe/data-locality mapping, two-phase
//! access), this crate makes parallel I/O a first-class cost dimension:
//!
//! * [`IoPhase`] — the array-section descriptor an I/O AAU carries
//!   (READ/WRITE/CHECKPOINT, total and per-node bytes, stripe factor,
//!   I/O-server count);
//! * [`phase_cost`] — the analytic striped-server cost model (per-server
//!   FIFO disk queues, stripe contention, network serialization at the
//!   server NIC, host↔cube commit channel for checkpoints), driven entirely
//!   by the machine's [`IoComponent`];
//! * [`phase_time_on`] — the calibrated entry point: uses the fitted
//!   per-(servers, participants) `α + β·m` model from the machine's
//!   [`machine::Calibration`] when an I/O characterization pass has run,
//!   falling back to the closed form;
//! * [`CheckpointSchedule`] — checkpoint/restart arithmetic that composes
//!   with the PR-1 `FaultPlan` experiments (run to failure, restart from the
//!   last checkpoint, re-execute lost work);
//! * [`IoError`] — typed validation errors (bad stripe factor, more servers
//!   than nodes, checkpoint of an unpartitioned array), surfaced as
//!   pipeline-stage `io` diagnostics rather than panics.
//!
//! Everything here is deterministic pure arithmetic: the DES in `ipsc-sim`
//! implements the same subsystem event-by-event, and the Table-2 style
//! accuracy comparison between the two is what `artifacts_io_accuracy.txt`
//! pins.

use machine::{CommComponent, IoComponent, MachineModel};
use serde::{Deserialize, Serialize};

/// Which I/O operation a phase performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// Read array sections from the striped file into distributed memory.
    Read,
    /// Write distributed array sections to the striped file.
    Write,
    /// Write a consistent snapshot plus a host-committed record, for
    /// restart.
    Checkpoint,
}

impl IoKind {
    pub fn label(&self) -> &'static str {
        match self {
            IoKind::Read => "read",
            IoKind::Write => "write",
            IoKind::Checkpoint => "checkpoint",
        }
    }
}

/// Program-level I/O configuration resolved at compile time. Zero values
/// mean "machine default": the phase descriptor keeps the zero and the
/// pricing side (interpreter / DES) substitutes the machine's
/// [`IoComponent`] table, so the same compiled program prices correctly on
/// every backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoConfig {
    /// Number of I/O servers to stripe across (0 = machine default).
    pub io_servers: usize,
    /// Stripe-unit multiplier: each striped request moves
    /// `stripe_factor × IoComponent::stripe_bytes` (0 = default of 1).
    pub stripe_factor: usize,
}

/// Largest stripe factor the subsystem accepts; beyond this a "stripe" is
/// just the whole file on one server and the knob is a footgun.
pub const MAX_STRIPE_FACTOR: usize = 4096;

impl IoConfig {
    /// Validate against the compiled node count. Returns the resolved
    /// `(io_servers, stripe_factor)` pair to embed in phase descriptors
    /// (`io_servers` may stay 0 = machine default).
    pub fn resolve(&self, nodes: usize) -> Result<(usize, usize), IoError> {
        if self.io_servers > nodes {
            return Err(IoError::ServersExceedNodes {
                servers: self.io_servers,
                nodes,
            });
        }
        let stripe = if self.stripe_factor == 0 {
            1
        } else {
            self.stripe_factor
        };
        if stripe > MAX_STRIPE_FACTOR {
            return Err(IoError::BadStripeFactor { got: stripe });
        }
        Ok((self.io_servers, stripe))
    }
}

/// The array-section descriptor an I/O AAU carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoPhase {
    pub kind: IoKind,
    /// Names of the arrays moved (checkpoints may snapshot several).
    pub arrays: Vec<String>,
    /// Total bytes across all participating nodes.
    pub total_bytes: u64,
    /// Worst-case bytes held by one compute node (its array section).
    pub bytes_per_node: u64,
    /// Compute nodes participating in the phase.
    pub participants: usize,
    /// I/O servers striped across (0 = machine default at pricing time).
    pub servers: usize,
    /// Stripe-unit multiplier (≥ 1).
    pub stripe_factor: usize,
}

impl IoPhase {
    /// Effective server count on `m`: an explicit compile-time count wins,
    /// otherwise the machine's table, clamped to the node count.
    pub fn resolved_servers(&self, io: &IoComponent, nodes: usize) -> usize {
        let s = if self.servers == 0 {
            io.io_servers
        } else {
            self.servers
        };
        s.clamp(1, nodes.max(1))
    }

    /// Short outline label, e.g. `read U 512KB srv=2 sf=1`.
    pub fn outline(&self) -> String {
        let kb = self.total_bytes as f64 / 1024.0;
        let srv = if self.servers == 0 {
            "auto".to_string()
        } else {
            self.servers.to_string()
        };
        format!(
            "{} {} {:.0}KB srv={} sf={}",
            self.kind.label(),
            self.arrays.join(","),
            kb,
            srv,
            self.stripe_factor
        )
    }
}

/// Typed validation errors of the I/O subsystem. These map to the pipeline
/// stage `io`: structured 400s from the service, spanned diagnostics from
/// the CLIs, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// Stripe factor outside `1..=MAX_STRIPE_FACTOR`.
    BadStripeFactor { got: usize },
    /// More I/O servers requested than compute nodes exist.
    ServersExceedNodes { servers: usize, nodes: usize },
    /// READ/WRITE/CHECKPOINT of an array with no distribution: a replicated
    /// (unpartitioned) array has no owner sections to stripe.
    UnpartitionedArray { array: String },
    /// The statement names an array the program never declared.
    UnknownArray { array: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::BadStripeFactor { got } => write!(
                f,
                "bad stripe factor {got}: must be between 1 and {MAX_STRIPE_FACTOR}"
            ),
            IoError::ServersExceedNodes { servers, nodes } => write!(
                f,
                "{servers} I/O servers requested but only {nodes} nodes are configured"
            ),
            IoError::UnpartitionedArray { array } => write!(
                f,
                "array {array} is replicated (unpartitioned): parallel I/O needs a distributed array"
            ),
            IoError::UnknownArray { array } => {
                write!(f, "I/O statement names undeclared array {array}")
            }
        }
    }
}

impl std::error::Error for IoError {}

/// Decomposed analytic cost of one I/O phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoCost {
    /// First-block latency before the disk/network pipeline fills.
    pub startup_s: f64,
    /// FIFO disk-queue busy time at the worst server.
    pub disk_s: f64,
    /// Network serialization at the worst server's NIC (striped block
    /// transfers over the routed network).
    pub network_s: f64,
    /// Compute-side packing plus checkpoint commit traffic on the
    /// host↔cube channel.
    pub overhead_s: f64,
}

impl IoCost {
    /// Phase wall time under the pipelined server model: block transfers
    /// and disk service overlap, so the slower resource gates, after the
    /// first block lands and before commit overheads.
    pub fn total(&self) -> f64 {
        self.startup_s + self.disk_s.max(self.network_s) + self.overhead_s
    }
}

/// Bytes of the host-committed checkpoint record, per array.
const COMMIT_RECORD_BYTES: u64 = 256;

/// Host↔cube commit cost of a checkpoint phase: the per-array commit record
/// serialized through the host channel plus the durability barrier. Shared
/// by the closed form, the calibrated path, and the DES so all three charge
/// the identical commit term.
pub fn checkpoint_commit_s(io: &IoComponent, comm: &CommComponent, phase: &IoPhase) -> f64 {
    let commit = COMMIT_RECORD_BYTES * phase.arrays.len().max(1) as u64;
    io.host_channel_time(commit) + comm.sync_overhead_s * phase.participants.max(1) as f64
}

/// Closed-form striped-server cost of `phase` on a machine with `nodes`
/// compute nodes, the given I/O subsystem, and the given network component.
///
/// Model: the file is striped round-robin over `S` servers in units of
/// `stripe_bytes × stripe_factor`. The worst server owns
/// `ceil(total/S)` bytes arriving (or leaving) as whole striped blocks,
/// each a routed message paying the α–β network cost serialized at the
/// server NIC, then a FIFO disk queue charging per-request latency plus
/// streaming bandwidth. Compute nodes pay software packing for their local
/// sections in parallel; checkpoints additionally serialize a commit record
/// per array over the host↔cube channel and resynchronize.
pub fn phase_cost(phase: &IoPhase, io: &IoComponent, comm: &CommComponent, nodes: usize) -> IoCost {
    let servers = phase.resolved_servers(io, nodes) as u64;
    let block = (io.stripe_bytes * phase.stripe_factor as u64).max(1);
    let server_bytes = phase.total_bytes.div_ceil(servers.max(1));
    let server_blocks = server_bytes.div_ceil(block).max(1);
    let last_block = server_bytes - (server_blocks - 1) * block.min(server_bytes);

    // Average routed distance between a compute node and its server on the
    // machine-independent closed form: half the log₂ diameter. The fitted
    // calibration absorbs each backend's real routing.
    let hops = ((nodes.max(2) as f64).log2() / 2.0).max(1.0);

    // One startup per block, serialized at the server side.
    let full_blocks = server_blocks - 1;
    let startup_of = |bytes: u64| {
        let lat = if bytes <= comm.short_threshold {
            comm.short_latency_s
        } else {
            comm.long_latency_s
        };
        lat + hops * comm.per_hop_s
    };
    let network_s = full_blocks as f64 * startup_of(block)
        + startup_of(last_block.max(1))
        + server_bytes as f64 * comm.per_byte_s;

    let disk_s = io.disk_service_time(server_blocks, server_bytes);

    // Pipeline fill: the first block must cross the network before any disk
    // service can start (reads mirror this: first disk request before any
    // transfer).
    let startup_s = startup_of(block.min(server_bytes.max(1)))
        + block.min(server_bytes) as f64 * comm.per_byte_s;

    // Compute-side packing runs in parallel across nodes.
    let mut overhead_s = comm.pack_time(phase.bytes_per_node);
    if phase.kind == IoKind::Checkpoint {
        // Two-phase commit of the checkpoint record through the host, plus
        // a barrier so every node agrees the snapshot is durable.
        overhead_s += checkpoint_commit_s(io, comm, phase);
    }

    IoCost {
        startup_s,
        disk_s,
        network_s,
        overhead_s,
    }
}

/// Calibrated phase time on a full machine model: the fitted
/// per-(servers, participants) piecewise model when an I/O characterization
/// pass has run, otherwise the closed form. Checkpoint commit overhead is
/// not byte-linear, so it is priced analytically on top of the fitted
/// transfer model either way.
pub fn phase_time_on(m: &MachineModel, phase: &IoPhase) -> f64 {
    let servers = phase.resolved_servers(&m.io, m.nodes);
    let commit_s = if phase.kind == IoKind::Checkpoint {
        checkpoint_commit_s(&m.io, &m.comm, phase)
    } else {
        0.0
    };
    // The characterization pass probes at stripe factor 1, so the fitted
    // model only applies there; tuned stripe factors fall through to the
    // closed form, which tracks them.
    if phase.stripe_factor <= 1 {
        if let Some(cal) = &m.calibration {
            if let Some(t) = cal.io_time(servers, phase.participants, phase.total_bytes) {
                return t + commit_s;
            }
        }
    }
    let mut cost = phase_cost(phase, &m.io, &m.comm, m.nodes);
    if phase.kind == IoKind::Checkpoint {
        // `phase_cost` already charged the commit; avoid double counting by
        // reporting the transfer part plus one commit.
        cost.overhead_s -= commit_s;
    }
    cost.total() + commit_s
}

/// Checkpoint/restart schedule arithmetic. All quantities are seconds of
/// the *same* clock (predicted or simulated — the caller supplies
/// consistently measured inputs, the schedule only does the bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointSchedule {
    /// Total useful work in the run.
    pub work_s: f64,
    /// Work executed between consecutive checkpoints.
    pub interval_s: f64,
    /// Cost of taking one checkpoint.
    pub checkpoint_s: f64,
    /// Cost of reading the last checkpoint back on restart.
    pub restart_s: f64,
}

impl CheckpointSchedule {
    /// Checkpoints taken in a failure-free run (none after the final work).
    pub fn checkpoints(&self) -> usize {
        if self.interval_s <= 0.0 || self.work_s <= 0.0 {
            return 0;
        }
        let n = (self.work_s / self.interval_s).ceil() as usize;
        n.saturating_sub(1)
    }

    /// Failure-free completion time: work plus checkpoint overhead.
    pub fn healthy_run_s(&self) -> f64 {
        self.work_s + self.checkpoints() as f64 * self.checkpoint_s
    }

    /// Completion time when one node fails after `fail_at_work_s` seconds
    /// of useful work: run to the failure, restart from the last durable
    /// checkpoint, re-execute the lost work, finish.
    pub fn run_with_failure_s(&self, fail_at_work_s: f64) -> f64 {
        let fail_at = fail_at_work_s.clamp(0.0, self.work_s);
        let interval = if self.interval_s > 0.0 {
            self.interval_s
        } else {
            return self.work_s + self.restart_s + fail_at; // no checkpoints: full rerun
        };
        let completed = (fail_at / interval).floor() * interval;
        let ckpts_before = (fail_at / interval).floor();
        let rework = fail_at - completed;
        // wall to failure + restart read + rework + remaining schedule
        fail_at
            + ckpts_before * self.checkpoint_s
            + self.restart_s
            + rework
            + (self.work_s - completed - rework)
            + (self.checkpoints() as f64 - ckpts_before).max(0.0) * self.checkpoint_s
    }

    /// Expected extra time a single failure costs, with the failure point
    /// uniform over the run: the restart read plus half an interval of lost
    /// work. Strictly monotone in `interval_s` — the property the
    /// FaultPlan × checkpoint composition test pins.
    pub fn expected_recovery_s(&self) -> f64 {
        if self.interval_s <= 0.0 {
            return self.restart_s + self.work_s / 2.0;
        }
        self.restart_s + self.interval_s.min(self.work_s) / 2.0
    }

    /// Expected completion time under one uniformly-placed failure.
    pub fn expected_run_with_failure_s(&self) -> f64 {
        self.healthy_run_s() + self.expected_recovery_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::ipsc860;

    fn phase(kind: IoKind, total: u64, nodes: usize) -> IoPhase {
        IoPhase {
            kind,
            arrays: vec!["U".into()],
            total_bytes: total,
            bytes_per_node: total / nodes as u64,
            participants: nodes,
            servers: 0,
            stripe_factor: 1,
        }
    }

    #[test]
    fn config_resolution_validates() {
        assert_eq!(IoConfig::default().resolve(8).unwrap(), (0, 1));
        assert_eq!(
            IoConfig {
                io_servers: 4,
                stripe_factor: 8
            }
            .resolve(8)
            .unwrap(),
            (4, 8)
        );
        assert!(matches!(
            IoConfig {
                io_servers: 16,
                stripe_factor: 1
            }
            .resolve(8),
            Err(IoError::ServersExceedNodes {
                servers: 16,
                nodes: 8
            })
        ));
        assert!(matches!(
            IoConfig {
                io_servers: 0,
                stripe_factor: 1 << 20
            }
            .resolve(8),
            Err(IoError::BadStripeFactor { .. })
        ));
    }

    #[test]
    fn cost_scales_with_bytes_and_servers() {
        let m = ipsc860(8);
        let small = phase_cost(&phase(IoKind::Write, 64 * 1024, 8), &m.io, &m.comm, 8).total();
        let big = phase_cost(&phase(IoKind::Write, 1024 * 1024, 8), &m.io, &m.comm, 8).total();
        assert!(big > 2.0 * small, "{big} vs {small}");

        let mut wide = phase(IoKind::Write, 1024 * 1024, 8);
        wide.servers = 8;
        let t_wide = phase_cost(&wide, &m.io, &m.comm, 8).total();
        let mut narrow = phase(IoKind::Write, 1024 * 1024, 8);
        narrow.servers = 1;
        let t_narrow = phase_cost(&narrow, &m.io, &m.comm, 8).total();
        assert!(
            t_wide < t_narrow,
            "more servers must be faster: {t_wide} vs {t_narrow}"
        );
    }

    #[test]
    fn larger_stripes_amortize_latency() {
        let m = ipsc860(8);
        let mut fine = phase(IoKind::Read, 1024 * 1024, 8);
        fine.stripe_factor = 1;
        let mut coarse = phase(IoKind::Read, 1024 * 1024, 8);
        coarse.stripe_factor = 16;
        let t_fine = phase_cost(&fine, &m.io, &m.comm, 8).total();
        let t_coarse = phase_cost(&coarse, &m.io, &m.comm, 8).total();
        assert!(t_coarse < t_fine, "{t_coarse} vs {t_fine}");
    }

    #[test]
    fn checkpoint_costs_more_than_write() {
        let m = ipsc860(8);
        let w = phase_cost(&phase(IoKind::Write, 256 * 1024, 8), &m.io, &m.comm, 8).total();
        let c = phase_cost(&phase(IoKind::Checkpoint, 256 * 1024, 8), &m.io, &m.comm, 8).total();
        assert!(c > w);
    }

    #[test]
    fn phase_time_on_uses_closed_form_without_calibration() {
        let m = ipsc860(8);
        let p = phase(IoKind::Write, 256 * 1024, 8);
        let t = phase_time_on(&m, &p);
        let cost = phase_cost(&p, &m.io, &m.comm, 8);
        assert!((t - cost.total()).abs() < 1e-12);
    }

    #[test]
    fn schedule_arithmetic() {
        let s = CheckpointSchedule {
            work_s: 10.0,
            interval_s: 2.0,
            checkpoint_s: 0.5,
            restart_s: 0.25,
        };
        assert_eq!(s.checkpoints(), 4);
        assert!((s.healthy_run_s() - 12.0).abs() < 1e-12);
        // failure at 5 s of work: 2 ckpts behind us, 1 s of rework
        let t = s.run_with_failure_s(5.0);
        assert!(t > s.healthy_run_s(), "failure must cost time: {t}");
        assert!((t - (s.healthy_run_s() + 0.25 + 1.0)).abs() < 1e-9, "{t}");
    }

    #[test]
    fn expected_recovery_monotone_in_interval() {
        let mut prev = 0.0;
        for interval in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let s = CheckpointSchedule {
                work_s: 10.0,
                interval_s: interval,
                checkpoint_s: 0.5,
                restart_s: 0.25,
            };
            let r = s.expected_recovery_s();
            assert!(r >= prev, "recovery must grow with interval: {r} < {prev}");
            prev = r;
        }
    }
}
