//! Abstract syntax tree for the HPF/Fortran 90D subset.
//!
//! The subset covers what the paper's framework handles (§2, §4.3): the
//! `forall` statement and construct, array assignment, `where`, `do` loops,
//! `if` constructs, scalar assignment, intrinsic calls, and the four HPF
//! mapping directives (`PROCESSORS`, `TEMPLATE`, `ALIGN`, `DISTRIBUTE`).

use crate::span::Span;

/// A complete HPF/Fortran 90D main program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name from `PROGRAM <name>`.
    pub name: String,
    /// Type declarations, in source order.
    pub decls: Vec<Decl>,
    /// HPF mapping directives, in source order.
    pub directives: Vec<Directive>,
    /// Executable statements, in source order.
    pub body: Vec<Stmt>,
    pub span: Span,
}

/// Fortran base types in the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeSpec {
    Integer,
    Real,
    DoublePrecision,
    Logical,
}

impl TypeSpec {
    /// Size in bytes of one element on the target (i860: 4-byte words,
    /// 8-byte doubles).
    pub fn byte_size(self) -> u64 {
        match self {
            TypeSpec::Integer | TypeSpec::Real | TypeSpec::Logical => 4,
            TypeSpec::DoublePrecision => 8,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            TypeSpec::Integer => "INTEGER",
            TypeSpec::Real => "REAL",
            TypeSpec::DoublePrecision => "DOUBLE PRECISION",
            TypeSpec::Logical => "LOGICAL",
        }
    }
}

/// One type-declaration statement, possibly declaring several entities.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    pub type_spec: TypeSpec,
    /// `PARAMETER` attribute: entities are compile-time constants.
    pub parameter: bool,
    /// `DIMENSION(...)` attribute shared by all entities (entity-specific
    /// dimensions override it).
    pub dimension: Option<Vec<DimBound>>,
    pub entities: Vec<EntityDecl>,
    pub span: Span,
}

/// One declared entity.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityDecl {
    pub name: String,
    /// Per-entity dimensions, e.g. `A(N, N)`.
    pub dims: Option<Vec<DimBound>>,
    /// Initializer (required for PARAMETER entities).
    pub init: Option<Expr>,
    pub span: Span,
}

/// One array dimension: `extent` is `ub` with implicit lower bound 1, or an
/// explicit `lb:ub` range.
#[derive(Debug, Clone, PartialEq)]
pub struct DimBound {
    pub lower: Option<Expr>,
    pub upper: Expr,
}

/// HPF mapping directives.
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// `!HPF$ PROCESSORS P(4)` or `!HPF$ PROCESSORS P(2,2)`.
    Processors {
        name: String,
        shape: Vec<Expr>,
        span: Span,
    },
    /// `!HPF$ TEMPLATE T(N, N)`.
    Template {
        name: String,
        shape: Vec<DimBound>,
        span: Span,
    },
    /// `!HPF$ ALIGN A(I, J) WITH T(I, J)` (identity or offset/transposed
    /// alignments through dummy-index expressions).
    Align {
        alignee: String,
        dummies: Vec<String>,
        target: String,
        target_subs: Vec<AlignSub>,
        span: Span,
    },
    /// `!HPF$ DISTRIBUTE T(BLOCK, *) ONTO P`.
    Distribute {
        target: String,
        formats: Vec<DistFormat>,
        onto: Option<String>,
        span: Span,
    },
    /// `!HPF$ INDEPENDENT` — asserts the following loop's iterations are
    /// independent (recorded; the subset's `forall` lowering already assumes
    /// owner-computes independence).
    Independent { span: Span },
}

impl Directive {
    pub fn span(&self) -> Span {
        match self {
            Directive::Processors { span, .. }
            | Directive::Template { span, .. }
            | Directive::Align { span, .. }
            | Directive::Distribute { span, .. }
            | Directive::Independent { span } => *span,
        }
    }
}

/// One subscript of the align target: a dummy index (possibly with an affine
/// offset, `I + 1`), or `*` (replication along that template axis).
#[derive(Debug, Clone, PartialEq)]
pub enum AlignSub {
    /// `dummy * stride + offset` — stride is ±1 in the subset.
    Affine {
        dummy: String,
        stride: i64,
        offset: i64,
    },
    /// `*`: the alignee is replicated along this template dimension.
    Replicated,
}

/// Distribution format per template dimension.
#[derive(Debug, Clone, PartialEq, Eq, Copy)]
pub enum DistFormat {
    /// Contiguous blocks of ⌈N/P⌉ elements.
    Block,
    /// Round-robin single elements.
    Cyclic,
    /// Block-cyclic: round-robin blocks of `k` elements (`CYCLIC(k)`).
    CyclicK(i64),
    /// `*`: dimension is not distributed (collapsed onto every processor).
    Degenerate,
}

impl DistFormat {
    pub fn name(self) -> &'static str {
        match self {
            DistFormat::Block => "BLOCK",
            DistFormat::Cyclic => "CYCLIC",
            DistFormat::CyclicK(_) => "CYCLIC(k)",
            DistFormat::Degenerate => "*",
        }
    }

    /// Render including the block factor.
    pub fn display(self) -> String {
        match self {
            DistFormat::CyclicK(k) => format!("CYCLIC({k})"),
            other => other.name().to_string(),
        }
    }
}

/// Executable statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Scalar or array(-section) assignment `lhs = rhs`.
    Assign { lhs: DataRef, rhs: Expr, span: Span },
    /// `FORALL (triplets [, mask]) body`.
    Forall {
        header: ForallHeader,
        body: Vec<Stmt>,
        span: Span,
    },
    /// `WHERE (mask) body [ELSEWHERE other]`.
    Where {
        mask: Expr,
        body: Vec<Stmt>,
        elsewhere: Vec<Stmt>,
        span: Span,
    },
    /// `DO var = lo, hi [, step] … END DO`.
    Do {
        var: String,
        lo: Expr,
        hi: Expr,
        step: Option<Expr>,
        body: Vec<Stmt>,
        span: Span,
    },
    /// `DO WHILE (cond) … END DO`.
    DoWhile {
        cond: Expr,
        body: Vec<Stmt>,
        span: Span,
    },
    /// `IF (cond) THEN … [ELSE IF …]* [ELSE …] END IF`, or logical IF.
    If {
        arms: Vec<(Expr, Vec<Stmt>)>,
        else_body: Vec<Stmt>,
        span: Span,
    },
    /// `CALL name(args)`.
    Call {
        name: String,
        args: Vec<Expr>,
        span: Span,
    },
    /// `PRINT *, items`.
    Print { items: Vec<Expr>, span: Span },
    /// `STOP`.
    Stop { span: Span },
    /// Parallel I/O statement: `READ(arrays)`, `WRITE(arrays)`, or
    /// `CHECKPOINT[(arrays)]` (a bare `CHECKPOINT` snapshots every
    /// distributed array). Arrays are whole-variable references; the striped
    /// transfer itself is priced by the performance pipeline, not evaluated.
    Io {
        kind: IoStmtKind,
        arrays: Vec<String>,
        span: Span,
    },
}

/// Which parallel I/O operation an [`Stmt::Io`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoStmtKind {
    Read,
    Write,
    Checkpoint,
}

impl IoStmtKind {
    pub fn keyword(self) -> &'static str {
        match self {
            IoStmtKind::Read => "READ",
            IoStmtKind::Write => "WRITE",
            IoStmtKind::Checkpoint => "CHECKPOINT",
        }
    }
}

impl Stmt {
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::Forall { span, .. }
            | Stmt::Where { span, .. }
            | Stmt::Do { span, .. }
            | Stmt::DoWhile { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Call { span, .. }
            | Stmt::Print { span, .. }
            | Stmt::Io { span, .. }
            | Stmt::Stop { span } => *span,
        }
    }
}

/// The parenthesized part of a `forall`: index triplets plus optional mask.
#[derive(Debug, Clone, PartialEq)]
pub struct ForallHeader {
    pub triplets: Vec<ForallTriplet>,
    pub mask: Option<Expr>,
}

/// `I = lo : hi [: stride]` inside a forall header.
#[derive(Debug, Clone, PartialEq)]
pub struct ForallTriplet {
    pub var: String,
    pub lo: Expr,
    pub hi: Expr,
    pub stride: Option<Expr>,
}

/// A (possibly subscripted) variable reference usable as an lvalue.
#[derive(Debug, Clone, PartialEq)]
pub struct DataRef {
    pub name: String,
    /// Empty for whole-variable references (`X` — scalar or whole array).
    pub subs: Vec<Subscript>,
    pub span: Span,
}

/// One subscript position.
#[derive(Debug, Clone, PartialEq)]
pub enum Subscript {
    /// A single element index.
    Index(Expr),
    /// A section `lo : hi [: stride]`; any part may be elided.
    Triplet {
        lo: Option<Expr>,
        hi: Option<Expr>,
        stride: Option<Expr>,
    },
}

impl Subscript {
    /// Whether this subscript selects a rank-reducing single element.
    pub fn is_index(&self) -> bool {
        matches!(self, Subscript::Index(_))
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    IntLit(i64, Span),
    RealLit(f64, Span),
    LogicalLit(bool, Span),
    StrLit(String, Span),
    /// Variable / array-element / array-section / function reference.
    /// Function calls are indistinguishable from array references until
    /// semantic analysis; `sema` rewrites intrinsic references into
    /// [`Expr::Intrinsic`].
    Ref(DataRef),
    /// Resolved intrinsic function call.
    Intrinsic {
        name: Intrinsic,
        args: Vec<Expr>,
        span: Span,
    },
    Unary {
        op: UnOp,
        operand: Box<Expr>,
        span: Span,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        span: Span,
    },
}

impl Expr {
    pub fn span(&self) -> Span {
        match self {
            Expr::IntLit(_, s)
            | Expr::RealLit(_, s)
            | Expr::LogicalLit(_, s)
            | Expr::StrLit(_, s) => *s,
            Expr::Ref(r) => r.span,
            Expr::Intrinsic { span, .. } => *span,
            Expr::Unary { span, .. } => *span,
            Expr::Binary { span, .. } => *span,
        }
    }

    /// Integer-literal constructor with a synthetic span (used heavily by
    /// compiler rewrites).
    pub fn int(v: i64) -> Expr {
        Expr::IntLit(v, Span::SYNTHETIC)
    }

    /// Plain variable reference with a synthetic span.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Ref(DataRef {
            name: name.into(),
            subs: Vec::new(),
            span: Span::SYNTHETIC,
        })
    }

    /// Synthetic binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span: Span::SYNTHETIC,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Plus,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Eqv,
    Neqv,
}

impl BinOp {
    /// Whether the operator yields LOGICAL.
    pub fn is_relational_or_logical(self) -> bool {
        !matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Pow
        )
    }

    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "**",
            BinOp::Eq => "==",
            BinOp::Ne => "/=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => ".AND.",
            BinOp::Or => ".OR.",
            BinOp::Eqv => ".EQV.",
            BinOp::Neqv => ".NEQV.",
        }
    }
}

/// HPF/Fortran 90 intrinsics understood by the framework.
///
/// The parallel intrinsics (`CSHIFT`, `SUM`, …) are exactly those the paper
/// says were parameterized by benchmarking runs on the iPSC/860 (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    // --- parallel / transformational ---
    CShift,
    TShift, // "shift to temporary" (EOSHIFT-like, Fortran 90D library)
    EoShift,
    Sum,
    Product,
    MaxVal,
    MinVal,
    MaxLoc,
    MinLoc,
    DotProduct,
    MatMul,
    Transpose,
    Spread,
    Size,
    // --- elemental numeric ---
    Abs,
    Sqrt,
    Exp,
    Log,
    Log10,
    Sin,
    Cos,
    Tan,
    Atan,
    Min,
    Max,
    Mod,
    Sign,
    Int,
    Nint,
    Real,
    Dble,
    Float,
}

impl Intrinsic {
    /// Look up by (uppercased) Fortran name.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        use Intrinsic::*;
        Some(match name {
            "CSHIFT" => CShift,
            "TSHIFT" => TShift,
            "EOSHIFT" => EoShift,
            "SUM" => Sum,
            "PRODUCT" => Product,
            "MAXVAL" => MaxVal,
            "MINVAL" => MinVal,
            "MAXLOC" => MaxLoc,
            "MINLOC" => MinLoc,
            "DOT_PRODUCT" | "DOTPRODUCT" => DotProduct,
            "MATMUL" => MatMul,
            "TRANSPOSE" => Transpose,
            "SPREAD" => Spread,
            "SIZE" => Size,
            "ABS" => Abs,
            "SQRT" => Sqrt,
            "EXP" => Exp,
            "LOG" | "ALOG" => Log,
            "LOG10" | "ALOG10" => Log10,
            "SIN" => Sin,
            "COS" => Cos,
            "TAN" => Tan,
            "ATAN" => Atan,
            "MIN" | "AMIN1" | "MIN0" => Min,
            "MAX" | "AMAX1" | "MAX0" => Max,
            "MOD" | "AMOD" => Mod,
            "SIGN" => Sign,
            "INT" | "IFIX" => Int,
            "NINT" => Nint,
            "REAL" => Real,
            "DBLE" => Dble,
            "FLOAT" => Float,
            _ => return None,
        })
    }

    /// The canonical Fortran spelling.
    pub fn name(self) -> &'static str {
        use Intrinsic::*;
        match self {
            CShift => "CSHIFT",
            TShift => "TSHIFT",
            EoShift => "EOSHIFT",
            Sum => "SUM",
            Product => "PRODUCT",
            MaxVal => "MAXVAL",
            MinVal => "MINVAL",
            MaxLoc => "MAXLOC",
            MinLoc => "MINLOC",
            DotProduct => "DOT_PRODUCT",
            MatMul => "MATMUL",
            Transpose => "TRANSPOSE",
            Spread => "SPREAD",
            Size => "SIZE",
            Abs => "ABS",
            Sqrt => "SQRT",
            Exp => "EXP",
            Log => "LOG",
            Log10 => "LOG10",
            Sin => "SIN",
            Cos => "COS",
            Tan => "TAN",
            Atan => "ATAN",
            Min => "MIN",
            Max => "MAX",
            Mod => "MOD",
            Sign => "SIGN",
            Int => "INT",
            Nint => "NINT",
            Real => "REAL",
            Dble => "DBLE",
            Float => "FLOAT",
        }
    }

    /// Whether this intrinsic is *transformational* over distributed arrays,
    /// i.e. implemented by the parallel intrinsic library and potentially
    /// communicating (as opposed to elemental math functions).
    pub fn is_transformational(self) -> bool {
        use Intrinsic::*;
        matches!(
            self,
            CShift
                | TShift
                | EoShift
                | Sum
                | Product
                | MaxVal
                | MinVal
                | MaxLoc
                | MinLoc
                | DotProduct
                | MatMul
                | Transpose
                | Spread
        )
    }

    /// Whether the scalar evaluation of this intrinsic maps to a hardware
    /// "hard" operation (divide/sqrt/transcendental) on the i860.
    pub fn is_transcendental(self) -> bool {
        use Intrinsic::*;
        matches!(self, Sqrt | Exp | Log | Log10 | Sin | Cos | Tan | Atan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_roundtrip() {
        for name in ["CSHIFT", "SUM", "MAXLOC", "SQRT", "DOT_PRODUCT"] {
            let i = Intrinsic::from_name(name).unwrap();
            assert_eq!(i.name(), name);
        }
        assert!(Intrinsic::from_name("NOSUCH").is_none());
    }

    #[test]
    fn type_sizes() {
        assert_eq!(TypeSpec::Real.byte_size(), 4);
        assert_eq!(TypeSpec::DoublePrecision.byte_size(), 8);
    }

    #[test]
    fn transformational_classification() {
        assert!(Intrinsic::CShift.is_transformational());
        assert!(Intrinsic::Sum.is_transformational());
        assert!(!Intrinsic::Sqrt.is_transformational());
        assert!(Intrinsic::Sqrt.is_transcendental());
        assert!(!Intrinsic::Abs.is_transcendental());
    }
}
