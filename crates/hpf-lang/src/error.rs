//! Diagnostics for lexing, parsing and semantic analysis.

use crate::span::Span;
use std::fmt;

/// A front-end diagnostic with the phase that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    pub phase: Phase,
    pub message: String,
    pub span: Span,
}

/// Which front-end phase raised the diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Lex,
    Parse,
    Sema,
}

impl LangError {
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        LangError {
            phase: Phase::Lex,
            message: message.into(),
            span,
        }
    }

    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        LangError {
            phase: Phase::Parse,
            message: message.into(),
            span,
        }
    }

    pub fn sema(message: impl Into<String>, span: Span) -> Self {
        LangError {
            phase: Phase::Sema,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lexical",
            Phase::Parse => "syntax",
            Phase::Sema => "semantic",
        };
        write!(f, "{phase} error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LangError {}

/// Result alias used throughout the front end.
pub type LangResult<T> = Result<T, LangError>;
