//! Lexer for the free-form HPF/Fortran 90D subset.
//!
//! Conventions supported:
//!
//! - free-form source; statements end at newline or `;`;
//! - `&` at end of line continues the statement on the next line;
//! - `!` starts a comment, **except** `!HPF$` (and the Fortran-90D spellings
//!   `CHPF$` / `*HPF$` at column 1) which starts a directive line;
//! - identifiers and keywords are case-insensitive and uppercased;
//! - dot-operators (`.AND.`, `.GT.`, …) and their symbolic forms;
//! - integer, real (incl. `D` exponent) and string literals.

use crate::error::{LangError, LangResult};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Tokenize an entire source text.
pub fn lex(src: &str) -> LangResult<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
    /// True when the last emitted token was a Newline (or nothing yet);
    /// used to collapse blank lines and detect column-1 directive forms.
    at_line_start: bool,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
            at_line_start: true,
        }
    }

    fn run(mut self) -> LangResult<Vec<Token>> {
        while self.pos < self.src.len() {
            self.lex_one()?;
        }
        // Terminate the final statement if the file doesn't end in a newline.
        if !self.at_line_start {
            self.push(TokenKind::Newline, self.here(0));
        }
        self.push(TokenKind::Eof, self.here(0));
        Ok(self.tokens)
    }

    fn here(&self, len: usize) -> Span {
        Span::new(self.pos as u32, (self.pos + len) as u32, self.line)
    }

    fn push(&mut self, kind: TokenKind, span: Span) {
        self.at_line_start = matches!(kind, TokenKind::Newline);
        self.tokens.push(Token { kind, span });
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    /// Case-insensitive match of `text` at the current position.
    fn looking_at_nocase(&self, text: &str) -> bool {
        let bytes = text.as_bytes();
        self.src.len() - self.pos >= bytes.len()
            && self.src[self.pos..self.pos + bytes.len()]
                .iter()
                .zip(bytes)
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    fn lex_one(&mut self) -> LangResult<()> {
        let c = self.peek();
        match c {
            b' ' | b'\t' | b'\r' => {
                self.bump();
            }
            b'\n' => {
                self.bump();
                if !self.at_line_start {
                    let span = Span::new(self.pos as u32 - 1, self.pos as u32, self.line - 1);
                    self.push(TokenKind::Newline, span);
                }
            }
            b';' => {
                self.bump();
                if !self.at_line_start {
                    self.push(TokenKind::Newline, self.here(0));
                }
            }
            b'&' => {
                // Continuation: swallow `&`, trailing whitespace/comment, and
                // the newline (plus an optional leading `&` on the next line).
                self.bump();
                while matches!(self.peek(), b' ' | b'\t' | b'\r') {
                    self.bump();
                }
                if self.peek() == b'!' && !self.looking_at_nocase("!HPF$") {
                    while self.peek() != b'\n' && self.pos < self.src.len() {
                        self.bump();
                    }
                }
                if self.peek() == b'\n' {
                    self.bump();
                    while matches!(self.peek(), b' ' | b'\t' | b'\r') {
                        self.bump();
                    }
                    if self.peek() == b'&' {
                        self.bump();
                    }
                } else if self.pos < self.src.len() {
                    return Err(LangError::lex("`&` not at end of line", self.here(1)));
                }
            }
            b'!' => {
                if self.looking_at_nocase("!HPF$") {
                    let span = self.here(5);
                    self.pos += 5;
                    self.push(TokenKind::HpfDirective, span);
                } else {
                    while self.peek() != b'\n' && self.pos < self.src.len() {
                        self.bump();
                    }
                }
            }
            b'C' | b'c' | b'*' if self.at_line_start && self.column_one() => {
                // Fortran-90D spellings of directives at column 1, or `*`
                // comment lines. (Bare `C` comments are fixed-form only and
                // would be ambiguous with free-form statements like `C = 1`,
                // so they are deliberately not recognized.)
                if self.looking_at_nocase("CHPF$") || self.looking_at_nocase("*HPF$") {
                    let span = self.here(5);
                    self.pos += 5;
                    self.push(TokenKind::HpfDirective, span);
                } else if c == b'*' {
                    while self.peek() != b'\n' && self.pos < self.src.len() {
                        self.bump();
                    }
                } else {
                    self.lex_word()?;
                }
            }
            b'0'..=b'9' => self.lex_number()?,
            b'.' => {
                if self.peek2().is_ascii_digit() {
                    self.lex_number()?;
                } else {
                    self.lex_dot_operator()?;
                }
            }
            b'\'' | b'"' => self.lex_string()?,
            b'_' | b'A'..=b'Z' | b'a'..=b'z' => self.lex_word()?,
            _ => self.lex_symbol()?,
        }
        Ok(())
    }

    /// Whether `pos` is at column 1 of its line.
    fn column_one(&self) -> bool {
        self.pos == 0 || self.src[self.pos - 1] == b'\n'
    }

    fn lex_word(&mut self) -> LangResult<()> {
        let start = self.pos;
        let line = self.line;
        while matches!(self.peek(), b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'$') {
            self.bump();
        }
        let text: String = std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii word")
            .to_ascii_uppercase();
        let span = Span::new(start as u32, self.pos as u32, line);
        self.push(TokenKind::Ident(text), span);
        Ok(())
    }

    fn lex_number(&mut self) -> LangResult<()> {
        let start = self.pos;
        let line = self.line;
        let mut is_real = false;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        // Fractional part. Careful: `1.GT.2` — the dot belongs to `.GT.`,
        // and `2:N-1` etc. A dot followed by a letter sequence that forms a
        // dot-operator must not be consumed.
        if self.peek() == b'.' && !self.dot_starts_operator() {
            is_real = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        // Exponent: E, D (double), e.g. 1.5E-3, 2D0.
        if matches!(self.peek(), b'e' | b'E' | b'd' | b'D')
            && (self.peek2().is_ascii_digit()
                || (matches!(self.peek2(), b'+' | b'-')
                    && self
                        .src
                        .get(self.pos + 2)
                        .map(|b| b.is_ascii_digit())
                        .unwrap_or(false)))
        {
            is_real = true;
            self.bump();
            if matches!(self.peek(), b'+' | b'-') {
                self.bump();
            }
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii number");
        let span = Span::new(start as u32, self.pos as u32, line);
        if is_real {
            let normalized = text.replace(['d', 'D'], "E");
            let v: f64 = normalized
                .parse()
                .map_err(|_| LangError::lex(format!("bad real literal `{text}`"), span))?;
            self.push(TokenKind::RealLit(v), span);
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| LangError::lex(format!("bad integer literal `{text}`"), span))?;
            self.push(TokenKind::IntLit(v), span);
        }
        Ok(())
    }

    /// After digits, does the `.` at `self.pos` begin a dot-operator like
    /// `.GT.` rather than a decimal point?
    fn dot_starts_operator(&self) -> bool {
        const OPS: &[&str] = &[
            ".AND.", ".OR.", ".NOT.", ".EQV.", ".NEQV.", ".EQ.", ".NE.", ".LT.", ".LE.", ".GT.",
            ".GE.", ".TRUE.", ".FALSE.",
        ];
        OPS.iter().any(|op| self.looking_at_nocase(op))
    }

    fn lex_dot_operator(&mut self) -> LangResult<()> {
        const TABLE: &[(&str, TokenKind)] = &[
            (".AND.", TokenKind::And),
            (".OR.", TokenKind::Or),
            (".NOT.", TokenKind::Not),
            (".EQV.", TokenKind::Eqv),
            (".NEQV.", TokenKind::Neqv),
            (".EQ.", TokenKind::Eq),
            (".NE.", TokenKind::Ne),
            (".LT.", TokenKind::Lt),
            (".LE.", TokenKind::Le),
            (".GT.", TokenKind::Gt),
            (".GE.", TokenKind::Ge),
            (".TRUE.", TokenKind::LogicalLit(true)),
            (".FALSE.", TokenKind::LogicalLit(false)),
        ];
        for (text, kind) in TABLE {
            if self.looking_at_nocase(text) {
                let span = self.here(text.len());
                self.pos += text.len();
                self.push(kind.clone(), span);
                return Ok(());
            }
        }
        Err(LangError::lex("unrecognized `.` operator", self.here(1)))
    }

    fn lex_string(&mut self) -> LangResult<()> {
        let quote = self.bump();
        let start = self.pos;
        let line = self.line;
        let mut out = String::new();
        loop {
            if self.pos >= self.src.len() || self.peek() == b'\n' {
                return Err(LangError::lex(
                    "unterminated string literal",
                    Span::new(start as u32, self.pos as u32, line),
                ));
            }
            let c = self.bump();
            if c == quote {
                // Doubled quote is an escaped quote.
                if self.peek() == quote {
                    self.bump();
                    out.push(quote as char);
                } else {
                    break;
                }
            } else {
                out.push(c as char);
            }
        }
        let span = Span::new(start as u32 - 1, self.pos as u32, line);
        self.push(TokenKind::StrLit(out), span);
        Ok(())
    }

    fn lex_symbol(&mut self) -> LangResult<()> {
        let two: &[u8] = {
            let hi = (self.pos + 2).min(self.src.len());
            &self.src[self.pos..hi]
        };
        let (kind, len) = match two {
            b"**" => (TokenKind::Power, 2),
            b"//" => (TokenKind::Concat, 2),
            b"==" => (TokenKind::Eq, 2),
            b"/=" => (TokenKind::Ne, 2),
            b"<=" => (TokenKind::Le, 2),
            b">=" => (TokenKind::Ge, 2),
            b"::" => (TokenKind::DoubleColon, 2),
            _ => match self.peek() {
                b'(' => (TokenKind::LParen, 1),
                b')' => (TokenKind::RParen, 1),
                b',' => (TokenKind::Comma, 1),
                b':' => (TokenKind::Colon, 1),
                b'=' => (TokenKind::Assign, 1),
                b'+' => (TokenKind::Plus, 1),
                b'-' => (TokenKind::Minus, 1),
                b'*' => (TokenKind::Star, 1),
                b'/' => (TokenKind::Slash, 1),
                b'<' => (TokenKind::Lt, 1),
                b'>' => (TokenKind::Gt, 1),
                b'%' => (TokenKind::Percent, 1),
                other => {
                    return Err(LangError::lex(
                        format!("unexpected character `{}`", other as char),
                        self.here(1),
                    ))
                }
            },
        };
        let span = self.here(len);
        self.pos += len;
        self.push(kind, span);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_are_uppercased() {
        assert_eq!(
            kinds("forall"),
            vec![T::Ident("FORALL".into()), T::Newline, T::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], T::IntLit(42));
        assert_eq!(kinds("3.5")[0], T::RealLit(3.5));
        assert_eq!(kinds("1E-3")[0], T::RealLit(1e-3));
        assert_eq!(kinds("2.5D0")[0], T::RealLit(2.5));
        assert_eq!(kinds(".25")[0], T::RealLit(0.25));
    }

    #[test]
    fn dot_operator_after_integer() {
        // `1.GT.2` must lex as IntLit(1) Gt IntLit(2), not RealLit(1.0) ...
        assert_eq!(
            kinds("1.GT.2"),
            vec![T::IntLit(1), T::Gt, T::IntLit(2), T::Newline, T::Eof]
        );
        assert_eq!(kinds("X(K).NE.0.0")[4], T::Ne);
    }

    #[test]
    fn operators_symbolic_and_dotted() {
        assert_eq!(kinds("a == b")[1], T::Eq);
        assert_eq!(kinds("a .eq. b")[1], T::Eq);
        assert_eq!(kinds("a /= b")[1], T::Ne);
        assert_eq!(kinds("a ** b")[1], T::Power);
        assert_eq!(kinds(".true.")[0], T::LogicalLit(true));
    }

    #[test]
    fn hpf_directive_token() {
        let ks = kinds("!HPF$ PROCESSORS P(4)");
        assert_eq!(ks[0], T::HpfDirective);
        assert_eq!(ks[1], T::Ident("PROCESSORS".into()));
    }

    #[test]
    fn chpf_column_one_directive() {
        let ks = kinds("CHPF$ DISTRIBUTE T(BLOCK)");
        assert_eq!(ks[0], T::HpfDirective);
    }

    #[test]
    fn star_comment_column_one() {
        let ks = kinds("* this is a comment\nX = 1");
        assert_eq!(ks[0], T::Ident("X".into()));
    }

    #[test]
    fn free_form_c_variable_is_not_a_comment() {
        let ks = kinds("C = C + 1\n");
        assert_eq!(ks[0], T::Ident("C".into()));
        assert_eq!(ks[1], T::Assign);
    }

    #[test]
    fn plain_comment_is_skipped() {
        assert_eq!(
            kinds("x = 1 ! trailing\n"),
            vec![
                T::Ident("X".into()),
                T::Assign,
                T::IntLit(1),
                T::Newline,
                T::Eof
            ]
        );
    }

    #[test]
    fn continuation_joins_lines() {
        let ks = kinds("x = 1 + &\n    2\n");
        assert_eq!(
            ks,
            vec![
                T::Ident("X".into()),
                T::Assign,
                T::IntLit(1),
                T::Plus,
                T::IntLit(2),
                T::Newline,
                T::Eof
            ]
        );
    }

    #[test]
    fn continuation_with_leading_ampersand() {
        let ks = kinds("x = 1 + &\n  & 2\n");
        assert_eq!(ks[4], T::IntLit(2));
    }

    #[test]
    fn semicolon_separates_statements() {
        let ks = kinds("x = 1; y = 2");
        let newlines = ks.iter().filter(|k| matches!(k, T::Newline)).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn string_literals() {
        assert_eq!(kinds("'hello'")[0], T::StrLit("hello".into()));
        assert_eq!(kinds("'it''s'")[0], T::StrLit("it's".into()));
        assert_eq!(kinds("\"dq\"")[0], T::StrLit("dq".into()));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a = 1\nb = 2\n").unwrap();
        let b = toks.iter().find(|t| t.kind.is_kw("B")).unwrap();
        assert_eq!(b.span.line, 2);
    }

    #[test]
    fn blank_lines_do_not_emit_newlines() {
        let ks = kinds("\n\n\nx = 1\n\n\n");
        let newlines = ks.iter().filter(|k| matches!(k, T::Newline)).count();
        assert_eq!(newlines, 1);
    }
}
