//! # hpf-lang — HPF/Fortran 90D front end
//!
//! Lexer, parser, AST, semantic analysis and pretty-printer for the formally
//! defined HPF/Fortran 90D subset handled by the SC'94 performance-prediction
//! framework: `forall` (statement & construct), array assignment, `where`,
//! `do`/`if` control flow, the HPF mapping directives (`PROCESSORS`,
//! `TEMPLATE`, `ALIGN`, `DISTRIBUTE` with `BLOCK`/`CYCLIC`/`*`), and the
//! Fortran 90 parallel intrinsics the paper benchmarks (`CSHIFT`, `TSHIFT`,
//! `SUM`, `PRODUCT`, `MAXLOC`, …).

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod span;
pub mod token;
pub mod value;
pub mod value_ops;

pub use ast::{
    AlignSub, BinOp, DataRef, Decl, DimBound, Directive, DistFormat, EntityDecl, Expr,
    ForallHeader, ForallTriplet, Intrinsic, Program, Stmt, Subscript, TypeSpec, UnOp,
};
pub use error::{LangError, LangResult, Phase};
pub use lexer::lex;
pub use parser::parse_program;
pub use pretty::{pretty_expr, pretty_program, pretty_ref};
pub use sema::{analyze, AnalyzedProgram, Symbol, SymbolKind, SymbolTable};
pub use span::Span;
pub use value::Value;
