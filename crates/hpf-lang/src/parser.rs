//! Recursive-descent parser for the HPF/Fortran 90D subset.
//!
//! Mirrors step 1 of the paper's compilation phase (§4.1): "the first step
//! parses the program to generate a parse tree".

use crate::ast::*;
use crate::error::{LangError, LangResult};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parse a complete program from source text.
pub fn parse_program(src: &str) -> LangResult<Program> {
    let _span = hpf_trace::span("parse");
    let tokens = lex(src)?;
    Parser::new(tokens).program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    // ---- token helpers -------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> LangResult<Token> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(LangError::parse(
                format!("expected `{kind}`, found `{}`", self.peek()),
                self.span(),
            ))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> LangResult<Span> {
        if self.peek().is_kw(kw) {
            Ok(self.bump().span)
        } else {
            Err(LangError::parse(
                format!("expected `{kw}`, found `{}`", self.peek()),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> LangResult<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let sp = self.bump().span;
                Ok((name, sp))
            }
            other => Err(LangError::parse(
                format!("expected identifier, found `{other}`"),
                self.span(),
            )),
        }
    }

    fn eol(&mut self) -> LangResult<()> {
        if self.eat(&TokenKind::Newline) || matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(LangError::parse(
                format!("expected end of statement, found `{}`", self.peek()),
                self.span(),
            ))
        }
    }

    fn skip_newlines(&mut self) {
        while self.eat(&TokenKind::Newline) {}
    }

    // ---- program structure ---------------------------------------------

    fn program(&mut self) -> LangResult<Program> {
        self.skip_newlines();
        let start = self.span();
        self.expect_kw("PROGRAM")?;
        let (name, _) = self.expect_ident()?;
        self.eol()?;

        let mut decls = Vec::new();
        let mut directives = Vec::new();
        let mut body = Vec::new();

        // Specification part: declarations and directives, until the first
        // executable statement.
        loop {
            self.skip_newlines();
            if self.eat(&TokenKind::HpfDirective) {
                directives.push(self.directive()?);
            } else if self.at_decl_start() {
                decls.push(self.decl()?);
            } else {
                break;
            }
        }

        // Execution part.
        loop {
            self.skip_newlines();
            if self.at_program_end() {
                break;
            }
            if self.eat(&TokenKind::HpfDirective) {
                // Directives among executable statements (e.g. INDEPENDENT)
                // are accepted and recorded.
                directives.push(self.directive()?);
                continue;
            }
            body.push(self.stmt()?);
        }

        // END [PROGRAM [name]]
        let end_span = self.span();
        if self.eat_kw("ENDPROGRAM") {
            if let TokenKind::Ident(_) = self.peek() {
                self.bump();
            }
        } else {
            self.expect_kw("END")?;
            if self.eat_kw("PROGRAM") {
                if let TokenKind::Ident(_) = self.peek() {
                    self.bump();
                }
            }
        }
        self.eol().ok();
        self.skip_newlines();

        Ok(Program {
            name,
            decls,
            directives,
            body,
            span: start.merge(end_span),
        })
    }

    fn at_program_end(&self) -> bool {
        match self.peek() {
            TokenKind::Eof => true,
            TokenKind::Ident(s) if s == "ENDPROGRAM" => true,
            TokenKind::Ident(s) if s == "END" => {
                // `END` alone or `END PROGRAM` terminates; `END DO` etc. are
                // handled inside their constructs and never reach here.
                matches!(self.peek_at(1), TokenKind::Newline | TokenKind::Eof)
                    || self.peek_at(1).is_kw("PROGRAM")
            }
            _ => false,
        }
    }

    // ---- declarations ---------------------------------------------------

    fn at_decl_start(&self) -> bool {
        match self.peek() {
            TokenKind::Ident(s) => {
                matches!(s.as_str(), "INTEGER" | "REAL" | "LOGICAL" | "PARAMETER")
                    || (s == "DOUBLE" && self.peek_at(1).is_kw("PRECISION"))
            }
            _ => false,
        }
    }

    fn decl(&mut self) -> LangResult<Decl> {
        let start = self.span();

        // F77-style `PARAMETER (N = 256, M = 2)` — implicit typing.
        if self.peek().is_kw("PARAMETER") && matches!(self.peek_at(1), TokenKind::LParen) {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            let mut entities = Vec::new();
            loop {
                let (name, nsp) = self.expect_ident()?;
                self.expect(&TokenKind::Assign)?;
                let init = self.expr()?;
                entities.push(EntityDecl {
                    name,
                    dims: None,
                    init: Some(init),
                    span: nsp,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            let end = self.span();
            self.eol()?;
            // Type is inferred per implicit rules during sema; INTEGER here
            // is a placeholder refined by `Decl::implicit_typed`.
            return Ok(Decl {
                type_spec: TypeSpec::Integer,
                parameter: true,
                dimension: None,
                entities,
                span: start.merge(end),
            });
        }

        let type_spec = self.type_spec()?;
        let mut parameter = false;
        let mut dimension = None;

        // Attribute list: `, PARAMETER`, `, DIMENSION(...)`.
        while self.eat(&TokenKind::Comma) {
            if self.eat_kw("PARAMETER") {
                parameter = true;
            } else if self.eat_kw("DIMENSION") {
                self.expect(&TokenKind::LParen)?;
                dimension = Some(self.dim_bounds()?);
                self.expect(&TokenKind::RParen)?;
            } else {
                return Err(LangError::parse(
                    format!("unknown declaration attribute `{}`", self.peek()),
                    self.span(),
                ));
            }
        }
        self.eat(&TokenKind::DoubleColon);

        let mut entities = Vec::new();
        loop {
            let (name, nsp) = self.expect_ident()?;
            let dims = if self.eat(&TokenKind::LParen) {
                let d = self.dim_bounds()?;
                self.expect(&TokenKind::RParen)?;
                Some(d)
            } else {
                None
            };
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            entities.push(EntityDecl {
                name,
                dims,
                init,
                span: nsp,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let end = self.span();
        self.eol()?;
        Ok(Decl {
            type_spec,
            parameter,
            dimension,
            entities,
            span: start.merge(end),
        })
    }

    fn type_spec(&mut self) -> LangResult<TypeSpec> {
        if self.eat_kw("INTEGER") {
            Ok(TypeSpec::Integer)
        } else if self.eat_kw("REAL") {
            Ok(TypeSpec::Real)
        } else if self.eat_kw("LOGICAL") {
            Ok(TypeSpec::Logical)
        } else if self.eat_kw("DOUBLE") {
            self.expect_kw("PRECISION")?;
            Ok(TypeSpec::DoublePrecision)
        } else {
            Err(LangError::parse(
                format!("expected type, found `{}`", self.peek()),
                self.span(),
            ))
        }
    }

    fn dim_bounds(&mut self) -> LangResult<Vec<DimBound>> {
        let mut out = Vec::new();
        loop {
            let first = self.expr()?;
            if self.eat(&TokenKind::Colon) {
                let upper = self.expr()?;
                out.push(DimBound {
                    lower: Some(first),
                    upper,
                });
            } else {
                out.push(DimBound {
                    lower: None,
                    upper: first,
                });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(out)
    }

    // ---- HPF directives --------------------------------------------------

    fn directive(&mut self) -> LangResult<Directive> {
        let start = self.span();
        let (kw, _) = self.expect_ident()?;
        let d = match kw.as_str() {
            "PROCESSORS" => {
                let (name, _) = self.expect_ident()?;
                let mut shape = Vec::new();
                if self.eat(&TokenKind::LParen) {
                    loop {
                        shape.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                } else {
                    shape.push(Expr::int(1));
                }
                Directive::Processors {
                    name,
                    shape,
                    span: start.merge(self.span()),
                }
            }
            "TEMPLATE" => {
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::LParen)?;
                let shape = self.dim_bounds()?;
                self.expect(&TokenKind::RParen)?;
                Directive::Template {
                    name,
                    shape,
                    span: start.merge(self.span()),
                }
            }
            "ALIGN" => {
                let (alignee, _) = self.expect_ident()?;
                let mut dummies = Vec::new();
                if self.eat(&TokenKind::LParen) {
                    loop {
                        // `*` collapses that alignee dimension (it maps to
                        // no template axis).
                        if self.eat(&TokenKind::Star) {
                            dummies.push("*".to_string());
                        } else {
                            let (d, _) = self.expect_ident()?;
                            dummies.push(d);
                        }
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                self.expect_kw("WITH")?;
                let (target, _) = self.expect_ident()?;
                let mut target_subs = Vec::new();
                if self.eat(&TokenKind::LParen) {
                    loop {
                        target_subs.push(self.align_sub(&dummies)?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                Directive::Align {
                    alignee,
                    dummies,
                    target,
                    target_subs,
                    span: start.merge(self.span()),
                }
            }
            "DISTRIBUTE" => {
                let (target, _) = self.expect_ident()?;
                self.expect(&TokenKind::LParen)?;
                let mut formats = Vec::new();
                loop {
                    if self.eat(&TokenKind::Star) {
                        formats.push(DistFormat::Degenerate);
                    } else if self.eat_kw("BLOCK") {
                        formats.push(DistFormat::Block);
                    } else if self.eat_kw("CYCLIC") {
                        if self.eat(&TokenKind::LParen) {
                            let k = match self.peek().clone() {
                                TokenKind::IntLit(k) if k >= 1 => {
                                    self.bump();
                                    k
                                }
                                other => {
                                    return Err(LangError::parse(
                                        format!(
                                            "CYCLIC block factor must be a positive integer                                              literal, found `{other}`"
                                        ),
                                        self.span(),
                                    ))
                                }
                            };
                            self.expect(&TokenKind::RParen)?;
                            formats.push(if k == 1 {
                                DistFormat::Cyclic
                            } else {
                                DistFormat::CyclicK(k)
                            });
                        } else {
                            formats.push(DistFormat::Cyclic);
                        }
                    } else {
                        return Err(LangError::parse(
                            format!("expected BLOCK, CYCLIC or `*`, found `{}`", self.peek()),
                            self.span(),
                        ));
                    }
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
                let onto = if self.eat_kw("ONTO") {
                    Some(self.expect_ident()?.0)
                } else {
                    None
                };
                Directive::Distribute {
                    target,
                    formats,
                    onto,
                    span: start.merge(self.span()),
                }
            }
            "INDEPENDENT" => Directive::Independent { span: start },
            other => {
                return Err(LangError::parse(
                    format!("unknown HPF directive `{other}`"),
                    start,
                ));
            }
        };
        self.eol()?;
        Ok(d)
    }

    /// Parse one align-target subscript: `*` or an affine expression in one
    /// of the align dummies (`I`, `I+1`, `2-I`, …).
    fn align_sub(&mut self, dummies: &[String]) -> LangResult<AlignSub> {
        if self.eat(&TokenKind::Star) {
            return Ok(AlignSub::Replicated);
        }
        let e = self.expr()?;
        affine_of(&e, dummies).ok_or_else(|| {
            LangError::parse(
                "align subscript must be affine in one align dummy",
                e.span(),
            )
        })
    }

    // ---- statements -------------------------------------------------------

    fn stmt(&mut self) -> LangResult<Stmt> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Ident(kw) => match kw.as_str() {
                "FORALL" => self.forall_stmt(),
                "WHERE" => self.where_stmt(),
                "DO" => self.do_stmt(),
                "IF" => self.if_stmt(),
                "CALL" => {
                    self.bump();
                    let (name, _) = self.expect_ident()?;
                    let mut args = Vec::new();
                    if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                    }
                    let span = start.merge(self.span());
                    self.eol()?;
                    Ok(Stmt::Call { name, args, span })
                }
                "PRINT" => {
                    self.bump();
                    // PRINT *, item, item …
                    self.expect(&TokenKind::Star)?;
                    let mut items = Vec::new();
                    while self.eat(&TokenKind::Comma) {
                        items.push(self.expr()?);
                    }
                    let span = start.merge(self.span());
                    self.eol()?;
                    Ok(Stmt::Print { items, span })
                }
                "STOP" => {
                    self.bump();
                    // optional stop code
                    if !matches!(self.peek(), TokenKind::Newline | TokenKind::Eof) {
                        self.bump();
                    }
                    self.eol()?;
                    Ok(Stmt::Stop { span: start })
                }
                "READ" if self.io_stmt_follows(true) => self.io_stmt(IoStmtKind::Read),
                "WRITE" if self.io_stmt_follows(true) => self.io_stmt(IoStmtKind::Write),
                "CHECKPOINT" if self.io_stmt_follows(false) => self.io_stmt(IoStmtKind::Checkpoint),
                _ => self.assignment(),
            },
            other => Err(LangError::parse(
                format!("expected statement, found `{other}`"),
                start,
            )),
        }
    }

    /// Lookahead that decides whether a `READ`/`WRITE`/`CHECKPOINT` keyword
    /// begins a parallel I/O statement rather than an assignment to a
    /// variable of the same name. The statement shape is strict — the
    /// keyword, then `( IDENT [, IDENT]* )` (mandatory when
    /// `requires_list`), then end of line — so `READ(I) = 5` and
    /// `CHECKPOINT = 3` still parse as assignments.
    fn io_stmt_follows(&self, requires_list: bool) -> bool {
        if !matches!(self.peek_at(1), TokenKind::LParen) {
            return !requires_list
                && matches!(self.peek_at(1), TokenKind::Newline | TokenKind::Eof);
        }
        let mut j = 2;
        loop {
            if !matches!(self.peek_at(j), TokenKind::Ident(_)) {
                return false;
            }
            j += 1;
            match self.peek_at(j) {
                TokenKind::Comma => j += 1,
                TokenKind::RParen => {
                    return matches!(self.peek_at(j + 1), TokenKind::Newline | TokenKind::Eof);
                }
                _ => return false,
            }
        }
    }

    fn io_stmt(&mut self, kind: IoStmtKind) -> LangResult<Stmt> {
        let start = self.span();
        self.bump(); // keyword
        let mut arrays = Vec::new();
        if self.eat(&TokenKind::LParen) {
            loop {
                arrays.push(self.expect_ident()?.0);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let span = start.merge(self.span());
        self.eol()?;
        Ok(Stmt::Io { kind, arrays, span })
    }

    fn assignment(&mut self) -> LangResult<Stmt> {
        let start = self.span();
        let lhs = self.data_ref()?;
        self.expect(&TokenKind::Assign)?;
        let rhs = self.expr()?;
        let span = start.merge(rhs.span());
        self.eol()?;
        Ok(Stmt::Assign { lhs, rhs, span })
    }

    /// Parse an assignment without consuming a newline (single-statement
    /// bodies of logical IF / single-line FORALL / WHERE).
    fn inline_assignment(&mut self) -> LangResult<Stmt> {
        let start = self.span();
        let lhs = self.data_ref()?;
        self.expect(&TokenKind::Assign)?;
        let rhs = self.expr()?;
        let span = start.merge(rhs.span());
        Ok(Stmt::Assign { lhs, rhs, span })
    }

    fn forall_stmt(&mut self) -> LangResult<Stmt> {
        let start = self.expect_kw("FORALL")?;
        self.expect(&TokenKind::LParen)?;
        let mut triplets = Vec::new();
        let mut mask = None;
        loop {
            // Triplet iff `IDENT =` follows; otherwise it is the mask.
            let is_triplet = matches!(self.peek(), TokenKind::Ident(_))
                && matches!(self.peek_at(1), TokenKind::Assign);
            if is_triplet {
                let (var, _) = self.expect_ident()?;
                self.expect(&TokenKind::Assign)?;
                let lo = self.expr()?;
                self.expect(&TokenKind::Colon)?;
                let hi = self.expr()?;
                let stride = if self.eat(&TokenKind::Colon) {
                    Some(self.expr()?)
                } else {
                    None
                };
                triplets.push(ForallTriplet {
                    var,
                    lo,
                    hi,
                    stride,
                });
            } else {
                mask = Some(self.expr()?);
                break; // mask must be last
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        if triplets.is_empty() {
            return Err(LangError::parse(
                "forall requires at least one index triplet",
                start,
            ));
        }
        let header = ForallHeader { triplets, mask };

        if matches!(self.peek(), TokenKind::Newline) {
            // FORALL construct.
            self.eol()?;
            let mut body = Vec::new();
            loop {
                self.skip_newlines();
                if self.eat_kw("ENDFORALL") {
                    break;
                }
                if self.peek().is_kw("END") && self.peek_at(1).is_kw("FORALL") {
                    self.bump();
                    self.bump();
                    break;
                }
                body.push(self.stmt()?);
            }
            let span = start.merge(self.span());
            self.eol()?;
            Ok(Stmt::Forall { header, body, span })
        } else {
            // Single-statement forall.
            let st = self.inline_assignment()?;
            let span = start.merge(st.span());
            self.eol()?;
            Ok(Stmt::Forall {
                header,
                body: vec![st],
                span,
            })
        }
    }

    fn where_stmt(&mut self) -> LangResult<Stmt> {
        let start = self.expect_kw("WHERE")?;
        self.expect(&TokenKind::LParen)?;
        let mask = self.expr()?;
        self.expect(&TokenKind::RParen)?;

        if matches!(self.peek(), TokenKind::Newline) {
            self.eol()?;
            let mut body = Vec::new();
            let mut elsewhere = Vec::new();
            let mut in_else = false;
            loop {
                self.skip_newlines();
                if self.eat_kw("ENDWHERE") {
                    break;
                }
                if self.peek().is_kw("END") && self.peek_at(1).is_kw("WHERE") {
                    self.bump();
                    self.bump();
                    break;
                }
                if self.eat_kw("ELSEWHERE") {
                    in_else = true;
                    self.eol()?;
                    continue;
                }
                let st = self.stmt()?;
                if in_else {
                    elsewhere.push(st);
                } else {
                    body.push(st);
                }
            }
            let span = start.merge(self.span());
            self.eol()?;
            Ok(Stmt::Where {
                mask,
                body,
                elsewhere,
                span,
            })
        } else {
            let st = self.inline_assignment()?;
            let span = start.merge(st.span());
            self.eol()?;
            Ok(Stmt::Where {
                mask,
                body: vec![st],
                elsewhere: Vec::new(),
                span,
            })
        }
    }

    fn do_stmt(&mut self) -> LangResult<Stmt> {
        let start = self.expect_kw("DO")?;
        if self.eat_kw("WHILE") {
            self.expect(&TokenKind::LParen)?;
            let cond = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            self.eol()?;
            let body = self.block_until_enddo()?;
            let span = start.merge(self.span());
            self.eol()?;
            return Ok(Stmt::DoWhile { cond, body, span });
        }
        let (var, _) = self.expect_ident()?;
        self.expect(&TokenKind::Assign)?;
        let lo = self.expr()?;
        self.expect(&TokenKind::Comma)?;
        let hi = self.expr()?;
        let step = if self.eat(&TokenKind::Comma) {
            Some(self.expr()?)
        } else {
            None
        };
        self.eol()?;
        let body = self.block_until_enddo()?;
        let span = start.merge(self.span());
        self.eol()?;
        Ok(Stmt::Do {
            var,
            lo,
            hi,
            step,
            body,
            span,
        })
    }

    fn block_until_enddo(&mut self) -> LangResult<Vec<Stmt>> {
        let mut body = Vec::new();
        loop {
            self.skip_newlines();
            if self.eat_kw("ENDDO") {
                return Ok(body);
            }
            if self.peek().is_kw("END") && self.peek_at(1).is_kw("DO") {
                self.bump();
                self.bump();
                return Ok(body);
            }
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(LangError::parse(
                    "unterminated DO (missing END DO)",
                    self.span(),
                ));
            }
            body.push(self.stmt()?);
        }
    }

    fn if_stmt(&mut self) -> LangResult<Stmt> {
        let start = self.expect_kw("IF")?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;

        if !self.eat_kw("THEN") {
            // Logical IF: `IF (cond) statement` on one line.
            let st = match self.peek().clone() {
                TokenKind::Ident(k) if k == "STOP" => {
                    self.bump();
                    Stmt::Stop { span: self.span() }
                }
                TokenKind::Ident(k) if k == "CALL" => {
                    self.bump();
                    let (name, _) = self.expect_ident()?;
                    let mut args = Vec::new();
                    if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                    }
                    Stmt::Call {
                        name,
                        args,
                        span: self.span(),
                    }
                }
                _ => self.inline_assignment()?,
            };
            let span = start.merge(st.span());
            self.eol()?;
            return Ok(Stmt::If {
                arms: vec![(cond, vec![st])],
                else_body: Vec::new(),
                span,
            });
        }
        self.eol()?;

        let mut arms = vec![(cond, Vec::new())];
        let mut else_body: Vec<Stmt> = Vec::new();
        let mut in_else = false;
        loop {
            self.skip_newlines();
            if self.eat_kw("ENDIF") {
                break;
            }
            if self.peek().is_kw("END") && self.peek_at(1).is_kw("IF") {
                self.bump();
                self.bump();
                break;
            }
            if self.peek().is_kw("ELSEIF")
                || (self.peek().is_kw("ELSE") && self.peek_at(1).is_kw("IF"))
            {
                if self.eat_kw("ELSEIF") {
                } else {
                    self.bump();
                    self.bump();
                }
                self.expect(&TokenKind::LParen)?;
                let c = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect_kw("THEN")?;
                self.eol()?;
                arms.push((c, Vec::new()));
                continue;
            }
            if self.eat_kw("ELSE") {
                in_else = true;
                self.eol()?;
                continue;
            }
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(LangError::parse(
                    "unterminated IF (missing END IF)",
                    self.span(),
                ));
            }
            let st = self.stmt()?;
            if in_else {
                else_body.push(st);
            } else {
                arms.last_mut().expect("at least one arm").1.push(st);
            }
        }
        let span = start.merge(self.span());
        self.eol()?;
        Ok(Stmt::If {
            arms,
            else_body,
            span,
        })
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> LangResult<Expr> {
        self.equiv_expr()
    }

    fn equiv_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.or_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Eqv => BinOp::Eqv,
                TokenKind::Neqv => BinOp::Neqv,
                _ => break,
            };
            self.bump();
            let rhs = self.or_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn or_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), TokenKind::Or) {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.not_expr()?;
        while matches!(self.peek(), TokenKind::And) {
            self.bump();
            let rhs = self.not_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> LangResult<Expr> {
        if matches!(self.peek(), TokenKind::Not) {
            let sp = self.bump().span;
            let operand = self.not_expr()?;
            let span = sp.merge(operand.span());
            return Ok(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
                span,
            });
        }
        self.rel_expr()
    }

    fn rel_expr(&mut self) -> LangResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span().merge(rhs.span());
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn add_expr(&mut self) -> LangResult<Expr> {
        // Leading unary +/-.
        let mut lhs = if matches!(self.peek(), TokenKind::Minus | TokenKind::Plus) {
            let t = self.bump();
            let operand = self.mul_expr()?;
            let span = t.span.merge(operand.span());
            let op = if matches!(t.kind, TokenKind::Minus) {
                UnOp::Neg
            } else {
                UnOp::Plus
            };
            Expr::Unary {
                op,
                operand: Box::new(operand),
                span,
            }
        } else {
            self.mul_expr()?
        };
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.pow_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.pow_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn pow_expr(&mut self) -> LangResult<Expr> {
        let base = self.primary()?;
        if matches!(self.peek(), TokenKind::Power) {
            self.bump();
            // `**` is right-associative; unary minus binds looser than `**`
            // on the right (`2 ** -2` is accepted as Fortran extensions do).
            let exp = if matches!(self.peek(), TokenKind::Minus) {
                let t = self.bump();
                let operand = self.pow_expr()?;
                let span = t.span.merge(operand.span());
                Expr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(operand),
                    span,
                }
            } else {
                self.pow_expr()?
            };
            let span = base.span().merge(exp.span());
            return Ok(Expr::Binary {
                op: BinOp::Pow,
                lhs: Box::new(base),
                rhs: Box::new(exp),
                span,
            });
        }
        Ok(base)
    }

    fn primary(&mut self) -> LangResult<Expr> {
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                let sp = self.bump().span;
                Ok(Expr::IntLit(v, sp))
            }
            TokenKind::RealLit(v) => {
                let sp = self.bump().span;
                Ok(Expr::RealLit(v, sp))
            }
            TokenKind::LogicalLit(v) => {
                let sp = self.bump().span;
                Ok(Expr::LogicalLit(v, sp))
            }
            TokenKind::StrLit(s) => {
                let sp = self.bump().span;
                Ok(Expr::StrLit(s, sp))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(_) => Ok(Expr::Ref(self.data_ref()?)),
            other => Err(LangError::parse(
                format!("expected expression, found `{other}`"),
                self.span(),
            )),
        }
    }

    fn data_ref(&mut self) -> LangResult<DataRef> {
        let (name, start) = self.expect_ident()?;
        let mut subs = Vec::new();
        let mut end = start;
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            loop {
                subs.push(self.subscript()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            end = self.expect(&TokenKind::RParen)?.span;
        }
        Ok(DataRef {
            name,
            subs,
            span: start.merge(end),
        })
    }

    fn subscript(&mut self) -> LangResult<Subscript> {
        // `:`-led forms: `:`, `:hi`, `::stride`, `:hi:stride`.
        if self.eat(&TokenKind::Colon) {
            let hi = if self.sub_boundary() {
                None
            } else {
                Some(self.expr()?)
            };
            let stride = if self.eat(&TokenKind::Colon) {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Subscript::Triplet {
                lo: None,
                hi,
                stride,
            });
        }
        let first = self.expr()?;
        if self.eat(&TokenKind::Colon) {
            let hi = if self.sub_boundary() {
                None
            } else {
                Some(self.expr()?)
            };
            let stride = if self.eat(&TokenKind::Colon) {
                Some(self.expr()?)
            } else {
                None
            };
            Ok(Subscript::Triplet {
                lo: Some(first),
                hi,
                stride,
            })
        } else {
            Ok(Subscript::Index(first))
        }
    }

    /// At a subscript boundary (`,`, `)`, or `:` for stride)?
    fn sub_boundary(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Comma | TokenKind::RParen | TokenKind::Colon
        )
    }
}

/// Decompose `e` as `stride*dummy + offset` over one of `dummies`.
/// Handles `I`, `I+c`, `I-c`, `c+I`, `c-I`, `-I`, `-I+c`.
fn affine_of(e: &Expr, dummies: &[String]) -> Option<AlignSub> {
    fn as_dummy(e: &Expr, dummies: &[String]) -> Option<String> {
        if let Expr::Ref(r) = e {
            if r.subs.is_empty() && dummies.iter().any(|d| d == &r.name) {
                return Some(r.name.clone());
            }
        }
        None
    }
    fn as_const(e: &Expr) -> Option<i64> {
        match e {
            Expr::IntLit(v, _) => Some(*v),
            Expr::Unary {
                op: UnOp::Neg,
                operand,
                ..
            } => as_const(operand).map(|v| -v),
            _ => None,
        }
    }

    if let Some(d) = as_dummy(e, dummies) {
        return Some(AlignSub::Affine {
            dummy: d,
            stride: 1,
            offset: 0,
        });
    }
    match e {
        Expr::Unary {
            op: UnOp::Neg,
            operand,
            ..
        } => as_dummy(operand, dummies).map(|d| AlignSub::Affine {
            dummy: d,
            stride: -1,
            offset: 0,
        }),
        Expr::Binary { op, lhs, rhs, .. } => {
            let (sign, l, r) = match op {
                BinOp::Add => (1i64, lhs, rhs),
                BinOp::Sub => (-1i64, lhs, rhs),
                _ => return None,
            };
            if let (Some(d), Some(c)) = (as_dummy(l, dummies), as_const(r)) {
                // I ± c
                return Some(AlignSub::Affine {
                    dummy: d,
                    stride: 1,
                    offset: sign * c,
                });
            }
            if let (Some(c), Some(d)) = (as_const(l), as_dummy(r, dummies)) {
                // c + I  or  c - I
                return Some(AlignSub::Affine {
                    dummy: d,
                    stride: sign,
                    offset: c,
                });
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAPLACE: &str = r#"
PROGRAM LAPLACE
  INTEGER, PARAMETER :: N = 64
  REAL U(N,N), UNEW(N,N)
  INTEGER ITER
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN U(I,J) WITH T(I,J)
!HPF$ ALIGN UNEW(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(BLOCK,*) ONTO P
  U = 0.0
  DO ITER = 1, 10
    FORALL (I=2:N-1, J=2:N-1)
      UNEW(I,J) = 0.25 * (U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))
    END FORALL
    U(2:N-1, 2:N-1) = UNEW(2:N-1, 2:N-1)
  END DO
END PROGRAM LAPLACE
"#;

    #[test]
    fn parses_laplace() {
        let p = parse_program(LAPLACE).unwrap();
        assert_eq!(p.name, "LAPLACE");
        assert_eq!(p.decls.len(), 3);
        assert_eq!(p.directives.len(), 5);
        assert_eq!(p.body.len(), 2);
        match &p.body[1] {
            Stmt::Do { var, body, .. } => {
                assert_eq!(var, "ITER");
                assert_eq!(body.len(), 2);
                assert!(matches!(body[0], Stmt::Forall { .. }));
                assert!(matches!(body[1], Stmt::Assign { .. }));
            }
            other => panic!("expected DO, got {other:?}"),
        }
    }

    #[test]
    fn parses_parallel_io_statements() {
        let src =
            "PROGRAM T\nREAL A(8), B(8)\nREAD(A)\nWRITE(A, B)\nCHECKPOINT(B)\nCHECKPOINT\nEND\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.body.len(), 4);
        match &p.body[0] {
            Stmt::Io { kind, arrays, .. } => {
                assert_eq!(*kind, IoStmtKind::Read);
                assert_eq!(arrays, &["A".to_string()]);
            }
            other => panic!("expected READ, got {other:?}"),
        }
        match &p.body[1] {
            Stmt::Io { kind, arrays, .. } => {
                assert_eq!(*kind, IoStmtKind::Write);
                assert_eq!(arrays.len(), 2);
            }
            other => panic!("expected WRITE, got {other:?}"),
        }
        // Bare CHECKPOINT: empty list = all distributed arrays.
        match &p.body[3] {
            Stmt::Io { kind, arrays, .. } => {
                assert_eq!(*kind, IoStmtKind::Checkpoint);
                assert!(arrays.is_empty());
            }
            other => panic!("expected CHECKPOINT, got {other:?}"),
        }
    }

    #[test]
    fn io_keywords_still_parse_as_assignments() {
        // `READ(I) = 5` is an element assignment to an array named READ;
        // `CHECKPOINT = 3` is a scalar assignment. The I/O statement shape
        // (keyword + ident list + end of line) must not shadow either.
        let src =
            "PROGRAM T\nREAL READ(8)\nINTEGER CHECKPOINT\nREAD(2) = 5.0\nCHECKPOINT = 3\nEND\n";
        let p = parse_program(src).unwrap();
        assert!(matches!(p.body[0], Stmt::Assign { .. }));
        assert!(matches!(p.body[1], Stmt::Assign { .. }));
    }

    #[test]
    fn forall_single_line_with_mask() {
        let src =
            "PROGRAM T\nREAL P(8), Q(8)\nFORALL (I = 1:8, Q(I).NE.0.0) P(I) = 1.0/Q(I)\nEND\n";
        let p = parse_program(src).unwrap();
        match &p.body[0] {
            Stmt::Forall { header, body, .. } => {
                assert_eq!(header.triplets.len(), 1);
                assert!(header.mask.is_some());
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected FORALL, got {other:?}"),
        }
    }

    #[test]
    fn forall_two_indices() {
        let src = "PROGRAM T\nREAL P(8,8), Q(8,8)\nFORALL (I=1:8, J=1:8) P(I,J) = Q(J,I)\nEND\n";
        let p = parse_program(src).unwrap();
        match &p.body[0] {
            Stmt::Forall { header, .. } => assert_eq!(header.triplets.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn where_construct_with_elsewhere() {
        let src =
            "PROGRAM T\nREAL A(8)\nWHERE (A > 0.0)\nA = 1.0\nELSEWHERE\nA = -1.0\nEND WHERE\nEND\n";
        let p = parse_program(src).unwrap();
        match &p.body[0] {
            Stmt::Where {
                body, elsewhere, ..
            } => {
                assert_eq!(body.len(), 1);
                assert_eq!(elsewhere.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn if_elseif_else() {
        let src = "PROGRAM T\nINTEGER A\nA = 1\nIF (A > 0) THEN\nA = 2\nELSE IF (A == 0) THEN\nA = 3\nELSE\nA = 4\nEND IF\nEND\n";
        let p = parse_program(src).unwrap();
        match &p.body[1] {
            Stmt::If {
                arms, else_body, ..
            } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(else_body.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn logical_if() {
        let src = "PROGRAM T\nINTEGER A\nIF (A > 0) A = A - 1\nEND\n";
        let p = parse_program(src).unwrap();
        match &p.body[0] {
            Stmt::If {
                arms, else_body, ..
            } => {
                assert_eq!(arms.len(), 1);
                assert!(else_body.is_empty());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn array_sections_parse() {
        let src =
            "PROGRAM T\nREAL A(10), B(10)\nA(1:5) = B(6:10)\nA(:) = B\nA(1:10:2) = 0.0\nEND\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.body.len(), 3);
        if let Stmt::Assign { lhs, .. } = &p.body[2] {
            assert!(matches!(
                lhs.subs[0],
                Subscript::Triplet {
                    stride: Some(_),
                    ..
                }
            ));
        } else {
            panic!()
        }
    }

    #[test]
    fn directives_parse_all_forms() {
        let src = "\
PROGRAM T
REAL A(8,8)
!HPF$ PROCESSORS P(2,2)
!HPF$ TEMPLATE T1(8,8)
!HPF$ ALIGN A(I,J) WITH T1(J,I)
!HPF$ DISTRIBUTE T1(BLOCK,CYCLIC) ONTO P
A = 0.0
END
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.directives.len(), 4);
        match &p.directives[2] {
            Directive::Align {
                dummies,
                target_subs,
                ..
            } => {
                assert_eq!(dummies.len(), 2);
                assert_eq!(
                    target_subs[0],
                    AlignSub::Affine {
                        dummy: "J".into(),
                        stride: 1,
                        offset: 0
                    }
                );
            }
            _ => panic!(),
        }
        match &p.directives[3] {
            Directive::Distribute { formats, onto, .. } => {
                assert_eq!(formats, &vec![DistFormat::Block, DistFormat::Cyclic]);
                assert_eq!(onto.as_deref(), Some("P"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn align_with_offset() {
        let src = "PROGRAM T\nREAL A(8)\n!HPF$ TEMPLATE TT(9)\n!HPF$ ALIGN A(I) WITH TT(I+1)\nA = 0.0\nEND\n";
        let p = parse_program(src).unwrap();
        match &p.directives[1] {
            Directive::Align { target_subs, .. } => {
                assert_eq!(
                    target_subs[0],
                    AlignSub::Affine {
                        dummy: "I".into(),
                        stride: 1,
                        offset: 1
                    }
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn operator_precedence() {
        let src = "PROGRAM T\nREAL A\nA = 1.0 + 2.0 * 3.0 ** 2\nEND\n";
        let p = parse_program(src).unwrap();
        if let Stmt::Assign { rhs, .. } = &p.body[0] {
            // Must parse as 1 + (2 * (3 ** 2)).
            if let Expr::Binary {
                op: BinOp::Add,
                rhs: r,
                ..
            } = rhs
            {
                if let Expr::Binary {
                    op: BinOp::Mul,
                    rhs: r2,
                    ..
                } = r.as_ref()
                {
                    assert!(matches!(r2.as_ref(), Expr::Binary { op: BinOp::Pow, .. }));
                    return;
                }
            }
            panic!("wrong precedence: {rhs:?}");
        }
    }

    #[test]
    fn power_right_assoc() {
        let src = "PROGRAM T\nREAL A\nA = 2.0 ** 3 ** 2\nEND\n";
        let p = parse_program(src).unwrap();
        if let Stmt::Assign {
            rhs:
                Expr::Binary {
                    op: BinOp::Pow,
                    rhs,
                    ..
                },
            ..
        } = &p.body[0]
        {
            assert!(matches!(rhs.as_ref(), Expr::Binary { op: BinOp::Pow, .. }));
        } else {
            panic!()
        }
    }

    #[test]
    fn dotted_relational_ops() {
        let src = "PROGRAM T\nLOGICAL L\nINTEGER K\nL = K .GE. 2 .AND. K .LE. 9\nEND\n";
        let p = parse_program(src).unwrap();
        if let Stmt::Assign { rhs, .. } = &p.body[0] {
            assert!(matches!(rhs, Expr::Binary { op: BinOp::And, .. }));
        } else {
            panic!()
        }
    }

    #[test]
    fn do_while_parses() {
        let src = "PROGRAM T\nINTEGER K\nK = 0\nDO WHILE (K < 10)\nK = K + 1\nEND DO\nEND\n";
        let p = parse_program(src).unwrap();
        assert!(matches!(p.body[1], Stmt::DoWhile { .. }));
    }

    #[test]
    fn intrinsic_call_is_ref_before_sema() {
        let src = "PROGRAM T\nREAL A(8), S\nS = SUM(A)\nEND\n";
        let p = parse_program(src).unwrap();
        if let Stmt::Assign {
            rhs: Expr::Ref(r), ..
        } = &p.body[0]
        {
            assert_eq!(r.name, "SUM");
        } else {
            panic!()
        }
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_program("PROGRAM T\nX = = 1\nEND\n").is_err());
        assert!(parse_program("NOTAPROGRAM\n").is_err());
        assert!(parse_program("PROGRAM T\nDO I = 1, 5\nX = 1\nEND\n").is_err());
    }

    #[test]
    fn end_program_named() {
        assert!(parse_program("PROGRAM PI\nREAL X\nX = 0.0\nEND PROGRAM PI\n").is_ok());
        assert!(parse_program("PROGRAM PI\nREAL X\nX = 0.0\nENDPROGRAM PI\n").is_ok());
    }

    #[test]
    fn f77_parameter_stmt() {
        let src = "PROGRAM T\nPARAMETER (N = 100)\nREAL A(N)\nA = 0.0\nEND\n";
        let p = parse_program(src).unwrap();
        assert!(p.decls[0].parameter);
        assert_eq!(p.decls[0].entities[0].name, "N");
    }

    #[test]
    fn print_statement() {
        let src = "PROGRAM T\nREAL S\nS = 1.0\nPRINT *, S, S + 1.0\nEND\n";
        let p = parse_program(src).unwrap();
        if let Stmt::Print { items, .. } = &p.body[1] {
            assert_eq!(items.len(), 2);
        } else {
            panic!()
        }
    }
}
