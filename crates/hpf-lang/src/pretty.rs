//! Pretty-printer: renders an AST back to HPF/Fortran 90D source.
//!
//! `parse(pretty(ast)) == ast` (modulo spans) is enforced by property tests;
//! the printer is also used by the report binaries to show the directive
//! variants the "intelligent compiler" search enumerates.

use crate::ast::*;
use std::fmt::Write;

/// Render a whole program.
pub fn pretty_program(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "PROGRAM {}", p.name);
    for d in &p.decls {
        pretty_decl(d, &mut out);
    }
    for d in &p.directives {
        pretty_directive(d, &mut out);
    }
    for s in &p.body {
        pretty_stmt(s, 1, &mut out);
    }
    let _ = writeln!(out, "END PROGRAM {}", p.name);
    out
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn pretty_decl(d: &Decl, out: &mut String) {
    indent(1, out);
    out.push_str(d.type_spec.name());
    if d.parameter {
        out.push_str(", PARAMETER");
    }
    if let Some(dims) = &d.dimension {
        out.push_str(", DIMENSION(");
        pretty_dims(dims, out);
        out.push(')');
    }
    out.push_str(" :: ");
    for (i, e) in d.entities.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&e.name);
        if let Some(dims) = &e.dims {
            out.push('(');
            pretty_dims(dims, out);
            out.push(')');
        }
        if let Some(init) = &e.init {
            out.push_str(" = ");
            out.push_str(&pretty_expr(init));
        }
    }
    out.push('\n');
}

fn pretty_dims(dims: &[DimBound], out: &mut String) {
    for (i, d) in dims.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if let Some(lb) = &d.lower {
            out.push_str(&pretty_expr(lb));
            out.push(':');
        }
        out.push_str(&pretty_expr(&d.upper));
    }
}

fn pretty_directive(d: &Directive, out: &mut String) {
    out.push_str("!HPF$ ");
    match d {
        Directive::Processors { name, shape, .. } => {
            let _ = write!(out, "PROCESSORS {name}(");
            for (i, e) in shape.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&pretty_expr(e));
            }
            out.push(')');
        }
        Directive::Template { name, shape, .. } => {
            let _ = write!(out, "TEMPLATE {name}(");
            pretty_dims(shape, out);
            out.push(')');
        }
        Directive::Align {
            alignee,
            dummies,
            target,
            target_subs,
            ..
        } => {
            let _ = write!(out, "ALIGN {alignee}");
            if !dummies.is_empty() {
                let _ = write!(out, "({})", dummies.join(", "));
            }
            let _ = write!(out, " WITH {target}");
            if !target_subs.is_empty() {
                out.push('(');
                for (i, s) in target_subs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    match s {
                        AlignSub::Replicated => out.push('*'),
                        AlignSub::Affine {
                            dummy,
                            stride,
                            offset,
                        } => {
                            if *stride == -1 {
                                out.push('-');
                            }
                            out.push_str(dummy);
                            if *offset > 0 {
                                let _ = write!(out, " + {offset}");
                            } else if *offset < 0 {
                                let _ = write!(out, " - {}", -offset);
                            }
                        }
                    }
                }
                out.push(')');
            }
        }
        Directive::Independent { .. } => {
            out.push_str("INDEPENDENT");
        }
        Directive::Distribute {
            target,
            formats,
            onto,
            ..
        } => {
            let _ = write!(out, "DISTRIBUTE {target}(");
            for (i, f) in formats.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&f.display());
            }
            out.push(')');
            if let Some(p) = onto {
                let _ = write!(out, " ONTO {p}");
            }
        }
    }
    out.push('\n');
}

fn pretty_stmt(s: &Stmt, level: usize, out: &mut String) {
    match s {
        Stmt::Assign { lhs, rhs, .. } => {
            indent(level, out);
            let _ = writeln!(out, "{} = {}", pretty_ref(lhs), pretty_expr(rhs));
        }
        Stmt::Forall { header, body, .. } => {
            indent(level, out);
            out.push_str("FORALL (");
            for (i, t) in header.triplets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{} = {}:{}",
                    t.var,
                    pretty_expr(&t.lo),
                    pretty_expr(&t.hi)
                );
                if let Some(st) = &t.stride {
                    let _ = write!(out, ":{}", pretty_expr(st));
                }
            }
            if let Some(m) = &header.mask {
                let _ = write!(out, ", {}", pretty_expr(m));
            }
            out.push_str(")\n");
            for st in body {
                pretty_stmt(st, level + 1, out);
            }
            indent(level, out);
            out.push_str("END FORALL\n");
        }
        Stmt::Where {
            mask,
            body,
            elsewhere,
            ..
        } => {
            indent(level, out);
            let _ = writeln!(out, "WHERE ({})", pretty_expr(mask));
            for st in body {
                pretty_stmt(st, level + 1, out);
            }
            if !elsewhere.is_empty() {
                indent(level, out);
                out.push_str("ELSEWHERE\n");
                for st in elsewhere {
                    pretty_stmt(st, level + 1, out);
                }
            }
            indent(level, out);
            out.push_str("END WHERE\n");
        }
        Stmt::Do {
            var,
            lo,
            hi,
            step,
            body,
            ..
        } => {
            indent(level, out);
            let _ = write!(out, "DO {var} = {}, {}", pretty_expr(lo), pretty_expr(hi));
            if let Some(st) = step {
                let _ = write!(out, ", {}", pretty_expr(st));
            }
            out.push('\n');
            for st in body {
                pretty_stmt(st, level + 1, out);
            }
            indent(level, out);
            out.push_str("END DO\n");
        }
        Stmt::DoWhile { cond, body, .. } => {
            indent(level, out);
            let _ = writeln!(out, "DO WHILE ({})", pretty_expr(cond));
            for st in body {
                pretty_stmt(st, level + 1, out);
            }
            indent(level, out);
            out.push_str("END DO\n");
        }
        Stmt::If {
            arms, else_body, ..
        } => {
            for (i, (cond, body)) in arms.iter().enumerate() {
                indent(level, out);
                if i == 0 {
                    let _ = writeln!(out, "IF ({}) THEN", pretty_expr(cond));
                } else {
                    let _ = writeln!(out, "ELSE IF ({}) THEN", pretty_expr(cond));
                }
                for st in body {
                    pretty_stmt(st, level + 1, out);
                }
            }
            if !else_body.is_empty() {
                indent(level, out);
                out.push_str("ELSE\n");
                for st in else_body {
                    pretty_stmt(st, level + 1, out);
                }
            }
            indent(level, out);
            out.push_str("END IF\n");
        }
        Stmt::Call { name, args, .. } => {
            indent(level, out);
            let _ = write!(out, "CALL {name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&pretty_expr(a));
            }
            out.push_str(")\n");
        }
        Stmt::Print { items, .. } => {
            indent(level, out);
            out.push_str("PRINT *");
            for a in items {
                let _ = write!(out, ", {}", pretty_expr(a));
            }
            out.push('\n');
        }
        Stmt::Stop { .. } => {
            indent(level, out);
            out.push_str("STOP\n");
        }
        Stmt::Io { kind, arrays, .. } => {
            indent(level, out);
            out.push_str(kind.keyword());
            if !arrays.is_empty() {
                let _ = write!(out, "({})", arrays.join(", "));
            }
            out.push('\n');
        }
    }
}

/// Render a data reference.
pub fn pretty_ref(r: &DataRef) -> String {
    let mut out = r.name.clone();
    if !r.subs.is_empty() {
        out.push('(');
        for (i, s) in r.subs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match s {
                Subscript::Index(e) => out.push_str(&pretty_expr(e)),
                Subscript::Triplet { lo, hi, stride } => {
                    if let Some(lo) = lo {
                        out.push_str(&pretty_expr(lo));
                    }
                    out.push(':');
                    if let Some(hi) = hi {
                        out.push_str(&pretty_expr(hi));
                    }
                    if let Some(st) = stride {
                        out.push(':');
                        out.push_str(&pretty_expr(st));
                    }
                }
            }
        }
        out.push(')');
    }
    out
}

/// Render an expression with full parenthesization of nested operations
/// (keeps the printer trivially correct w.r.t. precedence).
pub fn pretty_expr(e: &Expr) -> String {
    match e {
        Expr::IntLit(v, _) => format!("{v}"),
        Expr::RealLit(v, _) => {
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains('E') || s.contains("inf") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::LogicalLit(true, _) => ".TRUE.".to_string(),
        Expr::LogicalLit(false, _) => ".FALSE.".to_string(),
        Expr::StrLit(s, _) => format!("'{}'", s.replace('\'', "''")),
        Expr::Ref(r) => pretty_ref(r),
        Expr::Intrinsic { name, args, .. } => {
            let args: Vec<String> = args.iter().map(pretty_expr).collect();
            format!("{}({})", name.name(), args.join(", "))
        }
        Expr::Unary { op, operand, .. } => {
            let inner = pretty_atom(operand);
            match op {
                UnOp::Neg => format!("-{inner}"),
                UnOp::Plus => format!("+{inner}"),
                UnOp::Not => format!(".NOT. {inner}"),
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            format!("{} {} {}", pretty_atom(lhs), op.symbol(), pretty_atom(rhs))
        }
    }
}

/// Parenthesize compound sub-expressions.
fn pretty_atom(e: &Expr) -> String {
    match e {
        Expr::Binary { .. } | Expr::Unary { .. } => format!("({})", pretty_expr(e)),
        _ => pretty_expr(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// Spans differ after a round trip; compare the *second* round trip to
    /// the first (printing is a fixpoint).
    #[test]
    fn roundtrip_fixpoint() {
        let src = r#"
PROGRAM RT
  INTEGER, PARAMETER :: N = 16
  REAL A(N,N), B(N,N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN A(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(BLOCK,*) ONTO P
  A = 0.0
  FORALL (I=2:N-1, J=2:N-1, B(I,J) .GT. 0.0)
    A(I,J) = 0.25 * (B(I-1,J) + B(I+1,J))
  END FORALL
  DO K = 1, 10, 2
    IF (A(1,1) > 0.5) THEN
      A(1,1) = A(1,1) / 2.0
    ELSE
      A(1,1) = 1.0 - A(1,1)
    END IF
  END DO
END PROGRAM RT
"#;
        let p1 = parse_program(src).unwrap();
        let text1 = pretty_program(&p1);
        let p2 = parse_program(&text1).unwrap();
        let text2 = pretty_program(&p2);
        assert_eq!(text1, text2);
    }

    #[test]
    fn expr_parenthesization_preserves_structure() {
        let src = "PROGRAM T\nREAL A\nA = 1.0 + 2.0 * 3.0\nEND\n";
        let p = parse_program(src).unwrap();
        let text = pretty_program(&p);
        assert!(text.contains("1.0 + (2.0 * 3.0)") || text.contains("1 + (2 * 3)"));
    }
}
