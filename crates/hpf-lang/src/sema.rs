//! Semantic analysis: symbol table construction, PARAMETER/const evaluation,
//! intrinsic resolution, array-shape resolution, directive validation, and
//! critical-variable identification (§4.2 "abstraction parse" support).
//!
//! The analyzer accepts a `parameter override` environment so that problem
//! sizes can be varied "from within the interface itself" (§5.3) without
//! editing source, exactly as the paper's framework allowed.

use crate::ast::*;
use crate::error::{LangError, LangResult};
use crate::span::Span;
use crate::value::Value;
use std::collections::BTreeMap;

/// What a name refers to.
#[derive(Debug, Clone, PartialEq)]
pub enum SymbolKind {
    /// Scalar variable.
    Scalar,
    /// Array variable with resolved rectangular shape.
    Array { shape: Vec<(i64, i64)> },
    /// Named compile-time constant.
    Parameter { value: Value },
    /// HPF TEMPLATE with resolved shape.
    Template { shape: Vec<(i64, i64)> },
    /// HPF PROCESSORS arrangement with resolved extents.
    Processors { shape: Vec<i64> },
}

/// A resolved symbol.
#[derive(Debug, Clone, PartialEq)]
pub struct Symbol {
    pub name: String,
    pub ty: TypeSpec,
    pub kind: SymbolKind,
    pub span: Span,
}

impl Symbol {
    /// Resolved array/template shape, if any.
    pub fn shape(&self) -> Option<&[(i64, i64)]> {
        match &self.kind {
            SymbolKind::Array { shape } | SymbolKind::Template { shape } => Some(shape),
            _ => None,
        }
    }

    /// Total element count for arrays/templates.
    pub fn elem_count(&self) -> Option<u64> {
        self.shape().map(|s| {
            s.iter()
                .map(|(lb, ub)| (ub - lb + 1).max(0) as u64)
                .product()
        })
    }

    pub fn is_array(&self) -> bool {
        matches!(self.kind, SymbolKind::Array { .. })
    }
}

/// Symbol table keyed by uppercased name. `BTreeMap` keeps iteration
/// deterministic, which downstream reports rely on.
pub type SymbolTable = BTreeMap<String, Symbol>;

/// Result of semantic analysis.
#[derive(Debug, Clone)]
pub struct AnalyzedProgram {
    /// The program with intrinsic references resolved (`Expr::Ref(SUM(..))`
    /// rewritten to `Expr::Intrinsic`).
    pub program: Program,
    pub symbols: SymbolTable,
    /// Names of critical variables (variables steering control flow) that
    /// could *not* be resolved to compile-time constants by definition
    /// tracing; the framework requires the user to supply these (§4.2).
    pub unresolved_critical: Vec<String>,
    /// Critical variables resolved by definition tracing, with their values.
    pub resolved_critical: BTreeMap<String, i64>,
}

impl AnalyzedProgram {
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.get(&name.to_ascii_uppercase())
    }
}

/// Fortran implicit typing: names starting I..N are INTEGER, others REAL.
pub fn implicit_type(name: &str) -> TypeSpec {
    match name.as_bytes().first() {
        Some(c) if (b'I'..=b'N').contains(&c.to_ascii_uppercase()) => TypeSpec::Integer,
        _ => TypeSpec::Real,
    }
}

/// Analyze a parsed program. `overrides` maps PARAMETER names to replacement
/// integer values (the interface's problem-size knob).
pub fn analyze(
    program: &Program,
    overrides: &BTreeMap<String, i64>,
) -> LangResult<AnalyzedProgram> {
    let _span = hpf_trace::span("sema");
    let mut a = Analyzer {
        symbols: SymbolTable::new(),
        overrides,
    };
    a.collect_decls(program)?;
    a.collect_directives(program)?;

    // Resolve intrinsics / validate refs in the executable part.
    let mut body = Vec::with_capacity(program.body.len());
    for st in &program.body {
        body.push(a.rewrite_stmt(st)?);
    }
    // Implicitly declare any scalars first seen in executable context
    // (Fortran implicit typing) — done inside rewrite via ensure_scalar.

    let program_out = Program {
        name: program.name.clone(),
        decls: program.decls.clone(),
        directives: program.directives.clone(),
        body,
        span: program.span,
    };

    // Critical-variable identification + definition tracing.
    let (resolved, unresolved) = trace_critical_variables(&program_out, &a.symbols);

    Ok(AnalyzedProgram {
        program: program_out,
        symbols: a.symbols,
        unresolved_critical: unresolved,
        resolved_critical: resolved,
    })
}

struct Analyzer<'a> {
    symbols: SymbolTable,
    overrides: &'a BTreeMap<String, i64>,
}

impl<'a> Analyzer<'a> {
    fn collect_decls(&mut self, program: &Program) -> LangResult<()> {
        for decl in &program.decls {
            for ent in &decl.entities {
                let name = ent.name.clone();
                if self.symbols.contains_key(&name) {
                    return Err(LangError::sema(
                        format!("`{name}` declared twice"),
                        ent.span,
                    ));
                }
                // F77 PARAMETER statements carry a placeholder type; apply
                // implicit typing rules for those.
                let ty = if decl.parameter && decl.span.line != 0 && decl_is_untyped(decl) {
                    implicit_type(&name)
                } else {
                    decl.type_spec
                };
                if decl.parameter {
                    let init = ent.init.as_ref().ok_or_else(|| {
                        LangError::sema(format!("PARAMETER `{name}` lacks a value"), ent.span)
                    })?;
                    let mut value = self.const_eval(init)?;
                    if let Some(ov) = self.overrides.get(&name) {
                        value = Value::Int(*ov);
                    }
                    // Integer parameters keep Int; real parameters coerce.
                    let value = match (ty, value) {
                        (TypeSpec::Integer, v) => Value::Int(v.as_i64().ok_or_else(|| {
                            LangError::sema(format!("PARAMETER `{name}` must be numeric"), ent.span)
                        })?),
                        (TypeSpec::Real | TypeSpec::DoublePrecision, v) => {
                            Value::Real(v.as_f64().ok_or_else(|| {
                                LangError::sema(
                                    format!("PARAMETER `{name}` must be numeric"),
                                    ent.span,
                                )
                            })?)
                        }
                        (TypeSpec::Logical, v) => v,
                    };
                    self.symbols.insert(
                        name.clone(),
                        Symbol {
                            name,
                            ty,
                            kind: SymbolKind::Parameter { value },
                            span: ent.span,
                        },
                    );
                    continue;
                }
                let dims = ent.dims.as_ref().or(decl.dimension.as_ref());
                let kind = match dims {
                    Some(dims) => SymbolKind::Array {
                        shape: self.resolve_shape(dims)?,
                    },
                    None => SymbolKind::Scalar,
                };
                self.symbols.insert(
                    name.clone(),
                    Symbol {
                        name,
                        ty,
                        kind,
                        span: ent.span,
                    },
                );
            }
        }
        Ok(())
    }

    fn collect_directives(&mut self, program: &Program) -> LangResult<()> {
        for d in &program.directives {
            match d {
                Directive::Processors { name, shape, span } => {
                    let mut extents = Vec::new();
                    for e in shape {
                        let v = self.const_eval(e)?.as_i64().ok_or_else(|| {
                            LangError::sema("PROCESSORS extent must be integer", *span)
                        })?;
                        if v < 1 {
                            return Err(LangError::sema("PROCESSORS extent must be >= 1", *span));
                        }
                        extents.push(v);
                    }
                    self.symbols.insert(
                        name.clone(),
                        Symbol {
                            name: name.clone(),
                            ty: TypeSpec::Integer,
                            kind: SymbolKind::Processors { shape: extents },
                            span: *span,
                        },
                    );
                }
                Directive::Template { name, shape, span } => {
                    let shape = self.resolve_shape(shape)?;
                    self.symbols.insert(
                        name.clone(),
                        Symbol {
                            name: name.clone(),
                            ty: TypeSpec::Integer,
                            kind: SymbolKind::Template { shape },
                            span: *span,
                        },
                    );
                }
                Directive::Independent { .. } => {}
                Directive::Align {
                    alignee,
                    dummies,
                    target,
                    target_subs,
                    span,
                } => {
                    let al = self.symbols.get(alignee).ok_or_else(|| {
                        LangError::sema(format!("ALIGN of undeclared `{alignee}`"), *span)
                    })?;
                    let rank = al.shape().map(|s| s.len()).unwrap_or(0);
                    if dummies.len() != rank {
                        return Err(LangError::sema(
                            format!(
                                "ALIGN dummies ({}) do not match rank of `{alignee}` ({rank})",
                                dummies.len()
                            ),
                            *span,
                        ));
                    }
                    let tgt = self.symbols.get(target).ok_or_else(|| {
                        LangError::sema(format!("ALIGN WITH undeclared `{target}`"), *span)
                    })?;
                    let trank = tgt.shape().map(|s| s.len()).unwrap_or(0);
                    if !target_subs.is_empty() && target_subs.len() != trank {
                        return Err(LangError::sema(
                            format!("ALIGN target subscripts do not match rank of `{target}`"),
                            *span,
                        ));
                    }
                    for sub in target_subs {
                        if let AlignSub::Affine { dummy, .. } = sub {
                            if !dummies.contains(dummy) {
                                return Err(LangError::sema(
                                    format!("align subscript uses unknown dummy `{dummy}`"),
                                    *span,
                                ));
                            }
                        }
                    }
                }
                Directive::Distribute {
                    target,
                    formats,
                    onto,
                    span,
                } => {
                    let tgt = self.symbols.get(target).ok_or_else(|| {
                        LangError::sema(format!("DISTRIBUTE of undeclared `{target}`"), *span)
                    })?;
                    let rank = tgt.shape().map(|s| s.len()).unwrap_or(0);
                    if formats.len() != rank {
                        return Err(LangError::sema(
                            format!(
                                "DISTRIBUTE formats ({}) do not match rank of `{target}` ({rank})",
                                formats.len()
                            ),
                            *span,
                        ));
                    }
                    if let Some(p) = onto {
                        match self.symbols.get(p).map(|s| &s.kind) {
                            Some(SymbolKind::Processors { shape }) => {
                                let dist_dims = formats
                                    .iter()
                                    .filter(|f| **f != DistFormat::Degenerate)
                                    .count();
                                if dist_dims != shape.len() && !(dist_dims == 0 && shape.len() == 1)
                                {
                                    return Err(LangError::sema(
                                        format!(
                                            "distributed dimensions ({dist_dims}) do not match \
                                             PROCESSORS rank ({})",
                                            shape.len()
                                        ),
                                        *span,
                                    ));
                                }
                            }
                            _ => {
                                return Err(LangError::sema(
                                    format!("ONTO names unknown PROCESSORS `{p}`"),
                                    *span,
                                ))
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn resolve_shape(&self, dims: &[DimBound]) -> LangResult<Vec<(i64, i64)>> {
        let mut shape = Vec::with_capacity(dims.len());
        for d in dims {
            let lb = match &d.lower {
                Some(e) => self
                    .const_eval(e)?
                    .as_i64()
                    .ok_or_else(|| LangError::sema("array bound must be integer", e.span()))?,
                None => 1,
            };
            let ub = self
                .const_eval(&d.upper)?
                .as_i64()
                .ok_or_else(|| LangError::sema("array bound must be integer", d.upper.span()))?;
            if ub < lb {
                return Err(LangError::sema(
                    format!("array bound {ub} below lower bound {lb}"),
                    d.upper.span(),
                ));
            }
            shape.push((lb, ub));
        }
        Ok(shape)
    }

    /// Fold a constant expression (literals, PARAMETERs, arithmetic, a few
    /// intrinsics) into a value.
    fn const_eval(&self, e: &Expr) -> LangResult<Value> {
        const_eval_in(e, &self.symbols, self.overrides)
    }

    // ---- intrinsic resolution / reference checking -----------------------

    fn rewrite_stmt(&mut self, st: &Stmt) -> LangResult<Stmt> {
        Ok(match st {
            Stmt::Assign { lhs, rhs, span } => {
                self.ensure_variable(lhs)?;
                Stmt::Assign {
                    lhs: self.rewrite_lhs(lhs)?,
                    rhs: self.rewrite_expr(rhs)?,
                    span: *span,
                }
            }
            Stmt::Forall { header, body, span } => {
                let mut triplets = Vec::new();
                for t in &header.triplets {
                    triplets.push(ForallTriplet {
                        var: t.var.clone(),
                        lo: self.rewrite_expr(&t.lo)?,
                        hi: self.rewrite_expr(&t.hi)?,
                        stride: t
                            .stride
                            .as_ref()
                            .map(|s| self.rewrite_expr(s))
                            .transpose()?,
                    });
                }
                let mask = header
                    .mask
                    .as_ref()
                    .map(|m| self.rewrite_expr(m))
                    .transpose()?;
                let body = body
                    .iter()
                    .map(|s| self.rewrite_stmt(s))
                    .collect::<LangResult<Vec<_>>>()?;
                Stmt::Forall {
                    header: ForallHeader { triplets, mask },
                    body,
                    span: *span,
                }
            }
            Stmt::Where {
                mask,
                body,
                elsewhere,
                span,
            } => Stmt::Where {
                mask: self.rewrite_expr(mask)?,
                body: body
                    .iter()
                    .map(|s| self.rewrite_stmt(s))
                    .collect::<LangResult<Vec<_>>>()?,
                elsewhere: elsewhere
                    .iter()
                    .map(|s| self.rewrite_stmt(s))
                    .collect::<LangResult<Vec<_>>>()?,
                span: *span,
            },
            Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
                span,
            } => {
                self.ensure_scalar(var);
                Stmt::Do {
                    var: var.clone(),
                    lo: self.rewrite_expr(lo)?,
                    hi: self.rewrite_expr(hi)?,
                    step: step.as_ref().map(|s| self.rewrite_expr(s)).transpose()?,
                    body: body
                        .iter()
                        .map(|s| self.rewrite_stmt(s))
                        .collect::<LangResult<Vec<_>>>()?,
                    span: *span,
                }
            }
            Stmt::DoWhile { cond, body, span } => Stmt::DoWhile {
                cond: self.rewrite_expr(cond)?,
                body: body
                    .iter()
                    .map(|s| self.rewrite_stmt(s))
                    .collect::<LangResult<Vec<_>>>()?,
                span: *span,
            },
            Stmt::If {
                arms,
                else_body,
                span,
            } => Stmt::If {
                arms: arms
                    .iter()
                    .map(|(c, b)| {
                        Ok((
                            self.rewrite_expr(c)?,
                            b.iter()
                                .map(|s| self.rewrite_stmt(s))
                                .collect::<LangResult<Vec<_>>>()?,
                        ))
                    })
                    .collect::<LangResult<Vec<_>>>()?,
                else_body: else_body
                    .iter()
                    .map(|s| self.rewrite_stmt(s))
                    .collect::<LangResult<Vec<_>>>()?,
                span: *span,
            },
            Stmt::Call { name, args, span } => Stmt::Call {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| self.rewrite_expr(a))
                    .collect::<LangResult<Vec<_>>>()?,
                span: *span,
            },
            Stmt::Print { items, span } => Stmt::Print {
                items: items
                    .iter()
                    .map(|a| self.rewrite_expr(a))
                    .collect::<LangResult<Vec<_>>>()?,
                span: *span,
            },
            Stmt::Stop { span } => Stmt::Stop { span: *span },
            // Parallel I/O names whole arrays; there are no expressions to
            // rewrite. Validation (declared? distributed?) happens in the
            // compiler's lowering, where the distribution map exists.
            Stmt::Io { kind, arrays, span } => Stmt::Io {
                kind: *kind,
                arrays: arrays.clone(),
                span: *span,
            },
        })
    }

    fn rewrite_lhs(&mut self, r: &DataRef) -> LangResult<DataRef> {
        let mut subs = Vec::with_capacity(r.subs.len());
        for s in &r.subs {
            subs.push(match s {
                Subscript::Index(e) => Subscript::Index(self.rewrite_expr(e)?),
                Subscript::Triplet { lo, hi, stride } => Subscript::Triplet {
                    lo: lo.as_ref().map(|e| self.rewrite_expr(e)).transpose()?,
                    hi: hi.as_ref().map(|e| self.rewrite_expr(e)).transpose()?,
                    stride: stride.as_ref().map(|e| self.rewrite_expr(e)).transpose()?,
                },
            });
        }
        Ok(DataRef {
            name: r.name.clone(),
            subs,
            span: r.span,
        })
    }

    fn rewrite_expr(&mut self, e: &Expr) -> LangResult<Expr> {
        Ok(match e {
            Expr::IntLit(..) | Expr::RealLit(..) | Expr::LogicalLit(..) | Expr::StrLit(..) => {
                e.clone()
            }
            Expr::Ref(r) => {
                let declared = self.symbols.contains_key(&r.name);
                if !declared {
                    if let Some(intr) = Intrinsic::from_name(&r.name) {
                        // Intrinsic reference: subscripts become arguments.
                        let mut args = Vec::new();
                        for s in &r.subs {
                            match s {
                                Subscript::Index(a) => args.push(self.rewrite_expr(a)?),
                                Subscript::Triplet { .. } => {
                                    // Section argument, e.g. SUM(A(1:N)) —
                                    // represent as a Ref arg with the section.
                                    return Err(LangError::sema(
                                        format!(
                                            "section arguments to {} must be whole arrays in \
                                             this subset",
                                            intr.name()
                                        ),
                                        r.span,
                                    ));
                                }
                            }
                        }
                        return Ok(Expr::Intrinsic {
                            name: intr,
                            args,
                            span: r.span,
                        });
                    }
                    if r.subs.is_empty() {
                        // Implicitly typed scalar (e.g. forall dummies used
                        // in expressions).
                        self.ensure_scalar(&r.name);
                    } else {
                        return Err(LangError::sema(
                            format!("reference to undeclared array or function `{}`", r.name),
                            r.span,
                        ));
                    }
                }
                Expr::Ref(self.rewrite_lhs(r)?)
            }
            Expr::Intrinsic { name, args, span } => Expr::Intrinsic {
                name: *name,
                args: args
                    .iter()
                    .map(|a| self.rewrite_expr(a))
                    .collect::<LangResult<Vec<_>>>()?,
                span: *span,
            },
            Expr::Unary { op, operand, span } => Expr::Unary {
                op: *op,
                operand: Box::new(self.rewrite_expr(operand)?),
                span: *span,
            },
            Expr::Binary { op, lhs, rhs, span } => Expr::Binary {
                op: *op,
                lhs: Box::new(self.rewrite_expr(lhs)?),
                rhs: Box::new(self.rewrite_expr(rhs)?),
                span: *span,
            },
        })
    }

    fn ensure_variable(&mut self, r: &DataRef) -> LangResult<()> {
        match self.symbols.get(&r.name).map(|s| &s.kind) {
            Some(SymbolKind::Parameter { .. }) => Err(LangError::sema(
                format!("cannot assign to PARAMETER `{}`", r.name),
                r.span,
            )),
            Some(SymbolKind::Template { .. }) | Some(SymbolKind::Processors { .. }) => {
                Err(LangError::sema(
                    format!("cannot assign to mapping object `{}`", r.name),
                    r.span,
                ))
            }
            Some(_) => Ok(()),
            None if r.subs.is_empty() => {
                self.ensure_scalar(&r.name);
                Ok(())
            }
            None => Err(LangError::sema(
                format!("assignment to undeclared array `{}`", r.name),
                r.span,
            )),
        }
    }

    fn ensure_scalar(&mut self, name: &str) {
        if !self.symbols.contains_key(name) {
            self.symbols.insert(
                name.to_string(),
                Symbol {
                    name: name.to_string(),
                    ty: implicit_type(name),
                    kind: SymbolKind::Scalar,
                    span: Span::SYNTHETIC,
                },
            );
        }
    }
}

/// Whether a decl came from an untyped F77 `PARAMETER (..)` statement.
/// (The parser marks those by using the Integer placeholder type with
/// `parameter = true` and no `dimension`; we detect "untyped" by checking
/// that no sibling entity carries dims and the decl-level type would be the
/// placeholder. A dedicated flag would be cleaner; this keeps the AST lean.)
fn decl_is_untyped(decl: &Decl) -> bool {
    decl.parameter
        && decl.type_spec == TypeSpec::Integer
        && decl.dimension.is_none()
        && decl
            .entities
            .iter()
            .all(|e| e.dims.is_none() && e.init.is_some())
}

/// Evaluate a constant expression against a symbol table.
pub fn const_eval_in(
    e: &Expr,
    symbols: &SymbolTable,
    overrides: &BTreeMap<String, i64>,
) -> LangResult<Value> {
    use Value::*;
    let err = |m: &str, s: Span| Err(LangError::sema(m.to_string(), s));
    match e {
        Expr::IntLit(v, _) => Ok(Int(*v)),
        Expr::RealLit(v, _) => Ok(Real(*v)),
        Expr::LogicalLit(v, _) => Ok(Logical(*v)),
        Expr::StrLit(s, _) => Ok(Str(s.clone())),
        Expr::Ref(r) => {
            if !r.subs.is_empty() {
                return err("array reference is not constant", r.span);
            }
            if let Some(ov) = overrides.get(&r.name) {
                return Ok(Int(*ov));
            }
            match symbols.get(&r.name).map(|s| &s.kind) {
                Some(SymbolKind::Parameter { value }) => Ok(value.clone()),
                _ => err(&format!("`{}` is not a constant", r.name), r.span),
            }
        }
        Expr::Intrinsic { name, args, span } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| const_eval_in(a, symbols, overrides))
                .collect::<LangResult<_>>()?;
            crate::value_ops::apply_intrinsic_scalar(*name, &vals)
                .ok_or_else(|| LangError::sema("intrinsic is not constant-foldable here", *span))
        }
        Expr::Unary { op, operand, span } => {
            let v = const_eval_in(operand, symbols, overrides)?;
            crate::value_ops::apply_unary(*op, &v)
                .ok_or_else(|| LangError::sema("bad operand for unary operator", *span))
        }
        Expr::Binary { op, lhs, rhs, span } => {
            let l = const_eval_in(lhs, symbols, overrides)?;
            let r = const_eval_in(rhs, symbols, overrides)?;
            crate::value_ops::apply_binary(*op, &l, &r)
                .ok_or_else(|| LangError::sema("bad operands for binary operator", *span))
        }
    }
}

/// Identify critical variables (non-constant names occurring in loop bounds,
/// forall triplets, and branch conditions) and try to resolve each by
/// definition tracing: a unique prior top-level assignment `v = <const>`.
fn trace_critical_variables(
    program: &Program,
    symbols: &SymbolTable,
) -> (BTreeMap<String, i64>, Vec<String>) {
    let mut critical: Vec<String> = Vec::new();

    fn names_in(e: &Expr, out: &mut Vec<String>, symbols: &SymbolTable) {
        match e {
            Expr::Ref(r) => {
                if r.subs.is_empty()
                    && !matches!(
                        symbols.get(&r.name).map(|s| &s.kind),
                        Some(SymbolKind::Parameter { .. })
                    )
                    && !out.contains(&r.name)
                {
                    out.push(r.name.clone());
                }
                for s in &r.subs {
                    match s {
                        Subscript::Index(e) => names_in(e, out, symbols),
                        Subscript::Triplet { lo, hi, stride } => {
                            for p in [lo, hi, stride].into_iter().flatten() {
                                names_in(p, out, symbols);
                            }
                        }
                    }
                }
            }
            Expr::Intrinsic { args, .. } => {
                for a in args {
                    names_in(a, out, symbols);
                }
            }
            Expr::Unary { operand, .. } => names_in(operand, out, symbols),
            Expr::Binary { lhs, rhs, .. } => {
                names_in(lhs, out, symbols);
                names_in(rhs, out, symbols);
            }
            _ => {}
        }
    }

    fn walk(stmts: &[Stmt], critical: &mut Vec<String>, symbols: &SymbolTable) {
        for st in stmts {
            match st {
                Stmt::Do {
                    lo,
                    hi,
                    step,
                    body,
                    var,
                    ..
                } => {
                    for e in [Some(lo), Some(hi), step.as_ref()].into_iter().flatten() {
                        names_in(e, critical, symbols);
                    }
                    critical.retain(|c| c != var);
                    walk(body, critical, symbols);
                }
                Stmt::DoWhile { cond, body, .. } => {
                    names_in(cond, critical, symbols);
                    walk(body, critical, symbols);
                }
                Stmt::Forall { header, body, .. } => {
                    for t in &header.triplets {
                        names_in(&t.lo, critical, symbols);
                        names_in(&t.hi, critical, symbols);
                        if let Some(s) = &t.stride {
                            names_in(s, critical, symbols);
                        }
                    }
                    // forall dummies are not critical
                    for t in &header.triplets {
                        critical.retain(|c| c != &t.var);
                    }
                    walk(body, critical, symbols);
                }
                Stmt::If {
                    arms, else_body, ..
                } => {
                    for (_, b) in arms {
                        walk(b, critical, symbols);
                    }
                    walk(else_body, critical, symbols);
                }
                Stmt::Where {
                    body, elsewhere, ..
                } => {
                    walk(body, critical, symbols);
                    walk(elsewhere, critical, symbols);
                }
                _ => {}
            }
        }
    }
    walk(&program.body, &mut critical, symbols);

    // Definition tracing: look for top-level `v = <const-expr>` assignments
    // preceding any loop, as the paper's abstraction parse does.
    let mut resolved = BTreeMap::new();
    let mut unresolved = Vec::new();
    'outer: for name in critical {
        for st in &program.body {
            if let Stmt::Assign { lhs, rhs, .. } = st {
                if lhs.name == name && lhs.subs.is_empty() {
                    if let Ok(v) = const_eval_in(rhs, symbols, &BTreeMap::new()) {
                        if let Some(i) = v.as_i64() {
                            resolved.insert(name.clone(), i);
                            continue 'outer;
                        }
                    }
                }
            }
        }
        unresolved.push(name);
    }
    (resolved, unresolved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn analyze_src(src: &str) -> AnalyzedProgram {
        analyze(&parse_program(src).unwrap(), &BTreeMap::new()).unwrap()
    }

    #[test]
    fn parameters_resolve_shapes() {
        let a =
            analyze_src("PROGRAM T\nINTEGER, PARAMETER :: N = 8\nREAL A(N, 2*N)\nA = 0.0\nEND\n");
        let sym = a.symbol("A").unwrap();
        assert_eq!(sym.shape().unwrap(), &[(1, 8), (1, 16)]);
        assert_eq!(sym.elem_count(), Some(128));
    }

    #[test]
    fn overrides_change_shapes() {
        let p = parse_program("PROGRAM T\nINTEGER, PARAMETER :: N = 8\nREAL A(N)\nA = 0.0\nEND\n")
            .unwrap();
        let mut ov = BTreeMap::new();
        ov.insert("N".to_string(), 256i64);
        let a = analyze(&p, &ov).unwrap();
        assert_eq!(a.symbol("A").unwrap().shape().unwrap(), &[(1, 256)]);
    }

    #[test]
    fn intrinsics_are_resolved() {
        let a = analyze_src("PROGRAM T\nREAL A(8), S\nS = SUM(A)\nEND\n");
        match &a.program.body[0] {
            Stmt::Assign {
                rhs: Expr::Intrinsic { name, args, .. },
                ..
            } => {
                assert_eq!(*name, Intrinsic::Sum);
                assert_eq!(args.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn undeclared_array_is_error() {
        let p = parse_program("PROGRAM T\nREAL S\nS = NOSUCH(3)\nEND\n").unwrap();
        assert!(analyze(&p, &BTreeMap::new()).is_err());
    }

    #[test]
    fn assign_to_parameter_is_error() {
        let p = parse_program("PROGRAM T\nINTEGER, PARAMETER :: N = 8\nN = 9\nEND\n").unwrap();
        assert!(analyze(&p, &BTreeMap::new()).is_err());
    }

    #[test]
    fn duplicate_decl_is_error() {
        let p = parse_program("PROGRAM T\nREAL A(8)\nREAL A(9)\nA = 0.0\nEND\n").unwrap();
        assert!(analyze(&p, &BTreeMap::new()).is_err());
    }

    #[test]
    fn directive_validation() {
        // rank mismatch in DISTRIBUTE
        let p = parse_program(
            "PROGRAM T\nREAL A(8,8)\n!HPF$ TEMPLATE TT(8,8)\n!HPF$ DISTRIBUTE TT(BLOCK) ONTO P\nA = 0.0\nEND\n",
        )
        .unwrap();
        assert!(analyze(&p, &BTreeMap::new()).is_err());
    }

    #[test]
    fn processors_symbol() {
        let a = analyze_src("PROGRAM T\nREAL A(8)\n!HPF$ PROCESSORS P(2,4)\nA = 0.0\nEND\n");
        match &a.symbol("P").unwrap().kind {
            SymbolKind::Processors { shape } => assert_eq!(shape, &vec![2, 4]),
            _ => panic!(),
        }
    }

    #[test]
    fn critical_variable_traced() {
        let a = analyze_src(
            "PROGRAM T\nINTEGER M\nREAL A(64)\nM = 32\nDO I = 1, M\nA(I) = 1.0\nEND DO\nEND\n",
        );
        assert_eq!(a.resolved_critical.get("M"), Some(&32));
        assert!(a.unresolved_critical.is_empty());
    }

    #[test]
    fn unresolvable_critical_reported() {
        let a = analyze_src(
            "PROGRAM T\nINTEGER M\nREAL A(64), S\nS = SUM(A)\nM = INT(S)\nDO I = 1, M\nA(I) = 1.0\nEND DO\nEND\n",
        );
        assert!(a.unresolved_critical.contains(&"M".to_string()));
    }

    #[test]
    fn implicit_typing_rule() {
        assert_eq!(implicit_type("I"), TypeSpec::Integer);
        assert_eq!(implicit_type("N2"), TypeSpec::Integer);
        assert_eq!(implicit_type("X"), TypeSpec::Real);
        assert_eq!(implicit_type("ALPHA"), TypeSpec::Real);
    }

    #[test]
    fn f77_parameter_gets_implicit_type() {
        let a = analyze_src("PROGRAM T\nPARAMETER (N = 100, X = 2.5)\nREAL A(N)\nA = X\nEND\n");
        assert_eq!(a.symbol("N").unwrap().ty, TypeSpec::Integer);
        assert_eq!(a.symbol("X").unwrap().ty, TypeSpec::Real);
        match &a.symbol("X").unwrap().kind {
            SymbolKind::Parameter { value } => assert_eq!(value, &Value::Real(2.5)),
            _ => panic!(),
        }
    }

    #[test]
    fn const_eval_arithmetic() {
        let a = analyze_src(
            "PROGRAM T\nINTEGER, PARAMETER :: N = 4\nINTEGER, PARAMETER :: M = N*N+2\nREAL A(M)\nA = 0.0\nEND\n",
        );
        match &a.symbol("M").unwrap().kind {
            SymbolKind::Parameter { value } => assert_eq!(value, &Value::Int(18)),
            _ => panic!(),
        }
    }
}
