//! Source-location tracking.
//!
//! Every token and AST node carries a [`Span`] so that downstream tools —
//! in particular the interpretation engine's per-source-line query interface
//! (the paper's second output form, §4.2) — can map performance metrics back
//! to lines of the application description.

use std::fmt;

/// A half-open byte range in the source text, plus 1-based line numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based line of the last character.
    pub end_line: u32,
}

impl Span {
    /// A span covering nothing, used for synthesized nodes (e.g. the
    /// `forall` statements the normalizer fabricates from array assignments).
    pub const SYNTHETIC: Span = Span {
        start: 0,
        end: 0,
        line: 0,
        end_line: 0,
    };

    /// Create a single-line span.
    pub fn new(start: u32, end: u32, line: u32) -> Self {
        Span {
            start,
            end,
            line,
            end_line: line,
        }
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// Synthetic spans are absorbing on either side.
    pub fn merge(self, other: Span) -> Span {
        if self == Span::SYNTHETIC {
            return other;
        }
        if other == Span::SYNTHETIC {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
            end_line: self.end_line.max(other.end_line),
        }
    }

    /// Whether this span was synthesized rather than read from source.
    pub fn is_synthetic(&self) -> bool {
        *self == Span::SYNTHETIC
    }

    /// Whether the given 1-based source line falls within this span.
    pub fn covers_line(&self, line: u32) -> bool {
        !self.is_synthetic() && self.line <= line && line <= self.end_line
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "<synthetic>")
        } else if self.line == self.end_line {
            write!(f, "line {}", self.line)
        } else {
            write!(f, "lines {}-{}", self.line, self.end_line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_commutative_and_covering() {
        let a = Span::new(0, 5, 1);
        let b = Span::new(10, 20, 3);
        let m = a.merge(b);
        assert_eq!(m, b.merge(a));
        assert_eq!(m.start, 0);
        assert_eq!(m.end, 20);
        assert_eq!(m.line, 1);
        assert_eq!(m.end_line, 3);
    }

    #[test]
    fn synthetic_is_identity_for_merge() {
        let a = Span::new(4, 9, 2);
        assert_eq!(Span::SYNTHETIC.merge(a), a);
        assert_eq!(a.merge(Span::SYNTHETIC), a);
    }

    #[test]
    fn covers_line_bounds() {
        let s = Span {
            start: 0,
            end: 10,
            line: 3,
            end_line: 5,
        };
        assert!(!s.covers_line(2));
        assert!(s.covers_line(3));
        assert!(s.covers_line(5));
        assert!(!s.covers_line(6));
        assert!(!Span::SYNTHETIC.covers_line(0));
    }
}
