//! Token definitions for the HPF/Fortran 90D subset.

use crate::span::Span;
use std::fmt;

/// A lexical token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// The kinds of token the lexer produces.
///
/// Fortran keywords are not distinguished here; identifiers are uppercased
/// and the parser matches keywords contextually (Fortran has no reserved
/// words — `IF` is a legal variable name in full Fortran; our subset keeps
/// the contextual flavour, which also simplifies the lexer).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword, uppercased (`X`, `FORALL`, `BLOCK`).
    Ident(String),
    /// Integer literal.
    IntLit(i64),
    /// Real literal (single or double precision form; `1.5`, `1E-3`, `2.D0`).
    RealLit(f64),
    /// Character string literal (quotes stripped).
    StrLit(String),
    /// `.TRUE.` / `.FALSE.`
    LogicalLit(bool),

    // Punctuation and operators
    LParen,
    RParen,
    Comma,
    Colon,
    DoubleColon,
    Assign, // =
    Plus,
    Minus,
    Star,
    Slash,
    Power,  // **
    Concat, // //
    Eq,     // == or .EQ.
    Ne,     // /= or .NE.
    Lt,
    Le,
    Gt,
    Ge,
    And,  // .AND.
    Or,   // .OR.
    Not,  // .NOT.
    Eqv,  // .EQV.
    Neqv, // .NEQV.
    Percent,

    /// Start of an `!HPF$` directive line.
    HpfDirective,
    /// End of a statement (newline or `;`).
    Newline,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// If this token is an identifier, return its (uppercased) text.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this is the identifier `kw` (already-uppercase keyword text).
    pub fn is_kw(&self, kw: &str) -> bool {
        debug_assert_eq!(kw, kw.to_ascii_uppercase());
        matches!(self, TokenKind::Ident(s) if s == kw)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::IntLit(v) => write!(f, "{v}"),
            TokenKind::RealLit(v) => write!(f, "{v}"),
            TokenKind::StrLit(s) => write!(f, "'{s}'"),
            TokenKind::LogicalLit(true) => write!(f, ".TRUE."),
            TokenKind::LogicalLit(false) => write!(f, ".FALSE."),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::DoubleColon => write!(f, "::"),
            TokenKind::Assign => write!(f, "="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Power => write!(f, "**"),
            TokenKind::Concat => write!(f, "//"),
            TokenKind::Eq => write!(f, "=="),
            TokenKind::Ne => write!(f, "/="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::And => write!(f, ".AND."),
            TokenKind::Or => write!(f, ".OR."),
            TokenKind::Not => write!(f, ".NOT."),
            TokenKind::Eqv => write!(f, ".EQV."),
            TokenKind::Neqv => write!(f, ".NEQV."),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::HpfDirective => write!(f, "!HPF$"),
            TokenKind::Newline => write!(f, "<newline>"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}
