//! Runtime/compile-time scalar values shared by the const-evaluator, the
//! functional interpreter and the compiler's critical-variable resolution.

use crate::ast::TypeSpec;
use std::fmt;

/// A scalar Fortran value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Real(f64),
    Logical(bool),
    Str(String),
}

impl Value {
    pub fn type_spec(&self) -> TypeSpec {
        match self {
            Value::Int(_) => TypeSpec::Integer,
            Value::Real(_) => TypeSpec::Real,
            Value::Logical(_) => TypeSpec::Logical,
            Value::Str(_) => TypeSpec::Integer, // strings only appear in PRINT
        }
    }

    /// Numeric coercion to f64 (Fortran mixed-mode arithmetic).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Real(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view, truncating reals (Fortran INT()-style only when asked).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Real(v) => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Logical(b) => Some(*b),
            _ => None,
        }
    }

    /// Truthiness of a mask element.
    pub fn truthy(&self) -> bool {
        matches!(self, Value::Logical(true))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
            Value::Logical(true) => write!(f, "T"),
            Value::Logical(false) => write!(f, "F"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Real(2.5).as_i64(), Some(2));
        assert_eq!(Value::Logical(true).as_f64(), None);
        assert!(Value::Logical(true).truthy());
        assert!(!Value::Int(1).truthy());
    }
}
