//! Scalar operator semantics shared by the const-evaluator (`sema`) and the
//! functional interpreter (`hpf-eval`).
//!
//! Fortran mixed-mode rules: INTEGER op INTEGER stays INTEGER (with truncating
//! division); any REAL operand promotes the operation to REAL.

use crate::ast::{BinOp, Intrinsic, UnOp};
use crate::value::Value;

/// Apply a unary operator; `None` on a type error.
pub fn apply_unary(op: UnOp, v: &Value) -> Option<Value> {
    match (op, v) {
        (UnOp::Neg, Value::Int(i)) => Some(Value::Int(-i)),
        (UnOp::Neg, Value::Real(r)) => Some(Value::Real(-r)),
        (UnOp::Plus, Value::Int(_) | Value::Real(_)) => Some(v.clone()),
        (UnOp::Not, Value::Logical(b)) => Some(Value::Logical(!b)),
        _ => None,
    }
}

/// Apply a binary operator; `None` on a type error.
pub fn apply_binary(op: BinOp, l: &Value, r: &Value) -> Option<Value> {
    use BinOp::*;
    use Value::*;
    match op {
        Add | Sub | Mul | Div | Pow => match (l, r) {
            (Int(a), Int(b)) => Some(match op {
                Add => Int(a.wrapping_add(*b)),
                Sub => Int(a.wrapping_sub(*b)),
                Mul => Int(a.wrapping_mul(*b)),
                Div => {
                    if *b == 0 {
                        return None;
                    }
                    Int(a.wrapping_div(*b))
                }
                Pow => {
                    if *b >= 0 {
                        Int(a.wrapping_pow((*b).min(u32::MAX as i64) as u32))
                    } else {
                        // INTEGER ** negative is 0 (or 1/±1) in Fortran.
                        Int(if a.abs() == 1 {
                            a.pow((-b % 2) as u32)
                        } else {
                            0
                        })
                    }
                }
                _ => unreachable!(),
            }),
            _ => {
                let a = l.as_f64()?;
                let b = r.as_f64()?;
                Some(Real(match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    Pow => a.powf(b),
                    _ => unreachable!(),
                }))
            }
        },
        Eq | Ne | Lt | Le | Gt | Ge => {
            if let (Logical(a), Logical(b)) = (l, r) {
                return match op {
                    Eq => Some(Logical(a == b)),
                    Ne => Some(Logical(a != b)),
                    _ => None,
                };
            }
            let a = l.as_f64()?;
            let b = r.as_f64()?;
            Some(Logical(match op {
                Eq => a == b,
                Ne => a != b,
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            }))
        }
        And | Or | Eqv | Neqv => {
            let a = l.as_bool()?;
            let b = r.as_bool()?;
            Some(Logical(match op {
                And => a && b,
                Or => a || b,
                Eqv => a == b,
                Neqv => a != b,
                _ => unreachable!(),
            }))
        }
    }
}

/// Apply an *elemental* intrinsic to scalar arguments; `None` if the
/// intrinsic is transformational (array-valued) or arguments are malformed.
pub fn apply_intrinsic_scalar(intr: Intrinsic, args: &[Value]) -> Option<Value> {
    use Intrinsic::*;
    use Value as V;
    let f1 = |f: fn(f64) -> f64| args.first()?.as_f64().map(|v| V::Real(f(v)));
    match intr {
        Abs => match args.first()? {
            V::Int(v) => Some(V::Int(v.abs())),
            V::Real(v) => Some(V::Real(v.abs())),
            _ => None,
        },
        Sqrt => f1(f64::sqrt),
        Exp => f1(f64::exp),
        Log => f1(f64::ln),
        Log10 => f1(f64::log10),
        Sin => f1(f64::sin),
        Cos => f1(f64::cos),
        Tan => f1(f64::tan),
        Atan => f1(f64::atan),
        Min | Max => {
            if args.is_empty() {
                return None;
            }
            let all_int = args.iter().all(|a| matches!(a, V::Int(_)));
            if all_int {
                let it = args.iter().filter_map(|a| a.as_i64());
                Some(V::Int(if intr == Min { it.min()? } else { it.max()? }))
            } else {
                let mut best = args.first()?.as_f64()?;
                for a in &args[1..] {
                    let v = a.as_f64()?;
                    best = if intr == Min {
                        best.min(v)
                    } else {
                        best.max(v)
                    };
                }
                Some(V::Real(best))
            }
        }
        Mod => match (args.first()?, args.get(1)?) {
            (V::Int(a), V::Int(b)) if *b != 0 => Some(V::Int(a % b)),
            (a, b) => {
                let (a, b) = (a.as_f64()?, b.as_f64()?);
                Some(V::Real(a % b))
            }
        },
        Sign => {
            let a = args.first()?.as_f64()?;
            let b = args.get(1)?.as_f64()?;
            let m = a.abs();
            Some(V::Real(if b < 0.0 { -m } else { m }))
        }
        Int | Nint => {
            let a = args.first()?.as_f64()?;
            Some(Value::Int(if intr == Nint {
                a.round() as i64
            } else {
                a as i64
            }))
        }
        Real | Dble | Float => Some(Value::Real(args.first()?.as_f64()?)),
        _ => None, // transformational intrinsics handled at array level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;

    #[test]
    fn integer_division_truncates() {
        assert_eq!(
            apply_binary(BinOp::Div, &Value::Int(7), &Value::Int(2)),
            Some(Value::Int(3))
        );
        assert_eq!(
            apply_binary(BinOp::Div, &Value::Int(7), &Value::Int(0)),
            None
        );
    }

    #[test]
    fn mixed_mode_promotes() {
        assert_eq!(
            apply_binary(BinOp::Add, &Value::Int(1), &Value::Real(0.5)),
            Some(Value::Real(1.5))
        );
    }

    #[test]
    fn integer_pow() {
        assert_eq!(
            apply_binary(BinOp::Pow, &Value::Int(2), &Value::Int(10)),
            Some(Value::Int(1024))
        );
        assert_eq!(
            apply_binary(BinOp::Pow, &Value::Int(2), &Value::Int(-1)),
            Some(Value::Int(0))
        );
    }

    #[test]
    fn relationals() {
        assert_eq!(
            apply_binary(BinOp::Le, &Value::Int(3), &Value::Real(3.0)),
            Some(Value::Logical(true))
        );
        assert_eq!(
            apply_binary(BinOp::Eq, &Value::Logical(true), &Value::Logical(false)),
            Some(Value::Logical(false))
        );
        assert_eq!(
            apply_binary(BinOp::Lt, &Value::Logical(true), &Value::Logical(false)),
            None
        );
    }

    #[test]
    fn logicals() {
        assert_eq!(
            apply_binary(BinOp::And, &Value::Logical(true), &Value::Logical(false)),
            Some(Value::Logical(false))
        );
        assert_eq!(
            apply_binary(BinOp::Neqv, &Value::Logical(true), &Value::Logical(false)),
            Some(Value::Logical(true))
        );
    }

    #[test]
    fn intrinsic_scalars() {
        use crate::ast::Intrinsic as I;
        assert_eq!(
            apply_intrinsic_scalar(I::Abs, &[Value::Int(-3)]),
            Some(Value::Int(3))
        );
        assert_eq!(
            apply_intrinsic_scalar(I::Sqrt, &[Value::Real(4.0)]),
            Some(Value::Real(2.0))
        );
        assert_eq!(
            apply_intrinsic_scalar(I::Min, &[Value::Int(3), Value::Int(1), Value::Int(2)]),
            Some(Value::Int(1))
        );
        assert_eq!(
            apply_intrinsic_scalar(I::Mod, &[Value::Int(7), Value::Int(3)]),
            Some(Value::Int(1))
        );
        assert_eq!(
            apply_intrinsic_scalar(I::Nint, &[Value::Real(2.6)]),
            Some(Value::Int(3))
        );
        assert_eq!(apply_intrinsic_scalar(I::Sum, &[Value::Int(1)]), None);
    }

    #[test]
    fn unary_ops() {
        assert_eq!(
            apply_unary(UnOp::Neg, &Value::Real(2.0)),
            Some(Value::Real(-2.0))
        );
        assert_eq!(
            apply_unary(UnOp::Not, &Value::Logical(false)),
            Some(Value::Logical(true))
        );
        assert_eq!(apply_unary(UnOp::Not, &Value::Int(1)), None);
    }
}
