//! Robustness: the front end must never panic — malformed input produces
//! diagnostics, arbitrary bytes produce lexical errors, and every error
//! carries a usable source location.

use hpf_lang::{analyze, lex, parse_program, LangError, Phase};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[test]
fn malformed_programs_error_cleanly() {
    let cases: &[(&str, Phase)] = &[
        ("", Phase::Parse),
        ("PROGRAM", Phase::Parse),
        ("PROGRAM T\nX = \nEND\n", Phase::Parse),
        ("PROGRAM T\nFORALL () X = 1\nEND\n", Phase::Parse),
        ("PROGRAM T\nDO I = 1\nEND DO\nEND\n", Phase::Parse),
        ("PROGRAM T\nIF (1 > 0) THEN\nEND\n", Phase::Parse),
        ("PROGRAM T\nWHERE (A > 0)\nEND\n", Phase::Parse),
        ("PROGRAM T\n!HPF$ FROBNICATE X\nX = 1\nEND\n", Phase::Parse),
        ("PROGRAM T\n!HPF$ DISTRIBUTE A(WEIRD)\nEND\n", Phase::Parse),
        ("PROGRAM T\nREAL A(-5)\nA = 0.0\nEND\n", Phase::Sema),
        (
            "PROGRAM T\nINTEGER, PARAMETER :: N = 'abc'\nEND\n",
            Phase::Sema,
        ),
        ("PROGRAM T\nX = 'unterminated\nEND\n", Phase::Lex),
    ];
    for (src, phase) in cases {
        let err: LangError = match parse_program(src) {
            Err(e) => e,
            Ok(p) => match analyze(&p, &BTreeMap::new()) {
                Err(e) => e,
                Ok(_) => panic!("expected failure for {src:?}"),
            },
        };
        assert_eq!(err.phase, *phase, "{src:?} → {err}");
        // Message renders with a location.
        let msg = err.to_string();
        assert!(msg.contains("error"), "{msg}");
    }
}

#[test]
fn independent_directive_accepted() {
    let src = "
PROGRAM T
REAL A(8)
!HPF$ PROCESSORS P(2)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
!HPF$ INDEPENDENT
FORALL (I = 1:8) A(I) = 1.0
END
";
    let p = parse_program(src).unwrap();
    assert!(p
        .directives
        .iter()
        .any(|d| matches!(d, hpf_lang::Directive::Independent { .. })));
    analyze(&p, &BTreeMap::new()).unwrap();
}

#[test]
fn deeply_nested_constructs_parse() {
    let mut src = String::from("PROGRAM T\nINTEGER K1, K2, K3, K4\nREAL X\n");
    src.push_str("DO K1 = 1, 2\nDO K2 = 1, 2\nDO K3 = 1, 2\nDO K4 = 1, 2\n");
    src.push_str("IF (X > 0.0) THEN\nIF (X > 1.0) THEN\nX = X - 1.0\nEND IF\nEND IF\n");
    src.push_str("END DO\nEND DO\nEND DO\nEND DO\nEND\n");
    let p = parse_program(&src).unwrap();
    analyze(&p, &BTreeMap::new()).unwrap();
}

#[test]
fn long_continuation_chains() {
    let mut src = String::from("PROGRAM T\nREAL X\nX = 0.0");
    for _ in 0..40 {
        src.push_str(" + &\n  1.0");
    }
    src.push_str("\nEND\n");
    let p = parse_program(&src).unwrap();
    let a = analyze(&p, &BTreeMap::new()).unwrap();
    let out = hpf_eval::run(&a).unwrap();
    assert_eq!(out.scalars.get("X").and_then(|v| v.as_f64()), Some(40.0));
}

proptest! {
    /// The lexer never panics on arbitrary printable input.
    #[test]
    fn lexer_total_on_printable(s in "[ -~\n]{0,200}") {
        let _ = lex(&s);
    }

    /// The lexer never panics on arbitrary bytes that form a string.
    #[test]
    fn lexer_total_on_unicode(s in "\\PC{0,100}") {
        let _ = lex(&s);
    }

    /// The parser never panics on arbitrary printable input.
    #[test]
    fn parser_total(s in "[ -~\n]{0,300}") {
        let _ = parse_program(&s);
    }

    /// Numbers round-trip through the lexer.
    #[test]
    fn integer_literals_roundtrip(v in 0i64..1_000_000_000) {
        let toks = lex(&format!("{v}")).unwrap();
        assert_eq!(toks[0].kind, hpf_lang::token::TokenKind::IntLit(v));
    }

    /// Identifier case-insensitivity: lexing upper/lower forms agree.
    #[test]
    fn identifiers_case_insensitive(s in "[a-zA-Z][a-zA-Z0-9_]{0,12}") {
        let a = lex(&s).unwrap();
        let b = lex(&s.to_ascii_uppercase()).unwrap();
        assert_eq!(a[0].kind, b[0].kind);
    }
}
