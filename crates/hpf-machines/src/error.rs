//! Typed topology/registry errors.
//!
//! These replace the DES network's old hard assertions (`dims <= 6`,
//! `<= 1024` nodes) on every user-reachable path: a bad machine name or
//! an out-of-range node count comes back as a value the caller can turn
//! into a structured 400 (`hpf-serve`) or a CLI diagnostic, never a
//! panic.

/// A machine/topology request the registry cannot satisfy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// No registered backend with this name.
    UnknownMachine {
        name: String,
        available: Vec<&'static str>,
    },
    /// The node count is outside what the machine's topology supports
    /// (for example, more nodes than the link-occupancy tables are sized
    /// for — the bound that used to be an `assert!`).
    InvalidNodes {
        machine: String,
        nodes: usize,
        reason: String,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::UnknownMachine { name, available } => write!(
                f,
                "unknown machine `{name}` (available: {})",
                available.join(", ")
            ),
            TopologyError::InvalidNodes {
                machine,
                nodes,
                reason,
            } => write!(
                f,
                "machine `{machine}` cannot run on {nodes} node(s): {reason}"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_machine_and_alternatives() {
        let e = TopologyError::UnknownMachine {
            name: "cray".into(),
            available: vec!["ipsc860", "torus3d"],
        };
        let s = e.to_string();
        assert!(s.contains("cray") && s.contains("ipsc860") && s.contains("torus3d"));
        let e = TopologyError::InvalidNodes {
            machine: "multicore".into(),
            nodes: 4096,
            reason: "at most 128 cores".into(),
        };
        assert!(e.to_string().contains("4096"));
    }
}
