//! # hpf-machines — the multi-backend machine registry
//!
//! The paper's system-characterization methodology (a SAG of SAUs, §3.1)
//! is explicitly machine-generic, but the original reproduction hardwired
//! the one machine the paper measured: the iPSC/860 hypercube. This crate
//! is the abstraction seam that makes the rest of the stack retargetable:
//!
//! * [`Topology`] — node-count validation, neighbor/route enumeration and
//!   link indexing for the DES occupancy model. Four implementations:
//!   the binary hypercube (e-cube routing), a k-ary torus/mesh
//!   (dimension-ordered shortest-wrap routing), a two-level fat tree
//!   (up/down routing through switch vertices), and an idealized
//!   crossbar (receiver-port serialization).
//! * [`MachineModel`] — a named machine backend: SAU parameter tables
//!   (via [`machine::MachineModel`]), a topology factory, and the
//!   fault-plan degradation hook. The iPSC/860 is re-expressed as the
//!   first registered backend with zero behavioral change.
//! * [`mod@registry`]/[`fn@machine`] — the `MachineRegistry`: name → backend,
//!   following the ReFrame/HPL per-system reference-table idiom
//!   (machine name → expected calibration numbers ± tolerance, see
//!   [`refs::calibration_references`]).
//! * [`TopologyError`] — the typed error that replaces the old
//!   route-table hard assertions; `report` converts it into a
//!   `PipelineError` so serve answers a structured 400 and the CLIs
//!   print a diagnostic instead of panicking.
//!
//! The crate deliberately depends only on `machine`: calibration runs
//! (which need the DES) live in `ipsc-sim::calibrate_backend`, and the
//! registry's reference tables are validated by tests there.

pub mod error;
pub mod refs;
pub mod registry;
pub mod topology;

pub use error::TopologyError;
pub use refs::{calibration_references, CalibrationReference};
pub use registry::{machine, machine_names, registry, MachineModel, DEFAULT_MACHINE};
pub use topology::{build_topology, Topology};
