//! The machine registry: named backends behind the [`MachineModel`] trait.
//!
//! A backend owns three things: the SAU parameter tables for a node count
//! (via [`machine::MachineModel`]), the topology the DES routes over, and
//! the fault-plan degradation hook. The iPSC/860 backend delegates to
//! [`machine::ipsc860`] verbatim — same struct, same numbers — so routing
//! the existing stack through the registry is a zero-behavioral-change
//! refactor. Three further backends model the machine classes the paper's
//! methodology was designed to compare (§7): a Paragon-class 3-D
//! torus/mesh, an SP-2-class fat-tree cluster, and an idealized modern
//! multicore node.

use crate::error::TopologyError;
use crate::topology::{build_topology, Topology};
use machine::{
    CommComponent, FaultPlan, IoComponent, MemoryComponent, ProcessingComponent, Sau, TopologyDesc,
};

/// A named machine backend the pipeline can target.
pub trait MachineModel: Send + Sync {
    /// Registry key (stable, lowercase; used in CLIs, HTTP bodies and
    /// metric names).
    fn name(&self) -> &'static str;

    /// One-line human description.
    fn description(&self) -> &'static str;

    /// Inclusive `(min, max)` node counts the backend supports.
    fn node_range(&self) -> (usize, usize);

    /// Where the SAU parameter tables come from (§4.4 provenance).
    fn provenance(&self) -> &'static str;

    /// Parameter tables for `nodes` compute nodes.
    fn params(&self, nodes: usize) -> Result<machine::MachineModel, TopologyError>;

    /// Reject node counts outside [`MachineModel::node_range`].
    fn validate_nodes(&self, nodes: usize) -> Result<(), TopologyError> {
        let (lo, hi) = self.node_range();
        if nodes < lo || nodes > hi {
            return Err(TopologyError::InvalidNodes {
                machine: self.name().to_string(),
                nodes,
                reason: format!("supported node range is {lo}..={hi}"),
            });
        }
        Ok(())
    }

    /// Routing/occupancy topology for `nodes` compute nodes.
    fn topology(&self, nodes: usize) -> Result<Box<dyn Topology>, TopologyError> {
        let params = self.params(nodes)?;
        build_topology(&params.topology, nodes)
    }

    /// Fault-plan degradation: rescale the parameter tables for a
    /// degraded machine state (analytic hook; DES-level link rerouting
    /// remains hypercube-only).
    fn degrade(&self, params: &machine::MachineModel, plan: &FaultPlan) -> machine::MachineModel {
        params.degrade(plan)
    }
}

/// The default backend: the machine the paper measured.
pub const DEFAULT_MACHINE: &str = "ipsc860";

/// All registered backends, in registry order (ipsc860 first).
pub fn registry() -> &'static [&'static dyn MachineModel] {
    static BACKENDS: [&'static dyn MachineModel; 4] =
        [&Ipsc860, &Torus3d, &FatTreeCluster, &MulticoreNode];
    &BACKENDS
}

/// Registered backend names, in registry order.
pub fn machine_names() -> Vec<&'static str> {
    registry().iter().map(|b| b.name()).collect()
}

/// Look a backend up by name.
pub fn machine(name: &str) -> Result<&'static dyn MachineModel, TopologyError> {
    registry()
        .iter()
        .find(|b| b.name() == name)
        .copied()
        .ok_or_else(|| TopologyError::UnknownMachine {
            name: name.to_string(),
            available: machine_names(),
        })
}

/// Assemble a flat single-level SAG (system → interconnect → nodes) for
/// a non-iPSC backend. The iPSC/860 keeps its original two-level SAG
/// (SRM host + cube) via [`machine::ipsc860`].
#[allow(clippy::too_many_arguments)]
fn assemble(
    name: String,
    fabric: &str,
    node_label: &str,
    nodes: usize,
    proc_: ProcessingComponent,
    mem: MemoryComponent,
    comm: CommComponent,
    io: IoComponent,
    topology: TopologyDesc,
) -> machine::MachineModel {
    let mut net = Sau::structural(fabric);
    net.comm = Some(comm.clone());
    for i in 0..nodes {
        let mut n = Sau::structural(format!("{node_label} {i}"));
        n.processing = Some(proc_.clone());
        n.memory = Some(mem.clone());
        net.children.push(n);
    }
    let mut root = Sau::structural(name.clone());
    root.io = Some(io.clone());
    root.children.push(net);
    machine::MachineModel {
        name,
        sag: root,
        nodes,
        node_processing: proc_,
        node_memory: mem,
        comm,
        io,
        calibration: None,
        topology,
    }
}

/// Most-balanced three-way factorization of `nodes` (ascending extents;
/// deterministic), used to lay a node count out as a 3-D torus.
pub fn balanced_dims3(nodes: usize) -> Vec<usize> {
    let mut best = vec![1, 1, nodes.max(1)];
    let mut best_sum = best.iter().sum::<usize>();
    let mut a = 1;
    while a * a * a <= nodes {
        if nodes.is_multiple_of(a) {
            let rest = nodes / a;
            let mut b = a;
            while b * b <= rest {
                if rest.is_multiple_of(b) {
                    let c = rest / b;
                    let sum = a + b + c;
                    if sum < best_sum {
                        best_sum = sum;
                        best = vec![a, b, c];
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

/// The Intel iPSC/860 hypercube — the paper's machine, unchanged.
struct Ipsc860;

impl MachineModel for Ipsc860 {
    fn name(&self) -> &'static str {
        "ipsc860"
    }

    fn description(&self) -> &'static str {
        "Intel iPSC/860 hypercube: 40 MHz i860 nodes, NX Direct-Connect network"
    }

    fn node_range(&self) -> (usize, usize) {
        (1, 1024)
    }

    fn provenance(&self) -> &'static str {
        "vendor specifications + instruction counting; comm fitted by SAU calibration runs (paper §4.4)"
    }

    fn params(&self, nodes: usize) -> Result<machine::MachineModel, TopologyError> {
        self.validate_nodes(nodes)?;
        Ok(machine::ipsc860(nodes))
    }
}

/// A Paragon-class 3-D mesh/torus: 50 MHz i860XP-class nodes on a
/// wormhole-routed grid with far lower per-message latency than NX.
struct Torus3d;

impl MachineModel for Torus3d {
    fn name(&self) -> &'static str {
        "torus3d"
    }

    fn description(&self) -> &'static str {
        "Paragon-class 3-D torus: 50 MHz nodes, dimension-ordered wormhole mesh"
    }

    fn node_range(&self) -> (usize, usize) {
        (1, 4096)
    }

    fn provenance(&self) -> &'static str {
        "Paragon-class estimates scaled from iPSC/860 tables; comm fitted by SAU calibration runs against the DES"
    }

    fn params(&self, nodes: usize) -> Result<machine::MachineModel, TopologyError> {
        self.validate_nodes(nodes)?;
        let mut proc_ = machine::ipsc860_node_processing();
        proc_.clock_mhz = 50.0;
        let mut mem = machine::ipsc860_node_memory();
        mem.icache_bytes = 16 * 1024;
        mem.dcache_bytes = 16 * 1024;
        mem.main_bytes = 32 * 1024 * 1024;
        mem.clock_mhz = 50.0;
        let comm = CommComponent {
            short_latency_s: 45e-6,
            long_latency_s: 70e-6,
            short_threshold: 256,
            per_byte_s: 0.02e-6,
            per_hop_s: 0.1e-6,
            pack_per_byte_s: 0.04e-6,
            sync_overhead_s: 10e-6,
        };
        let io = IoComponent {
            load_bandwidth_bps: 2048.0 * 1024.0,
            load_latency_s: 1.0,
            transfer_bandwidth_bps: 1024.0 * 1024.0,
            // Paragon-class PFS: four I/O partitions striping 64 KB units,
            // seek-dominated SCSI disks behind each.
            io_servers: 4,
            stripe_bytes: 64 * 1024,
            disk_latency_s: 20e-3,
            disk_bandwidth_bps: 3.0 * 1024.0 * 1024.0,
            server_overhead_s: 0.4e-3,
        };
        Ok(assemble(
            format!("3-D torus ({nodes} nodes)"),
            "wormhole mesh",
            "mesh node",
            nodes,
            proc_,
            mem,
            comm,
            io,
            TopologyDesc::Torus {
                dims: balanced_dims3(nodes),
            },
        ))
    }
}

/// An SP-2-class fat-tree cluster: faster superscalar nodes behind a
/// two-level multistage switch.
struct FatTreeCluster;

impl MachineModel for FatTreeCluster {
    fn name(&self) -> &'static str {
        "fattree"
    }

    fn description(&self) -> &'static str {
        "SP-2-class cluster: 66 MHz superscalar nodes on a two-level fat tree (radix 4)"
    }

    fn node_range(&self) -> (usize, usize) {
        (1, 4096)
    }

    fn provenance(&self) -> &'static str {
        "SP-2-class estimates; comm fitted by SAU calibration runs against the DES"
    }

    fn params(&self, nodes: usize) -> Result<machine::MachineModel, TopologyError> {
        self.validate_nodes(nodes)?;
        let proc_ = ProcessingComponent {
            clock_mhz: 66.0,
            fadd_cycles: 1.0,
            fmul_cycles: 1.0,
            fdiv_cycles: 17.0,
            ftrans_cycles: 60.0,
            int_cycles: 1.0,
            imul_cycles: 4.0,
            idiv_cycles: 18.0,
            cmp_cycles: 1.0,
            logical_cycles: 1.0,
            loop_iter_cycles: 2.5,
            loop_setup_cycles: 8.0,
            branch_cycles: 2.0,
            call_cycles: 15.0,
            index_cycles: 1.0,
        };
        let mem = MemoryComponent {
            icache_bytes: 32 * 1024,
            dcache_bytes: 64 * 1024,
            main_bytes: 64 * 1024 * 1024,
            cache_line_bytes: 64,
            hit_cycles: 1.0,
            miss_penalty_cycles: 18.0,
            clock_mhz: 66.0,
        };
        let comm = CommComponent {
            short_latency_s: 40e-6,
            long_latency_s: 60e-6,
            short_threshold: 512,
            per_byte_s: 0.03e-6,
            per_hop_s: 0.5e-6,
            pack_per_byte_s: 0.04e-6,
            sync_overhead_s: 15e-6,
        };
        let io = IoComponent {
            load_bandwidth_bps: 4096.0 * 1024.0,
            load_latency_s: 0.5,
            transfer_bandwidth_bps: 2048.0 * 1024.0,
            // SP-2-class Vesta/PIOFS: dedicated server nodes on the switch,
            // 32 KB stripe units.
            io_servers: 4,
            stripe_bytes: 32 * 1024,
            disk_latency_s: 12e-3,
            disk_bandwidth_bps: 6.0 * 1024.0 * 1024.0,
            server_overhead_s: 0.25e-3,
        };
        Ok(assemble(
            format!("fat-tree cluster ({nodes} nodes)"),
            "multistage switch",
            "cluster node",
            nodes,
            proc_,
            mem,
            comm,
            io,
            TopologyDesc::FatTree { radix: 4 },
        ))
    }
}

/// An idealized modern multicore node: GHz-class cores over a
/// full-crossbar on-chip fabric where only the receiver port contends.
struct MulticoreNode;

impl MachineModel for MulticoreNode {
    fn name(&self) -> &'static str {
        "multicore"
    }

    fn description(&self) -> &'static str {
        "idealized multicore node: 3 GHz cores, on-chip crossbar, sub-µs messaging"
    }

    fn node_range(&self) -> (usize, usize) {
        (1, 128)
    }

    fn provenance(&self) -> &'static str {
        "idealized modern-node estimates; comm fitted by SAU calibration runs against the DES"
    }

    fn params(&self, nodes: usize) -> Result<machine::MachineModel, TopologyError> {
        self.validate_nodes(nodes)?;
        let proc_ = ProcessingComponent {
            clock_mhz: 3000.0,
            fadd_cycles: 1.0,
            fmul_cycles: 1.0,
            fdiv_cycles: 14.0,
            ftrans_cycles: 40.0,
            int_cycles: 0.5,
            imul_cycles: 3.0,
            idiv_cycles: 20.0,
            cmp_cycles: 0.5,
            logical_cycles: 0.5,
            loop_iter_cycles: 1.0,
            loop_setup_cycles: 4.0,
            branch_cycles: 1.0,
            call_cycles: 8.0,
            index_cycles: 0.5,
        };
        let mem = MemoryComponent {
            icache_bytes: 32 * 1024,
            dcache_bytes: 512 * 1024,
            main_bytes: 8 * 1024 * 1024 * 1024,
            cache_line_bytes: 64,
            hit_cycles: 1.0,
            miss_penalty_cycles: 60.0,
            clock_mhz: 3000.0,
        };
        let comm = CommComponent {
            short_latency_s: 0.5e-6,
            long_latency_s: 0.8e-6,
            short_threshold: 4096,
            per_byte_s: 0.1e-9,
            per_hop_s: 0.0,
            pack_per_byte_s: 0.02e-9,
            sync_overhead_s: 1e-6,
        };
        let io = IoComponent {
            load_bandwidth_bps: 512.0 * 1024.0 * 1024.0,
            load_latency_s: 0.01,
            transfer_bandwidth_bps: 256.0 * 1024.0 * 1024.0,
            // Single shared SSD-class device: one logical server, large
            // stripe unit, negligible seek cost relative to the other
            // backends.
            io_servers: 1,
            stripe_bytes: 1024 * 1024,
            disk_latency_s: 0.1e-3,
            disk_bandwidth_bps: 512.0 * 1024.0 * 1024.0,
            server_overhead_s: 0.02e-3,
        };
        Ok(assemble(
            format!("multicore node ({nodes} cores)"),
            "on-chip crossbar",
            "core",
            nodes,
            proc_,
            mem,
            comm,
            io,
            TopologyDesc::Crossbar,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_four_backends_ipsc_first() {
        let names = machine_names();
        assert_eq!(names, vec!["ipsc860", "torus3d", "fattree", "multicore"]);
        assert_eq!(names[0], DEFAULT_MACHINE);
    }

    #[test]
    fn unknown_machine_lists_alternatives() {
        let err = machine("cm5").err().expect("cm5 is not registered");
        match err {
            TopologyError::UnknownMachine { name, available } => {
                assert_eq!(name, "cm5");
                assert_eq!(available, machine_names());
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn ipsc_backend_is_the_reference_machine_verbatim() {
        let via_registry = machine("ipsc860").unwrap().params(8).unwrap();
        let direct = machine::ipsc860(8);
        assert_eq!(format!("{via_registry:?}"), format!("{direct:?}"));
    }

    #[test]
    fn node_range_is_enforced_as_typed_error() {
        let err = machine("multicore").unwrap().params(4096).unwrap_err();
        assert!(matches!(err, TopologyError::InvalidNodes { .. }));
        let err = machine("ipsc860").unwrap().params(0).unwrap_err();
        assert!(matches!(err, TopologyError::InvalidNodes { .. }));
    }

    #[test]
    fn every_backend_builds_params_and_topology_at_eight_nodes() {
        for backend in registry() {
            let params = backend.params(8).unwrap();
            assert_eq!(params.nodes, 8);
            let topo = backend.topology(8).unwrap();
            assert_eq!(topo.nodes(), 8);
            assert!(topo.link_slots() > 0);
        }
    }

    #[test]
    fn balanced_dims_are_ascending_and_multiply_out() {
        for n in 1..=64usize {
            let dims = balanced_dims3(n);
            assert_eq!(dims.len(), 3);
            assert_eq!(dims.iter().product::<usize>(), n);
            assert!(dims[0] <= dims[1] && dims[1] <= dims[2]);
        }
        assert_eq!(balanced_dims3(8), vec![2, 2, 2]);
        assert_eq!(balanced_dims3(64), vec![4, 4, 4]);
        assert_eq!(balanced_dims3(12), vec![2, 2, 3]);
    }

    #[test]
    fn degrade_hook_rescales_without_panicking() {
        let backend = machine("torus3d").unwrap();
        let params = backend.params(8).unwrap();
        let plan = FaultPlan::lossy(0.05);
        let degraded = backend.degrade(&params, &plan);
        assert!(degraded.comm.short_latency_s > params.comm.short_latency_s);
    }
}
