//! The [`Topology`] trait and its four concrete interconnects.
//!
//! A topology answers the three questions the discrete-event network
//! model asks: *how many link-occupancy slots are there* ([`Topology::link_slots`]),
//! *which slot does a traversed link occupy* ([`Topology::link_index`]),
//! and *which links does a message cross* ([`Topology::route_links`]).
//! Routes may pass through **switch vertices** — vertex ids `>=
//! nodes()` (the fat tree's leaf and root switches); compute nodes are
//! always vertices `0..nodes()`.
//!
//! Every implementation's route enumeration is shortest-path (verified
//! against a BFS oracle by proptests below) and deterministic: the same
//! `(from, to)` always yields the same link sequence, which is what keeps
//! the simulator's f64 association order — and therefore every golden —
//! bit-stable.

use crate::error::TopologyError;
use machine::{Hypercube, TopologyDesc};

/// Routing/occupancy view of one interconnect instance.
pub trait Topology: Send + Sync {
    /// Short topology label (e.g. `"hypercube"`, `"torus3d"`).
    fn kind(&self) -> &'static str;

    /// Compute-node count (vertices `0..nodes()`).
    fn nodes(&self) -> usize;

    /// Total vertex count including switch vertices.
    fn vertices(&self) -> usize {
        self.nodes()
    }

    /// Number of link-occupancy slots the DES must allocate.
    fn link_slots(&self) -> usize;

    /// Occupancy slot of the link joining *adjacent* vertices `a`, `b`.
    fn link_index(&self, a: usize, b: usize) -> usize;

    /// The links a message from node `a` to node `b` traverses, in
    /// order, as `(from, to)` vertex pairs. Empty when `a == b`.
    fn route_links(&self, a: usize, b: usize) -> Vec<(usize, usize)>;

    /// Vertices adjacent to vertex `v` (switch vertices included).
    fn vertex_neighbors(&self, v: usize) -> Vec<usize>;

    /// Hop count of the `a -> b` route.
    fn hops(&self, a: usize, b: usize) -> usize {
        self.route_links(a, b).len()
    }

    /// Maximum hop count over all node pairs.
    fn diameter(&self) -> usize;
}

/// Build the topology for a machine description, validating the node
/// count against the occupancy-model bounds that used to be hard
/// assertions in the DES network tables.
pub fn build_topology(
    desc: &TopologyDesc,
    nodes: usize,
) -> Result<Box<dyn Topology>, TopologyError> {
    let invalid = |reason: String| TopologyError::InvalidNodes {
        machine: desc.label().to_string(),
        nodes,
        reason,
    };
    if nodes == 0 {
        return Err(invalid("at least one node".into()));
    }
    match desc {
        TopologyDesc::Hypercube => {
            if nodes > 1024 {
                return Err(invalid(
                    "hypercube link tables are sized for at most 1024 nodes".into(),
                ));
            }
            Ok(Box::new(HypercubeTopo::fitting(nodes)))
        }
        TopologyDesc::Torus { dims } => {
            if dims.is_empty() || dims.contains(&0) {
                return Err(invalid(format!("torus extents {dims:?} must be positive")));
            }
            let product: usize = dims.iter().product();
            if product != nodes {
                return Err(invalid(format!(
                    "torus extents {dims:?} hold {product} nodes"
                )));
            }
            if nodes > 4096 {
                return Err(invalid(
                    "torus link tables are sized for at most 4096 nodes".into(),
                ));
            }
            Ok(Box::new(TorusTopo { dims: dims.clone() }))
        }
        TopologyDesc::FatTree { radix } => {
            if *radix == 0 {
                return Err(invalid("fat-tree radix must be positive".into()));
            }
            if nodes > 4096 {
                return Err(invalid(
                    "fat-tree link tables are sized for at most 4096 nodes".into(),
                ));
            }
            Ok(Box::new(FatTreeTopo {
                nodes,
                radix: *radix,
            }))
        }
        TopologyDesc::Crossbar => {
            if nodes > 1024 {
                return Err(invalid(
                    "crossbar port tables are sized for at most 1024 nodes".into(),
                ));
            }
            Ok(Box::new(CrossbarTopo { nodes }))
        }
    }
}

/// Binary hypercube with e-cube routing — the iPSC/860 Direct-Connect
/// network. Link indexing matches the DES's flat occupancy table
/// (`min(a,b) * dim + crossed-dimension`) bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct HypercubeTopo {
    pub cube: Hypercube,
}

impl HypercubeTopo {
    pub fn fitting(nodes: usize) -> Self {
        HypercubeTopo {
            cube: Hypercube::fitting(nodes),
        }
    }
}

impl Topology for HypercubeTopo {
    fn kind(&self) -> &'static str {
        "hypercube"
    }

    fn nodes(&self) -> usize {
        self.cube.nodes()
    }

    fn link_slots(&self) -> usize {
        self.cube.nodes() * (self.cube.dim as usize).max(1)
    }

    fn link_index(&self, a: usize, b: usize) -> usize {
        a.min(b) * (self.cube.dim as usize).max(1) + (a ^ b).trailing_zeros() as usize
    }

    fn route_links(&self, a: usize, b: usize) -> Vec<(usize, usize)> {
        self.cube.route_links(a, b)
    }

    fn vertex_neighbors(&self, v: usize) -> Vec<usize> {
        (0..self.cube.dim)
            .map(|d| self.cube.neighbor(v, d))
            .collect()
    }

    fn hops(&self, a: usize, b: usize) -> usize {
        self.cube.hops(a, b) as usize
    }

    fn diameter(&self) -> usize {
        self.cube.dim as usize
    }
}

/// k-ary torus/mesh with dimension-ordered routing: each dimension is
/// resolved in turn, stepping in whichever wrap direction is shorter
/// (ties step `+1`). Dimension 0 varies fastest in the node numbering.
#[derive(Debug, Clone)]
pub struct TorusTopo {
    pub dims: Vec<usize>,
}

impl TorusTopo {
    fn coords(&self, mut v: usize) -> Vec<usize> {
        self.dims
            .iter()
            .map(|&e| {
                let c = v % e;
                v /= e;
                c
            })
            .collect()
    }

    fn vertex(&self, coords: &[usize]) -> usize {
        let mut v = 0;
        for (d, &c) in coords.iter().enumerate().rev() {
            v = v * self.dims[d] + c;
        }
        v
    }

    /// The `+1` neighbor of `v` along dimension `d` (with wraparound).
    fn plus(&self, v: usize, d: usize) -> usize {
        let mut c = self.coords(v);
        c[d] = (c[d] + 1) % self.dims[d];
        self.vertex(&c)
    }

    /// Canonical occupancy slot of the link between adjacent `u`, `w`
    /// along dimension `d`: the endpoint whose `+1` step crosses the
    /// link owns the slot (extent-2 rings collapse both directions onto
    /// one physical link, keyed by the lower endpoint).
    fn link_of(&self, u: usize, w: usize, d: usize) -> usize {
        let owner = if self.dims[d] == 2 {
            u.min(w)
        } else if self.plus(u, d) == w {
            u
        } else {
            w
        };
        owner * self.dims.len() + d
    }
}

impl Topology for TorusTopo {
    fn kind(&self) -> &'static str {
        if self.dims.len() == 2 {
            "torus2d"
        } else {
            "torus3d"
        }
    }

    fn nodes(&self) -> usize {
        self.dims.iter().product()
    }

    fn link_slots(&self) -> usize {
        self.nodes() * self.dims.len()
    }

    fn link_index(&self, a: usize, b: usize) -> usize {
        let (ca, cb) = (self.coords(a), self.coords(b));
        let d = (0..self.dims.len())
            .find(|&d| ca[d] != cb[d])
            .expect("link_index of identical vertices");
        self.link_of(a, b, d)
    }

    fn route_links(&self, a: usize, b: usize) -> Vec<(usize, usize)> {
        let mut links = Vec::new();
        let mut cur = self.coords(a);
        let target = self.coords(b);
        for d in 0..self.dims.len() {
            let e = self.dims[d];
            while cur[d] != target[d] {
                let fwd = (target[d] + e - cur[d]) % e;
                let from = self.vertex(&cur);
                // Shorter wrap direction; ties go +1.
                cur[d] = if fwd <= e - fwd {
                    (cur[d] + 1) % e
                } else {
                    (cur[d] + e - 1) % e
                };
                links.push((from, self.vertex(&cur)));
            }
        }
        links
    }

    fn vertex_neighbors(&self, v: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for d in 0..self.dims.len() {
            if self.dims[d] < 2 {
                continue;
            }
            let c = self.coords(v);
            let mut up = c.clone();
            up[d] = (up[d] + 1) % self.dims[d];
            let mut down = c;
            down[d] = (down[d] + self.dims[d] - 1) % self.dims[d];
            let (up, down) = (self.vertex(&up), self.vertex(&down));
            out.push(up);
            if down != up {
                out.push(down);
            }
        }
        out
    }

    fn diameter(&self) -> usize {
        self.dims.iter().map(|e| e / 2).sum()
    }
}

/// Two-level fat tree with up/down routing. Vertices: compute nodes
/// `0..n`, leaf switches `n..n+s` (each serving `radix` consecutive
/// nodes), and one root switch `n+s`. A message climbs to its leaf
/// switch, crosses the root if the destination hangs off another leaf,
/// and descends — 2 hops intra-leaf, 4 inter-leaf. The single up-link
/// per leaf switch is the shared (thin) resource the occupancy model
/// serializes on.
#[derive(Debug, Clone, Copy)]
pub struct FatTreeTopo {
    pub nodes: usize,
    pub radix: usize,
}

impl FatTreeTopo {
    fn switches(&self) -> usize {
        self.nodes.div_ceil(self.radix)
    }

    fn leaf_of(&self, node: usize) -> usize {
        self.nodes + node / self.radix
    }

    fn root(&self) -> usize {
        self.nodes + self.switches()
    }
}

impl Topology for FatTreeTopo {
    fn kind(&self) -> &'static str {
        "fat-tree"
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn vertices(&self) -> usize {
        self.nodes + self.switches() + 1
    }

    /// One down-link per node plus one up-link per leaf switch.
    fn link_slots(&self) -> usize {
        self.nodes + self.switches()
    }

    fn link_index(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = (a.min(b), a.max(b));
        if hi == self.root() {
            // leaf switch <-> root: slot n + switch index.
            self.nodes + (lo - self.nodes)
        } else {
            // node <-> its leaf switch: slot = node id.
            debug_assert_eq!(self.leaf_of(lo), hi);
            lo
        }
    }

    fn route_links(&self, a: usize, b: usize) -> Vec<(usize, usize)> {
        if a == b {
            return Vec::new();
        }
        let (la, lb) = (self.leaf_of(a), self.leaf_of(b));
        if la == lb {
            vec![(a, la), (la, b)]
        } else {
            let root = self.root();
            vec![(a, la), (la, root), (root, lb), (lb, b)]
        }
    }

    fn vertex_neighbors(&self, v: usize) -> Vec<usize> {
        if v < self.nodes {
            vec![self.leaf_of(v)]
        } else if v < self.root() {
            let first = (v - self.nodes) * self.radix;
            let mut out: Vec<usize> = (first..(first + self.radix).min(self.nodes)).collect();
            out.push(self.root());
            out
        } else {
            (self.nodes..self.root()).collect()
        }
    }

    fn diameter(&self) -> usize {
        if self.switches() > 1 {
            4
        } else if self.nodes > 1 {
            2
        } else {
            0
        }
    }
}

/// Idealized crossbar (a modern multicore node): every pair of nodes is
/// one hop apart and the only contended resource is the receiver port —
/// `link_index` is the destination, so concurrent senders to one
/// receiver serialize while disjoint pairs stream in parallel.
#[derive(Debug, Clone, Copy)]
pub struct CrossbarTopo {
    pub nodes: usize,
}

impl Topology for CrossbarTopo {
    fn kind(&self) -> &'static str {
        "crossbar"
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn link_slots(&self) -> usize {
        self.nodes
    }

    fn link_index(&self, _a: usize, b: usize) -> usize {
        b
    }

    fn route_links(&self, a: usize, b: usize) -> Vec<(usize, usize)> {
        if a == b {
            Vec::new()
        } else {
            vec![(a, b)]
        }
    }

    fn vertex_neighbors(&self, v: usize) -> Vec<usize> {
        (0..self.nodes).filter(|&o| o != v).collect()
    }

    fn diameter(&self) -> usize {
        usize::from(self.nodes > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Breadth-first distance between two vertices using only
    /// `vertex_neighbors` — the oracle the routing implementations are
    /// checked against.
    fn bfs_distance(topo: &dyn Topology, a: usize, b: usize) -> Option<usize> {
        let n = topo.vertices();
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[a] = 0;
        queue.push_back(a);
        while let Some(v) = queue.pop_front() {
            if v == b {
                return Some(dist[v]);
            }
            for w in topo.vertex_neighbors(v) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// A route must be a connected walk from `a` to `b` whose length
    /// equals the BFS shortest-path distance, with every traversed link
    /// mapping to an in-bounds occupancy slot.
    fn check_routes(topo: &dyn Topology) {
        for a in 0..topo.nodes() {
            for b in 0..topo.nodes() {
                let links = topo.route_links(a, b);
                if a == b {
                    assert!(links.is_empty(), "{}: self-route not empty", topo.kind());
                    continue;
                }
                let mut cur = a;
                for &(from, to) in &links {
                    assert_eq!(from, cur, "{}: disconnected route {a}->{b}", topo.kind());
                    assert!(
                        topo.vertex_neighbors(from).contains(&to),
                        "{}: {from}->{to} not an edge",
                        topo.kind()
                    );
                    let slot = topo.link_index(from, to);
                    assert!(
                        slot < topo.link_slots(),
                        "{}: slot {slot} out of bounds ({})",
                        topo.kind(),
                        topo.link_slots()
                    );
                    // The slot must be direction-independent: one
                    // physical link, one occupancy row — except on the
                    // crossbar, where the "link" is the receiver port.
                    if topo.kind() != "crossbar" {
                        assert_eq!(slot, topo.link_index(to, from), "{}", topo.kind());
                    }
                    cur = to;
                }
                assert_eq!(cur, b, "{}: route {a}->{b} ends elsewhere", topo.kind());
                let oracle = bfs_distance(topo, a, b).expect("connected");
                assert_eq!(
                    links.len(),
                    oracle,
                    "{}: route {a}->{b} not shortest",
                    topo.kind()
                );
                assert_eq!(topo.hops(a, b), links.len());
                assert!(links.len() <= topo.diameter(), "{}", topo.kind());
            }
        }
    }

    #[test]
    fn hypercube_matches_bfs_oracle() {
        for dim in 0..5u32 {
            check_routes(&HypercubeTopo {
                cube: Hypercube { dim },
            });
        }
    }

    #[test]
    fn hypercube_link_index_matches_des_table_layout() {
        let t = HypercubeTopo::fitting(8);
        // min(a,b)*dim + crossed dimension — the DES flat-table formula.
        assert_eq!(t.link_index(2, 3), 2 * 3);
        assert_eq!(t.link_index(3, 2), 2 * 3);
        assert_eq!(t.link_index(5, 1), 3 + 2); // min(1,5)*dim + crossed dim 2
    }

    #[test]
    fn fat_tree_routes_are_up_down() {
        let t = FatTreeTopo {
            nodes: 10,
            radix: 4,
        };
        assert_eq!(t.route_links(0, 3).len(), 2); // same leaf
        assert_eq!(t.route_links(0, 9).len(), 4); // via root
        check_routes(&t);
    }

    #[test]
    fn crossbar_is_single_hop() {
        let t = CrossbarTopo { nodes: 7 };
        check_routes(&t);
        assert_eq!(t.link_index(3, 5), 5);
        assert_eq!(t.link_index(2, 5), 5); // receiver-port serialization
    }

    #[test]
    fn torus_extent_two_collapses_to_one_link() {
        let t = TorusTopo { dims: vec![2, 2] };
        check_routes(&t);
        // Both directions across an extent-2 ring share one slot.
        assert_eq!(t.link_index(0, 1), t.link_index(1, 0));
    }

    #[test]
    fn build_topology_validates_bounds() {
        assert!(build_topology(&TopologyDesc::Hypercube, 8).is_ok());
        assert!(matches!(
            build_topology(&TopologyDesc::Hypercube, 2048),
            Err(TopologyError::InvalidNodes { .. })
        ));
        assert!(matches!(
            build_topology(&TopologyDesc::Torus { dims: vec![2, 3] }, 7),
            Err(TopologyError::InvalidNodes { .. })
        ));
        assert!(matches!(
            build_topology(&TopologyDesc::Crossbar, 0),
            Err(TopologyError::InvalidNodes { .. })
        ));
    }
}

#[cfg(test)]
mod topology_properties {
    use super::*;
    use proptest::prelude::*;

    fn bfs(topo: &dyn Topology, a: usize, b: usize) -> usize {
        let mut dist = vec![usize::MAX; topo.vertices()];
        let mut queue = std::collections::VecDeque::new();
        dist[a] = 0;
        queue.push_back(a);
        while let Some(v) = queue.pop_front() {
            for w in topo.vertex_neighbors(v) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist[b]
    }

    fn route_is_shortest(topo: &dyn Topology, a: usize, b: usize) {
        let links = topo.route_links(a, b);
        let mut cur = a;
        for &(from, to) in &links {
            assert_eq!(from, cur);
            let slot = topo.link_index(from, to);
            assert!(slot < topo.link_slots());
            cur = to;
        }
        assert_eq!(cur, b);
        assert_eq!(links.len(), bfs(topo, a, b));
    }

    proptest! {
        /// Every backend topology's route enumeration yields shortest
        /// paths matching the BFS oracle on random small instances.
        #[test]
        fn routes_match_bfs_oracle(
            dim in 0u32..5,
            d1 in 1usize..5, d2 in 1usize..5, d3 in 1usize..4,
            ft_nodes in 1usize..20, radix in 1usize..6,
            xbar in 1usize..17,
            pair in (0usize..4096, 0usize..4096),
        ) {
            let topos: Vec<Box<dyn Topology>> = vec![
                Box::new(HypercubeTopo { cube: Hypercube { dim } }),
                Box::new(TorusTopo { dims: vec![d1, d2, d3] }),
                Box::new(FatTreeTopo { nodes: ft_nodes, radix }),
                Box::new(CrossbarTopo { nodes: xbar }),
            ];
            for topo in &topos {
                let a = pair.0 % topo.nodes();
                let b = pair.1 % topo.nodes();
                route_is_shortest(topo.as_ref(), a, b);
            }
        }
    }
}
