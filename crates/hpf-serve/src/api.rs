//! Endpoint handlers: pure functions from a parsed request to a response
//! body, shared by every worker.
//!
//! Handlers are deterministic — the same request always produces the same
//! bytes, whatever worker runs it and in whatever order requests arrive —
//! which is what lets the body cache serve repeats verbatim and what the
//! cross-worker byte-identity tests pin down. The pieces that make this
//! hold: all JSON objects are `BTreeMap`-backed (sorted keys), floats are
//! formatted by the same `Display` path everywhere, the prediction and
//! simulation engines are seeded and deterministic, and response bodies
//! never embed timestamps or identity of the serving worker.
//!
//! Error surface: malformed HPF source comes back as a structured 400
//! whose `diagnostic` field is the very string the `advise` CLI prints to
//! stderr ([`PipelineError::render_diagnostic`]) — one diagnostic, two
//! transports. Expired deadlines come back as 504 with the stage that was
//! about to start — including a deadline that is already dead at *parse*
//! time, which short-circuits before the cache lookup or any pipeline
//! stage runs.
//!
//! Degradation surface: the expensive DES cross-check behind
//! `simulate: true` sweeps and the advisor's top-k validation runs under
//! a [`crate::breaker::Breaker`]; when it is open (or the call fails),
//! the response is served from the analytic interpreter alone and carries
//! `"degraded": true`. Degraded bodies are never stored in the response
//! cache, so a healthy breaker never replays them.

use std::sync::Arc;

use hpf_trace::json::{parse as parse_json, Value};
use interp::{InterpOptions, InterpretationEngine, Prediction};
use ipsc_sim::{SimConfig, Simulator};
use report::PipelineError;

use crate::breaker::{Breaker, BreakerConfig, BreakerOutcome};
use crate::cache::{
    body_cache_key, BoundArtifact, CacheConfig, Deadline, FlightJoin, FlightWait, ServeCache,
    ServeFailure, WireEntry,
};
use crate::http::Request;
use crate::metrics::ServeMetrics;
use crate::status::ServiceStatus;

/// Schema tag stamped on every JSON body this service writes.
pub const SCHEMA: &str = "hpf-serve/v1";

/// The test-only fault-injection header, honored only when the server
/// runs with chaos enabled: `handler` panics inside the request handler
/// (caught by the worker's panic isolation), `sim` panics inside the
/// breaker-guarded DES cross-check, `fatal` (interpreted by the server
/// layer, outside the isolation wrapper) kills the worker thread to
/// exercise supervisor respawn.
pub const CHAOS_HEADER: &str = "x-chaos-panic";

/// A finished response: status + body (always JSON). `cacheable` is
/// false for bodies that depend on transient service state (degraded
/// answers served while the breaker is open) — they must not be replayed
/// once the service recovers.
///
/// The body is an `Arc` so a cache hit, a single-flight waiter, and the
/// wire write all share one allocation instead of cloning kilobytes per
/// request.
#[derive(Debug, Clone)]
pub struct ApiResponse {
    pub status: u16,
    pub body: Arc<Vec<u8>>,
    pub cacheable: bool,
}

impl ApiResponse {
    fn json(status: u16, value: &Value) -> ApiResponse {
        ApiResponse {
            status,
            body: Arc::new(value.pretty().into_bytes()),
            cacheable: true,
        }
    }

    fn json_uncacheable(status: u16, value: &Value) -> ApiResponse {
        ApiResponse {
            cacheable: false,
            ..ApiResponse::json(status, value)
        }
    }
}

/// Per-request context threaded from routing into the handlers: the
/// chaos injection flags the handler honors when chaos is enabled.
#[derive(Debug, Default, Clone, Copy)]
struct ReqCtx {
    /// Panic inside the breaker-guarded DES cross-check.
    sim_panic: bool,
}

/// The service's request handler: routing plus the warm cache stack.
#[derive(Debug)]
pub struct Api {
    cache: ServeCache,
    breaker: Breaker,
    status: Arc<ServiceStatus>,
    /// Streaming metrics: windowed rates + the `?since=` cursor ring.
    metrics: ServeMetrics,
    /// Honor the `x-chaos-panic` fault-injection header.
    chaos: bool,
}

fn num(v: f64) -> Value {
    Value::Num(v)
}

/// The `/v1/healthz` latency section: a compact snapshot of every
/// per-endpoint request-latency sketch (`serve.latency.*`, kernels
/// excluded — those live in the full `/v1/metrics` document).
fn latency_value() -> Value {
    Value::Obj(
        hpf_trace::sketches_snapshot()
            .into_iter()
            .filter_map(|(name, s)| {
                let short = name.strip_prefix("serve.latency.")?;
                if short.starts_with("kernel.") {
                    return None;
                }
                let v = Value::obj(vec![
                    ("count", num(s.count() as f64)),
                    ("p50_s", num(s.quantile(0.50))),
                    ("p95_s", num(s.quantile(0.95))),
                    ("p99_s", num(s.quantile(0.99))),
                    ("p999_s", num(s.quantile(0.999))),
                ]);
                Some((short.to_string(), v))
            })
            .collect(),
    )
}

fn metrics_value(m: &interp::Metrics) -> Value {
    let mut fields = vec![
        ("comp_s", num(m.comp)),
        ("comm_s", num(m.comm)),
        ("overhead_s", num(m.overhead)),
        ("wait_s", num(m.wait)),
    ];
    // Emitted only when an I/O phase actually ran, so responses for
    // I/O-free programs stay byte-identical to the pre-I/O schema.
    if m.io != 0.0 {
        fields.push(("io_s", num(m.io)));
    }
    fields.push(("time_s", num(m.time())));
    Value::obj(fields)
}

fn kind_label(kind: &appgraph::AauKind) -> &'static str {
    match kind {
        appgraph::AauKind::Start => "start",
        appgraph::AauKind::End => "end",
        appgraph::AauKind::Seq { .. } => "seq",
        appgraph::AauKind::IterD { .. } => "iterd",
        appgraph::AauKind::CondtD { .. } => "condtd",
        appgraph::AauKind::Comm { .. } => "comm",
        appgraph::AauKind::Io { .. } => "io",
    }
}

/// The structured 400/504 body for a failed evaluation.
fn failure_value(f: &ServeFailure, source: Option<&str>) -> (u16, Value) {
    match f {
        ServeFailure::Pipeline(e) => (400, pipeline_error_value(e, source)),
        ServeFailure::Deadline { stage } => (
            504,
            Value::obj(vec![
                ("schema", Value::Str(SCHEMA.into())),
                (
                    "error",
                    Value::obj(vec![
                        ("kind", Value::Str("deadline".into())),
                        ("stage", Value::Str((*stage).into())),
                        ("message", Value::Str(format!("{f}"))),
                    ]),
                ),
            ]),
        ),
    }
}

fn pipeline_error_value(e: &PipelineError, source: Option<&str>) -> Value {
    let mut err: Vec<(&str, Value)> = vec![
        ("kind", Value::Str("pipeline".into())),
        ("stage", Value::Str(e.stage.label().into())),
        ("message", Value::Str(e.message.clone())),
    ];
    if let Some(line) = e.line() {
        err.push(("line", num(line as f64)));
    }
    if let Some(src) = source {
        if let Some(col) = e.column_in(src) {
            err.push(("column", num(col as f64)));
        }
        // The exact string `advise` prints to stderr for the same input.
        err.push(("diagnostic", Value::Str(e.render_diagnostic(src))));
    }
    Value::obj(vec![
        ("schema", Value::Str(SCHEMA.into())),
        ("error", Value::obj(err)),
    ])
}

fn bad_request(message: impl Into<String>) -> ApiResponse {
    ApiResponse::json(
        400,
        &Value::obj(vec![
            ("schema", Value::Str(SCHEMA.into())),
            (
                "error",
                Value::obj(vec![
                    ("kind", Value::Str("request".into())),
                    ("message", Value::Str(message.into())),
                ]),
            ),
        ]),
    )
}

/// What a predict/sweep/advise body may select: a suite kernel by name, or
/// inline HPF source.
enum Target {
    Kernel(String),
    Source(String),
}

impl Target {
    fn from_body(body: &Value) -> Result<Target, ApiResponse> {
        match (body.get("kernel"), body.get("source")) {
            (Some(_), Some(_)) => Err(bad_request("give either `kernel` or `source`, not both")),
            (Some(k), None) => match k.as_str() {
                Some(name) => Ok(Target::Kernel(name.to_string())),
                None => Err(bad_request("`kernel` must be a string")),
            },
            (None, Some(s)) => match s.as_str() {
                Some(src) => Ok(Target::Source(src.to_string())),
                None => Err(bad_request("`source` must be a string")),
            },
            (None, None) => Err(bad_request("body needs a `kernel` name or HPF `source`")),
        }
    }

    fn source_text(&self) -> Option<&str> {
        match self {
            Target::Kernel(_) => None,
            Target::Source(s) => Some(s.as_str()),
        }
    }

    fn describe(&self) -> Value {
        match self {
            Target::Kernel(name) => Value::Str(name.clone()),
            Target::Source(_) => Value::Str("<inline source>".into()),
        }
    }
}

/// A target with its session-level artifact resolved once, so a batch of
/// points (a sweep's sizes) binds from one warm artifact instead of
/// re-resolving per point.
enum ResolvedTarget {
    Kernel(String, std::sync::Arc<kernels::CompiledKernel>),
    Source(std::sync::Arc<crate::cache::SourceProgram>),
}

fn uint_field(body: &Value, key: &str, default: usize) -> Result<usize, ApiResponse> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => match v.as_f64() {
            Some(f) if f >= 0.0 && f.fract() == 0.0 && f <= u32::MAX as f64 => Ok(f as usize),
            _ => Err(bad_request(format!(
                "`{key}` must be a small non-negative integer"
            ))),
        },
    }
}

/// `deadline_ms` absent = no deadline; present (including 0) = a budget
/// of that many milliseconds, enforced between pipeline stages.
fn deadline_from(body: &Value) -> Result<Deadline, ApiResponse> {
    match body.get("deadline_ms") {
        None => Ok(Deadline::none()),
        Some(_) => Ok(Deadline::in_ms(uint_field(body, "deadline_ms", 0)? as u64)),
    }
}

/// The per-kernel latency sketch name, preallocated for every suite
/// kernel so the hot path records without a `format!` per request.
/// Unknown names (a request for a kernel that does not exist still gets
/// its latency recorded) fall back to an owned allocation.
fn kernel_metric_name(name: &str) -> std::borrow::Cow<'static, str> {
    use std::collections::HashMap;
    use std::sync::OnceLock;
    static NAMES: OnceLock<HashMap<&'static str, String>> = OnceLock::new();
    let names = NAMES.get_or_init(|| {
        kernels::all_kernels()
            .iter()
            .map(|k| (k.name, format!("serve.latency.kernel.{}", k.name)))
            .collect()
    });
    match names.get(name) {
        Some(s) => std::borrow::Cow::Borrowed(s.as_str()),
        None => std::borrow::Cow::Owned(format!("serve.latency.kernel.{name}")),
    }
}

/// The per-machine latency sketch name (`serve.latency.machine.<name>`),
/// preallocated for every registered backend. Only requests that name a
/// machine explicitly record here — the default-machine bulk of traffic
/// already lands on the per-endpoint sketches.
fn machine_metric_name(name: &str) -> std::borrow::Cow<'static, str> {
    use std::collections::HashMap;
    use std::sync::OnceLock;
    static NAMES: OnceLock<HashMap<&'static str, String>> = OnceLock::new();
    let names = NAMES.get_or_init(|| {
        hpf_machines::machine_names()
            .iter()
            .map(|m| (*m, format!("serve.latency.machine.{m}")))
            .collect()
    });
    match names.get(name) {
        Some(s) => std::borrow::Cow::Borrowed(s.as_str()),
        None => std::borrow::Cow::Owned(format!("serve.latency.machine.{name}")),
    }
}

/// The optional `"machine"` body field: absent means the default backend
/// (and the response does not echo a machine), present means the named
/// registry backend. An unknown name is the registry's typed
/// `TopologyError`, surfaced as the same structured 400 pipeline body the
/// CLI diagnostics map to (stage `machine`).
fn machine_from(body: &Value, source: Option<&str>) -> Result<Option<String>, ApiResponse> {
    match body.get("machine") {
        None => Ok(None),
        Some(v) => match v.as_str() {
            Some(name) => match hpf_machines::machine(name) {
                Ok(_) => Ok(Some(name.to_string())),
                Err(e) => {
                    let err = PipelineError::from(e);
                    Err(ApiResponse::json(400, &pipeline_error_value(&err, source)))
                }
            },
            None => Err(bad_request("`machine` must be a string")),
        },
    }
}

impl Api {
    pub fn new(cfg: &CacheConfig) -> Api {
        Self::with_runtime(cfg, Arc::new(ServiceStatus::default()), false)
    }

    /// The server-side constructor: shares the liveness status the
    /// worker pool maintains and opts into chaos-header handling.
    pub fn with_runtime(cfg: &CacheConfig, status: Arc<ServiceStatus>, chaos: bool) -> Api {
        Api {
            cache: ServeCache::new(cfg),
            breaker: Breaker::new(BreakerConfig::default()),
            status,
            metrics: ServeMetrics::new(),
            chaos,
        }
    }

    /// The streaming-metrics layer, shared with the server loops so shed
    /// and panic events feed the windowed rates.
    pub fn serve_metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Route and serve one request. Infallible by construction — every
    /// failure mode is a JSON error response. The one deliberate
    /// exception: an injected chaos panic (test-only header, only when
    /// chaos is enabled), which the worker's `catch_unwind` isolation is
    /// expected to convert into a structured 500.
    pub fn handle(&self, req: &Request) -> ApiResponse {
        // The metrics scrape itself never self-counts: a delta capture
        // must observe the service, not perturb it.
        if req.method == "GET" && req.path == "/v1/metrics" {
            return self.metrics(req);
        }
        hpf_trace::counter_add("serve.requests", 1);
        let t0 = hpf_trace::enabled().then(std::time::Instant::now);
        let resp = self.dispatch(req);
        if let Some(t0) = t0 {
            let name = match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/v1/healthz") => "serve.latency.healthz",
                ("POST", "/v1/predict") => "serve.latency.predict",
                ("POST", "/v1/sweep") => "serve.latency.sweep",
                ("POST", "/v1/advise") => "serve.latency.advise",
                _ => "serve.latency.other",
            };
            hpf_trace::sketch_record(name, t0.elapsed().as_secs_f64());
            self.metrics.note_request(resp.status);
        }
        resp
    }

    fn dispatch(&self, req: &Request) -> ApiResponse {
        let ctx = self.chaos_ctx(req);
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/v1/healthz") => self.healthz(),
            ("POST", "/v1/predict") => self.cached_post(req, ctx, Self::predict),
            ("POST", "/v1/sweep") => self.cached_post(req, ctx, Self::sweep),
            ("POST", "/v1/advise") => self.cached_post(req, ctx, Self::advise),
            (_, "/v1/healthz" | "/v1/metrics" | "/v1/predict" | "/v1/sweep" | "/v1/advise") => {
                ApiResponse::json(
                    405,
                    &Value::obj(vec![
                        ("schema", Value::Str(SCHEMA.into())),
                        (
                            "error",
                            Value::obj(vec![
                                ("kind", Value::Str("request".into())),
                                (
                                    "message",
                                    Value::Str(format!(
                                        "method {} not allowed on {}",
                                        req.method, req.path
                                    )),
                                ),
                            ]),
                        ),
                    ]),
                )
            }
            _ => ApiResponse::json(
                404,
                &Value::obj(vec![
                    ("schema", Value::Str(SCHEMA.into())),
                    (
                        "error",
                        Value::obj(vec![
                            ("kind", Value::Str("request".into())),
                            ("message", Value::Str(format!("no route {}", req.path))),
                        ]),
                    ),
                ]),
            ),
        }
    }

    /// Interpret the chaos header (only when chaos is enabled). The
    /// `handler` variant panics right here, inside the routed request —
    /// the worker's panic isolation must turn it into a structured 500
    /// without shrinking the pool.
    fn chaos_ctx(&self, req: &Request) -> ReqCtx {
        if !self.chaos {
            return ReqCtx::default();
        }
        match req.header(CHAOS_HEADER) {
            Some("handler") => panic!("chaos: injected handler panic"),
            Some("sim") => ReqCtx { sim_panic: true },
            _ => ReqCtx::default(),
        }
    }

    /// Liveness, pool health and breaker state — the supervision layer's
    /// observable surface. Health bodies are never cached and vary with
    /// service state by design.
    fn healthz(&self) -> ApiResponse {
        let s = &self.status;
        ApiResponse::json_uncacheable(
            200,
            &Value::obj(vec![
                ("schema", Value::Str(SCHEMA.into())),
                ("status", Value::Str("ok".into())),
                (
                    "kernels",
                    Value::Arr(
                        kernels::all_kernels()
                            .iter()
                            .map(|k| Value::Str(k.name.to_string()))
                            .collect(),
                    ),
                ),
                (
                    "workers",
                    Value::obj(vec![
                        ("configured", num(s.get(&s.workers_configured) as f64)),
                        ("live", num(s.get(&s.workers_live) as f64)),
                        ("panics", num(s.get(&s.worker_panics) as f64)),
                        ("deaths", num(s.get(&s.worker_deaths) as f64)),
                        ("respawns", num(s.get(&s.worker_respawns) as f64)),
                    ]),
                ),
                (
                    "queue",
                    Value::obj(vec![
                        ("depth", num(s.get(&s.queue_len) as f64)),
                        ("shed", num(s.get(&s.shed) as f64)),
                    ]),
                ),
                ("breaker", Value::Str(self.breaker.state_label().into())),
                ("latency", latency_value()),
            ]),
        )
    }

    /// The streaming-metrics endpoint. Without a query: the full
    /// `hpf-serve-metrics/v1` document (counter totals, windowed rates,
    /// latency sketches, and the embedded `hpf-trace/v1` export), stamped
    /// with a fresh `cursor`. With `?since=<cursor>`: per-counter and
    /// per-sketch deltas against that cursor's snapshot (`"reset": true`
    /// totals when the cursor has aged out of the ring).
    fn metrics(&self, req: &Request) -> ApiResponse {
        let doc = match req.query_param("since") {
            None => self.metrics.export_full(),
            Some(raw) => match raw.parse::<u64>() {
                Ok(since) => self.metrics.export_delta(since),
                Err(_) => return bad_request("`since` must be an unsigned integer cursor"),
            },
        };
        ApiResponse {
            status: 200,
            body: Arc::new(doc.pretty().into_bytes()),
            cacheable: false,
        }
    }

    /// Parse the body, serve from the body cache when the canonical
    /// request was answered before, compute and store otherwise. Only
    /// cacheable 200 responses are stored: errors are cheap to
    /// recompute, a 504 depends on the deadline, and degraded bodies
    /// depend on breaker state, not the request.
    ///
    /// Cold misses are single-flighted: the first request for a key
    /// becomes the leader and computes; concurrent duplicates park and
    /// receive the leader's body verbatim when it was a cacheable 200.
    /// A leader that produced anything else (error, degraded, 504)
    /// releases its waiters to compute independently — coalescing must
    /// never replay a response that depends on transient service state.
    /// Parked waiters honor their own deadlines: a budget that expires
    /// while parked answers 504 (stage `coalesce`) without waiting out
    /// the leader.
    ///
    /// A deadline that is already dead when the body is parsed
    /// short-circuits to 504 here — before the cache lookup and before
    /// any pipeline stage runs, so an overloaded client's expired work
    /// costs one JSON parse and nothing more.
    fn cached_post(
        &self,
        req: &Request,
        ctx: ReqCtx,
        handler: fn(&Api, &Value, ReqCtx) -> ApiResponse,
    ) -> ApiResponse {
        let text = match std::str::from_utf8(&req.body) {
            Ok(t) => t,
            Err(_) => return bad_request("body is not UTF-8"),
        };
        // Wire memo: an exact byte-repeat of a previously answered
        // cacheable request skips the parse and canonicalization below
        // entirely. Only cacheable 200s are ever stored, and identical
        // bytes always canonicalize to the same key, so this can never
        // disagree with the canonical layers.
        let t_wire = hpf_trace::enabled().then(std::time::Instant::now);
        if let Some(hit) = self.cache.wire_lookup(&req.path, text) {
            if let Some(t0) = t_wire {
                let elapsed = t0.elapsed().as_secs_f64();
                if let Some(name) = hit.kernel_metric.as_deref() {
                    hpf_trace::sketch_record(name, elapsed);
                }
                if let Some(name) = hit.machine_metric.as_deref() {
                    hpf_trace::sketch_record(name, elapsed);
                }
            }
            return ApiResponse {
                status: 200,
                body: hit.body.clone(),
                cacheable: true,
            };
        }
        let body = match parse_json(text) {
            Ok(v @ Value::Obj(_)) => v,
            Ok(_) => return bad_request("body must be a JSON object"),
            Err(e) => return bad_request(format!("body is not valid JSON: {e}")),
        };
        let deadline = match deadline_from(&body) {
            Ok(deadline) => {
                if let Err(f) = deadline.check("parse") {
                    let source = body.get("source").and_then(Value::as_str);
                    let (status, value) = failure_value(&f, source);
                    return ApiResponse::json(status, &value);
                }
                deadline
            }
            Err(resp) => return resp,
        };
        let key = body_cache_key(&req.path, &body);
        // Per-kernel latency sketch: covers both the warm (body-cache
        // hit) and cold paths, so the distribution reflects what callers
        // of this kernel actually observed.
        let t0 = hpf_trace::enabled().then(std::time::Instant::now);
        let record_kernel = |resp: ApiResponse| {
            if let Some(t0) = t0 {
                let elapsed = t0.elapsed().as_secs_f64();
                if let Some(name) = body.get("kernel").and_then(Value::as_str) {
                    hpf_trace::sketch_record(&kernel_metric_name(name), elapsed);
                }
                if let Some(name) = body.get("machine").and_then(Value::as_str) {
                    hpf_trace::sketch_record(&machine_metric_name(name), elapsed);
                }
            }
            resp
        };
        let response = if let Some(cached) = self.cache.cached_body(&key) {
            ApiResponse {
                status: 200,
                body: cached,
                cacheable: true,
            }
        } else {
            match self.cache.join_flight(&key) {
                FlightJoin::Leader(leader) => {
                    hpf_trace::counter_add("serve.singleflight.leader", 1);
                    let response = handler(self, &body, ctx);
                    if response.status == 200 && response.cacheable {
                        let shared = self.cache.store_body(&key, response.body.clone());
                        leader.publish_shared(shared);
                    }
                    // Anything else: the leader guard drops unpublished and
                    // the waiters recompute on their own (solo).
                    response
                }
                FlightJoin::Waiter(flight) => {
                    hpf_trace::counter_add("serve.singleflight.parked", 1);
                    match flight.wait(&deadline) {
                        FlightWait::Shared(shared) => ApiResponse {
                            status: 200,
                            body: shared,
                            cacheable: true,
                        },
                        FlightWait::Solo => {
                            let response = handler(self, &body, ctx);
                            if response.status == 200 && response.cacheable {
                                self.cache.store_body(&key, response.body.clone());
                            }
                            response
                        }
                        FlightWait::Expired => {
                            hpf_trace::counter_add("serve.deadline_exceeded", 1);
                            let f = ServeFailure::Deadline { stage: "coalesce" };
                            let source = body.get("source").and_then(Value::as_str);
                            let (status, value) = failure_value(&f, source);
                            ApiResponse::json(status, &value)
                        }
                    }
                }
            }
        };
        if response.status == 200 && response.cacheable {
            self.cache.wire_store(
                &req.path,
                text,
                WireEntry {
                    body: response.body.clone(),
                    kernel_metric: body
                        .get("kernel")
                        .and_then(Value::as_str)
                        .map(|n| kernel_metric_name(n).into_owned()),
                    machine_metric: body
                        .get("machine")
                        .and_then(Value::as_str)
                        .map(|n| machine_metric_name(n).into_owned()),
                },
            );
        }
        record_kernel(response)
    }

    /// Bind the request's target to `(n, procs)` through the warm caches.
    fn bind_target(
        &self,
        target: &Target,
        n: Option<i64>,
        procs: usize,
        deadline: &Deadline,
    ) -> Result<std::sync::Arc<BoundArtifact>, ServeFailure> {
        match target {
            Target::Kernel(name) => {
                let n = n.unwrap_or(256);
                self.cache.bind_kernel(name, n, procs, deadline)
            }
            Target::Source(src) => self.cache.bind_source(src, n, procs, deadline),
        }
    }

    /// Resolve the session-level artifact for a target once — the
    /// batched-evaluation front half. Every subsequent point binds from
    /// this resolved artifact through the same bind-cache keys the
    /// per-request path uses, so a 50-point sweep does one session
    /// lookup instead of fifty.
    fn resolve_target(&self, target: &Target) -> Result<ResolvedTarget, ServeFailure> {
        match target {
            Target::Kernel(name) => Ok(ResolvedTarget::Kernel(
                name.clone(),
                self.cache.kernel_artifact(name)?,
            )),
            Target::Source(src) => Ok(ResolvedTarget::Source(self.cache.source_program(src)?)),
        }
    }

    /// Bind one batched point from the resolved artifact.
    fn bind_resolved(
        &self,
        resolved: &ResolvedTarget,
        n: i64,
        procs: usize,
        deadline: &Deadline,
    ) -> Result<std::sync::Arc<BoundArtifact>, ServeFailure> {
        match resolved {
            ResolvedTarget::Kernel(name, artifact) => self
                .cache
                .bind_kernel_artifact(name, artifact, n, procs, deadline),
            ResolvedTarget::Source(program) => {
                self.cache
                    .bind_source_program(program, Some(n), procs, deadline)
            }
        }
    }

    fn predict_value(
        aag: &appgraph::Aag,
        prediction: &Prediction,
        target: &Target,
        n: Option<i64>,
        procs: usize,
        machine: Option<&str>,
    ) -> Value {
        let phases: Vec<Value> = aag
            .aaus
            .iter()
            .zip(&prediction.per_aau)
            .filter(|(_, m)| m.time() > 0.0 || m.wait > 0.0)
            .map(|(aau, m)| {
                Value::obj(vec![
                    ("label", Value::Str(aau.label.clone())),
                    ("kind", Value::Str(kind_label(&aau.kind).into())),
                    ("metrics", metrics_value(m)),
                ])
            })
            .collect();
        let mut top: Vec<(&str, Value)> = vec![
            ("schema", Value::Str(SCHEMA.into())),
            ("kind", Value::Str("predict".into())),
            ("target", target.describe()),
            ("procs", num(procs as f64)),
            ("predicted_s", num(prediction.total_seconds())),
            ("total", metrics_value(&prediction.total)),
            ("phases", Value::Arr(phases)),
        ];
        if let Some(n) = n {
            top.push(("n", num(n as f64)));
        }
        if let Some(m) = machine {
            top.push(("machine", Value::Str(m.to_string())));
        }
        Value::obj(top)
    }

    /// `POST /v1/predict` — per-phase predicted times for one
    /// `(target, n, procs)` point. An optional `"machine"` field selects
    /// a registered backend; the response echoes it only when the request
    /// named one, so default-machine bodies are byte-identical to the
    /// pre-registry service.
    fn predict(&self, body: &Value, _ctx: ReqCtx) -> ApiResponse {
        let _span = hpf_trace::span("serve.predict");
        let target = match Target::from_body(body) {
            Ok(t) => t,
            Err(resp) => return resp,
        };
        let (n, procs, deadline) = match Self::point_params(body) {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        let machine_name = match machine_from(body, target.source_text()) {
            Ok(m) => m,
            Err(resp) => return resp,
        };
        let bound = match self.bind_target(&target, n, procs, &deadline) {
            Ok(b) => b,
            Err(f) => {
                let (status, value) = failure_value(&f, target.source_text());
                return ApiResponse::json(status, &value);
            }
        };
        if let Err(f) = deadline.check("interpret") {
            let (status, value) = failure_value(&f, target.source_text());
            return ApiResponse::json(status, &value);
        }
        let machine = match report::pipeline::calibrated_machine_for(
            machine_name
                .as_deref()
                .unwrap_or(hpf_machines::DEFAULT_MACHINE),
            procs,
        ) {
            Ok(m) => m,
            Err(e) => {
                return ApiResponse::json(400, &pipeline_error_value(&e, target.source_text()))
            }
        };
        let engine = InterpretationEngine::with_options(&machine, InterpOptions::default());
        let prediction = engine.interpret(&bound.aag);
        ApiResponse::json(
            200,
            &Self::predict_value(
                &bound.aag,
                &prediction,
                &target,
                n,
                procs,
                machine_name.as_deref(),
            ),
        )
    }

    fn point_params(body: &Value) -> Result<(Option<i64>, usize, Deadline), ApiResponse> {
        let n = match body.get("n") {
            None => None,
            Some(_) => match uint_field(body, "n", 0)? {
                0 => return Err(bad_request("`n` must be positive")),
                n => Some(n as i64),
            },
        };
        let procs = uint_field(body, "procs", 8)?;
        if !(1..=1024).contains(&procs) {
            return Err(bad_request("`procs` must be between 1 and 1024"));
        }
        Ok((n, procs, deadline_from(body)?))
    }

    /// `POST /v1/sweep` — the predicted (and optionally simulated) curve
    /// over a size range, served through the same warm bind cache so a
    /// repeated or refined sweep recompiles nothing. The DES cross-check
    /// runs under the breaker: when it is open or the simulation fails,
    /// the point is served analytic-only and the response carries
    /// `"degraded": true`.
    fn sweep(&self, body: &Value, ctx: ReqCtx) -> ApiResponse {
        let _span = hpf_trace::span("serve.sweep");
        let target = match Target::from_body(body) {
            Ok(t) => t,
            Err(resp) => return resp,
        };
        let procs = match uint_field(body, "procs", 8) {
            Ok(p) if (1..=1024).contains(&p) => p,
            Ok(_) => return bad_request("`procs` must be between 1 and 1024"),
            Err(resp) => return resp,
        };
        let deadline = match deadline_from(body) {
            Ok(d) => d,
            Err(resp) => return resp,
        };
        let sizes = match Self::sweep_sizes(body) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let simulate = matches!(body.get("simulate"), Some(Value::Bool(true)));
        let sim_runs = match uint_field(body, "runs", 100) {
            Ok(r) if (1..=10_000).contains(&r) => r,
            Ok(_) => return bad_request("`runs` must be between 1 and 10000"),
            Err(resp) => return resp,
        };
        let machine_name = match machine_from(body, target.source_text()) {
            Ok(m) => m,
            Err(resp) => return resp,
        };

        // Batched evaluation: resolve the session artifact once, then
        // bind-and-interpret every point from it — one `SweepSession`-style
        // pass instead of a session lookup per point. Bind keys are
        // identical to the per-request path, so batched and unbatched
        // evaluation are interchangeable warm and byte-identical cold.
        let _batch = hpf_trace::span("batch");
        hpf_trace::counter_add("serve.batch.sessions", 1);
        hpf_trace::counter_add("serve.batch.points", sizes.len() as u64);
        let resolved = match self.resolve_target(&target) {
            Ok(r) => r,
            Err(f) => {
                let (status, value) = failure_value(&f, target.source_text());
                return ApiResponse::json(status, &value);
            }
        };
        let machine = match report::pipeline::calibrated_machine_for(
            machine_name
                .as_deref()
                .unwrap_or(hpf_machines::DEFAULT_MACHINE),
            procs,
        ) {
            Ok(m) => m,
            Err(e) => {
                return ApiResponse::json(400, &pipeline_error_value(&e, target.source_text()))
            }
        };
        let engine = InterpretationEngine::with_options(&machine, InterpOptions::default());
        let mut points = Vec::with_capacity(sizes.len());
        let mut degraded = false;
        for &n in &sizes {
            if let Err(f) = deadline.check("sweep_point") {
                let (status, value) = failure_value(&f, target.source_text());
                return ApiResponse::json(status, &value);
            }
            let bound = match self.bind_resolved(&resolved, n as i64, procs, &deadline) {
                Ok(b) => b,
                Err(f) => {
                    let (status, value) = failure_value(&f, target.source_text());
                    return ApiResponse::json(status, &value);
                }
            };
            let prediction = engine.interpret(&bound.aag);
            let mut point: Vec<(&str, Value)> = vec![
                ("n", num(n as f64)),
                ("predicted_s", num(prediction.total_seconds())),
                ("total", metrics_value(&prediction.total)),
            ];
            if simulate {
                if let Err(f) = deadline.check("simulate") {
                    let (status, value) = failure_value(&f, target.source_text());
                    return ApiResponse::json(status, &value);
                }
                // Profile through the process-wide memo (shared with the
                // sweep sessions and the advisor), then one seeded DES run
                // set — deterministic for a given (target, n, procs, runs).
                // The whole cross-check runs under the breaker: a panic or
                // an open breaker degrades this point to analytic-only.
                let sim_panic = ctx.sim_panic;
                let sim_machine_name = machine_name
                    .as_deref()
                    .unwrap_or(hpf_machines::DEFAULT_MACHINE);
                let outcome = self.breaker.call(|| {
                    if sim_panic {
                        panic!("chaos: injected DES cross-check panic");
                    }
                    let (profile, _) =
                        report::shared_profile(&bound.canonical, n, 50_000_000, &bound.analyzed);
                    let sim_machine = report::pipeline::machine_params(sim_machine_name, procs)
                        .expect("machine validated before the sweep loop");
                    let sim = Simulator::with_config(
                        &sim_machine,
                        SimConfig {
                            runs: sim_runs,
                            ..SimConfig::default()
                        },
                    );
                    let result = sim.simulate(&bound.spmd, profile.as_deref());
                    (result.measured(), result.std)
                });
                match outcome {
                    BreakerOutcome::Ok((measured, std)) => {
                        point.push(("measured_s", num(measured)));
                        point.push(("measured_std_s", num(std)));
                    }
                    BreakerOutcome::Rejected | BreakerOutcome::Failed(_) => {
                        hpf_trace::counter_add("serve.degraded", 1);
                        self.metrics.note_degraded();
                        degraded = true;
                    }
                }
            }
            points.push(Value::obj(point));
        }
        let mut top: Vec<(&str, Value)> = vec![
            ("schema", Value::Str(SCHEMA.into())),
            ("kind", Value::Str("sweep".into())),
            ("target", target.describe()),
            ("procs", num(procs as f64)),
            ("points", Value::Arr(points)),
        ];
        if let Some(m) = &machine_name {
            top.push(("machine", Value::Str(m.clone())));
        }
        if degraded {
            top.push(("degraded", Value::Bool(true)));
        }
        let value = Value::obj(top);
        if degraded {
            ApiResponse::json_uncacheable(200, &value)
        } else {
            ApiResponse::json(200, &value)
        }
    }

    /// Sizes from either an explicit `"sizes": [..]` array or a
    /// `{"min":.., "max":.., "steps":..}` doubling/linear range object.
    fn sweep_sizes(body: &Value) -> Result<Vec<usize>, ApiResponse> {
        const MAX_POINTS: usize = 64;
        match body.get("sizes") {
            Some(Value::Arr(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for it in items {
                    match it.as_f64() {
                        Some(f) if f >= 1.0 && f.fract() == 0.0 => out.push(f as usize),
                        _ => return Err(bad_request("`sizes` entries must be positive integers")),
                    }
                }
                if out.is_empty() || out.len() > MAX_POINTS {
                    return Err(bad_request(format!(
                        "`sizes` must have 1..={MAX_POINTS} entries"
                    )));
                }
                Ok(out)
            }
            Some(range @ Value::Obj(_)) => {
                let min = uint_field(range, "min", 64)?;
                let max = uint_field(range, "max", 512)?;
                if min == 0 || max < min {
                    return Err(bad_request(
                        "`sizes.min`/`sizes.max` must satisfy 1 <= min <= max",
                    ));
                }
                // Doubling sweep, the paper's Figure 4/5 convention.
                let mut out = Vec::new();
                let mut n = min;
                while n <= max && out.len() < MAX_POINTS {
                    out.push(n);
                    n *= 2;
                }
                Ok(out)
            }
            None => Err(bad_request("body needs `sizes` (array or {min,max} range)")),
            Some(_) => Err(bad_request(
                "`sizes` must be an array or a {min,max} object",
            )),
        }
    }

    /// `POST /v1/advise` — top-k directive recommendations via the
    /// hpf-advisor branch-and-bound search (deterministic across thread
    /// counts, so the response is cacheable like any other). The DES
    /// cross-validation of the top-k runs under the breaker: when it is
    /// open, the search runs without simulation (`top_k = 0` inside the
    /// advisor) and the ranked table is served analytic-only with
    /// `"degraded": true`.
    fn advise(&self, body: &Value, _ctx: ReqCtx) -> ApiResponse {
        let _span = hpf_trace::span("serve.advise");
        let target = match Target::from_body(body) {
            Ok(t) => t,
            Err(resp) => return resp,
        };
        let mut cfg = hpf_advisor::AdvisorConfig::quick();
        cfg.n = match uint_field(body, "n", cfg.n) {
            Ok(n) if n >= 1 => n,
            Ok(_) => return bad_request("`n` must be positive"),
            Err(resp) => return resp,
        };
        cfg.procs = match uint_field(body, "procs", cfg.procs) {
            Ok(p) if (1..=64).contains(&p) => p,
            Ok(_) => return bad_request("`procs` must be between 1 and 64"),
            Err(resp) => return resp,
        };
        cfg.top_k = match uint_field(body, "top_k", cfg.top_k) {
            Ok(k) if (1..=16).contains(&k) => k,
            Ok(_) => return bad_request("`top_k` must be between 1 and 16"),
            Err(resp) => return resp,
        };
        let deadline = match deadline_from(body) {
            Ok(d) => d,
            Err(resp) => return resp,
        };
        if let Err(f) = deadline.check("advise") {
            let (status, value) = failure_value(&f, target.source_text());
            return ApiResponse::json(status, &value);
        }
        let machine_name = match machine_from(body, target.source_text()) {
            Ok(m) => m,
            Err(resp) => return resp,
        };
        let machines_list = match Self::machines_param(body, target.source_text()) {
            Ok(m) => m,
            Err(resp) => return resp,
        };
        if machine_name.is_some() && machines_list.is_some() {
            return bad_request("give either `machine` or `machines`, not both");
        }
        if let Some(m) = &machine_name {
            cfg.machine = m.clone();
        }

        let advisor = match &target {
            Target::Kernel(name) => match kernels::kernel_by_name(name) {
                Some(k) => hpf_advisor::Advisor::for_kernel(&k),
                None => return bad_request(format!("unknown kernel `{name}`")),
            },
            Target::Source(src) => hpf_advisor::Advisor::for_source("<inline source>", src),
        };
        let advisor = match advisor {
            Ok(a) => a,
            Err(e) => {
                let source = target.source_text().unwrap_or("");
                return ApiResponse::json(400, &pipeline_error_value(&e, Some(source)));
            }
        };
        // The cross-validating search runs under the breaker. On an open
        // breaker or a contained panic, fall back to the same search with
        // the simulator fanned down to zero candidates — the analytic
        // ranking is identical (simulation never reorders it), only the
        // `simulated_s`/`sim_error_pct` columns disappear.
        // The advisor search is already a bind-once/evaluate-many batch
        // over its candidate directive space; count it on the same batch
        // telemetry as sweeps so `/v1/advise` and `/v1/sweep` report
        // comparable evaluation work.
        let _batch = hpf_trace::span("batch");
        hpf_trace::counter_add("serve.batch.sessions", 1);
        let shown_k = cfg.top_k;
        if let Some(names) = &machines_list {
            return self.advise_cross(&advisor, &cfg, names, &target, shown_k);
        }
        let (report, degraded) = match self.breaker.call(|| advisor.search(&cfg)) {
            BreakerOutcome::Ok(r) => (r, false),
            BreakerOutcome::Rejected | BreakerOutcome::Failed(_) => {
                hpf_trace::counter_add("serve.degraded", 1);
                self.metrics.note_degraded();
                let degraded_cfg = hpf_advisor::AdvisorConfig {
                    top_k: 0,
                    ..cfg.clone()
                };
                (advisor.search(&degraded_cfg), true)
            }
        };
        let report = match report {
            Ok(r) => r,
            Err(e) => {
                let source = target.source_text().unwrap_or("");
                return ApiResponse::json(400, &pipeline_error_value(&e, Some(source)));
            }
        };
        hpf_trace::counter_add("serve.batch.points", report.candidates as u64);

        let ranked: Vec<Value> = report
            .ranked
            .iter()
            .take(shown_k)
            .map(|c| {
                let mut entry: Vec<(&str, Value)> = vec![
                    ("directives", Value::Str(c.label.clone())),
                    ("predicted_s", num(c.predicted_s)),
                    ("metrics", metrics_value(&c.metrics)),
                ];
                if let Some(s) = c.simulated_s {
                    entry.push(("simulated_s", num(s)));
                }
                if let Some(e) = c.sim_error_pct {
                    entry.push(("sim_error_pct", num(e)));
                }
                Value::obj(entry)
            })
            .collect();
        let mut top: Vec<(&str, Value)> = vec![
            ("schema", Value::Str(SCHEMA.into())),
            ("kind", Value::Str("advise".into())),
            ("target", target.describe()),
            ("n", num(cfg.n as f64)),
            ("procs", num(cfg.procs as f64)),
            ("candidates", num(report.candidates as f64)),
            ("pruned", num(report.pruned as f64)),
            ("ranked", Value::Arr(ranked)),
        ];
        if machine_name.is_some() {
            top.push(("machine", Value::Str(report.machine.clone())));
        }
        if degraded {
            top.push(("degraded", Value::Bool(true)));
        }
        let value = Value::obj(top);
        if degraded {
            ApiResponse::json_uncacheable(200, &value)
        } else {
            ApiResponse::json(200, &value)
        }
    }

    /// The optional `"machines"` array on `/v1/advise`: every entry must
    /// name a registered backend (typed registry error otherwise).
    fn machines_param(
        body: &Value,
        source: Option<&str>,
    ) -> Result<Option<Vec<String>>, ApiResponse> {
        const MAX_MACHINES: usize = 8;
        match body.get("machines") {
            None => Ok(None),
            Some(Value::Arr(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for it in items {
                    let name = match it.as_str() {
                        Some(n) => n,
                        None => return Err(bad_request("`machines` entries must be strings")),
                    };
                    if let Err(e) = hpf_machines::machine(name) {
                        let err = PipelineError::from(e);
                        return Err(ApiResponse::json(400, &pipeline_error_value(&err, source)));
                    }
                    out.push(name.to_string());
                }
                if out.is_empty() || out.len() > MAX_MACHINES {
                    return Err(bad_request(format!(
                        "`machines` must have 1..={MAX_MACHINES} entries"
                    )));
                }
                Ok(Some(out))
            }
            Some(_) => Err(bad_request("`machines` must be an array of machine names")),
        }
    }

    /// The cross-machine advise: one merged ranking spanning every named
    /// backend. The whole multi-machine search runs under the breaker;
    /// when it is open, every per-machine search degrades to
    /// analytic-only (`top_k = 0`) exactly like single-machine advise.
    fn advise_cross(
        &self,
        advisor: &hpf_advisor::Advisor,
        cfg: &hpf_advisor::AdvisorConfig,
        names: &[String],
        target: &Target,
        shown_k: usize,
    ) -> ApiResponse {
        let (report, degraded) = match self.breaker.call(|| advisor.search_cross(cfg, names)) {
            BreakerOutcome::Ok(r) => (r, false),
            BreakerOutcome::Rejected | BreakerOutcome::Failed(_) => {
                hpf_trace::counter_add("serve.degraded", 1);
                self.metrics.note_degraded();
                let degraded_cfg = hpf_advisor::AdvisorConfig {
                    top_k: 0,
                    ..cfg.clone()
                };
                (advisor.search_cross(&degraded_cfg, names), true)
            }
        };
        let report = match report {
            Ok(r) => r,
            Err(e) => {
                let source = target.source_text().unwrap_or("");
                return ApiResponse::json(400, &pipeline_error_value(&e, Some(source)));
            }
        };
        let candidates: usize = report.reports.iter().map(|r| r.candidates).sum();
        let pruned: usize = report.reports.iter().map(|r| r.pruned).sum();
        hpf_trace::counter_add("serve.batch.points", candidates as u64);

        let shown = shown_k.saturating_mul(names.len());
        let ranked: Vec<Value> = report
            .ranked
            .iter()
            .take(shown)
            .map(|row| {
                let c = &row.candidate;
                let mut entry: Vec<(&str, Value)> = vec![
                    ("machine", Value::Str(row.machine.clone())),
                    ("directives", Value::Str(c.label.clone())),
                    ("predicted_s", num(c.predicted_s)),
                    ("metrics", metrics_value(&c.metrics)),
                ];
                if let Some(s) = c.simulated_s {
                    entry.push(("simulated_s", num(s)));
                }
                if let Some(e) = c.sim_error_pct {
                    entry.push(("sim_error_pct", num(e)));
                }
                Value::obj(entry)
            })
            .collect();
        let mut top: Vec<(&str, Value)> = vec![
            ("schema", Value::Str(SCHEMA.into())),
            ("kind", Value::Str("advise".into())),
            ("target", target.describe()),
            ("n", num(report.n as f64)),
            ("procs", num(report.procs as f64)),
            (
                "machines",
                Value::Arr(names.iter().map(|m| Value::Str(m.clone())).collect()),
            ),
            ("candidates", num(candidates as f64)),
            ("pruned", num(pruned as f64)),
            ("ranked", Value::Arr(ranked)),
        ];
        if degraded {
            top.push(("degraded", Value::Bool(true)));
        }
        let value = Value::obj(top);
        if degraded {
            ApiResponse::json_uncacheable(200, &value)
        } else {
            ApiResponse::json(200, &value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: String::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: String::new(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn api() -> Api {
        Api::new(&CacheConfig::default())
    }

    #[test]
    fn healthz_lists_kernels() {
        let resp = api().handle(&get("/v1/healthz"));
        assert_eq!(resp.status, 200);
        let v = parse_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        let names = v.get("kernels").and_then(Value::as_arr).unwrap();
        assert!(names.iter().any(|k| k.as_str() == Some("PI")));
    }

    #[test]
    fn predict_kernel_reports_phases() {
        let resp = api().handle(&post(
            "/v1/predict",
            r#"{"kernel": "PI", "n": 256, "procs": 4}"#,
        ));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let v = parse_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("schema").and_then(Value::as_str), Some(SCHEMA));
        assert!(v.get("predicted_s").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(!v.get("phases").and_then(Value::as_arr).unwrap().is_empty());
    }

    #[test]
    fn repeat_predicts_are_byte_identical_and_cached() {
        let api = api();
        let body = r#"{"kernel": "Laplace (Blk-Blk)", "n": 64, "procs": 4}"#;
        let a = api.handle(&post("/v1/predict", body));
        // Same request, different formatting and key order: same bytes.
        let b = api.handle(&post(
            "/v1/predict",
            "{\"procs\":4,\n  \"n\":64, \"kernel\":\"Laplace (Blk-Blk)\"}",
        ));
        assert_eq!(a.status, 200);
        assert_eq!(a.body, b.body, "near-repeat must serve identical bytes");
    }

    #[test]
    fn malformed_source_is_a_structured_400_with_the_cli_diagnostic() {
        let src = "PROGRAM BAD\nINTEGER, PARAMETER :: N = 64\nREAL A(N)\nA(1) = +\nEND\n";
        let body = Value::obj(vec![("source", Value::Str(src.into()))]).pretty();
        let resp = api().handle(&post("/v1/predict", &body));
        assert_eq!(resp.status, 400, "{}", String::from_utf8_lossy(&resp.body));
        let v = parse_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let err = v.get("error").unwrap();
        assert_eq!(err.get("kind").and_then(Value::as_str), Some("pipeline"));
        assert!(err.get("line").and_then(Value::as_f64).is_some());
        let diag = err.get("diagnostic").and_then(Value::as_str).unwrap();
        // The CLI renders the identical diagnostic for the same source.
        assert!(diag.contains('^'), "no caret in {diag:?}");
        assert!(diag.contains("A(1) = +"), "no source excerpt in {diag:?}");
    }

    #[test]
    fn expired_deadline_is_504() {
        // A zero-millisecond budget expires before the cold bind's first
        // stage; each test owns its Api, so nothing is warm yet.
        let resp = api().handle(&post(
            "/v1/predict",
            r#"{"kernel": "PI", "n": 8192, "procs": 4, "deadline_ms": 0}"#,
        ));
        assert_eq!(resp.status, 504, "{}", String::from_utf8_lossy(&resp.body));
        let v = parse_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Value::as_str),
            Some("deadline")
        );
    }

    #[test]
    fn sweep_returns_a_monotone_size_curve() {
        let resp = api().handle(&post(
            "/v1/sweep",
            r#"{"kernel": "PI", "sizes": {"min": 64, "max": 256}, "procs": 4}"#,
        ));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let v = parse_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let points = v.get("points").and_then(Value::as_arr).unwrap();
        assert_eq!(points.len(), 3); // 64, 128, 256
        let times: Vec<f64> = points
            .iter()
            .map(|p| p.get("predicted_s").and_then(Value::as_f64).unwrap())
            .collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "{times:?}");
    }

    #[test]
    fn sweep_with_simulation_reports_measurements() {
        let resp = api().handle(&post(
            "/v1/sweep",
            r#"{"kernel": "PI", "sizes": [128], "procs": 4, "simulate": true, "runs": 40}"#,
        ));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let v = parse_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let p0 = &v.get("points").and_then(Value::as_arr).unwrap()[0];
        let predicted = p0.get("predicted_s").and_then(Value::as_f64).unwrap();
        let measured = p0.get("measured_s").and_then(Value::as_f64).unwrap();
        let err = (predicted - measured).abs() / measured;
        assert!(err < 0.5, "prediction {predicted} vs measured {measured}");
    }

    #[test]
    fn request_errors_are_structured() {
        let api = api();
        for (path, body, needle) in [
            ("/v1/predict", "not json", "valid JSON"),
            ("/v1/predict", "[1,2]", "JSON object"),
            ("/v1/predict", "{}", "`kernel` name or HPF `source`"),
            ("/v1/predict", r#"{"kernel":"PI","source":"X"}"#, "not both"),
            ("/v1/predict", r#"{"kernel":"PI","procs":0}"#, "`procs`"),
            ("/v1/sweep", r#"{"kernel":"PI"}"#, "`sizes`"),
            ("/v1/sweep", r#"{"kernel":"PI","sizes":[]}"#, "`sizes`"),
        ] {
            let resp = api.handle(&post(path, body));
            assert_eq!(resp.status, 400, "{path} {body}");
            let text = String::from_utf8(resp.body.to_vec()).unwrap();
            assert!(text.contains(needle), "{path} {body}: {text}");
        }
    }

    #[test]
    fn predict_with_machine_echoes_and_changes_the_numbers() {
        let api = api();
        let a = api.handle(&post(
            "/v1/predict",
            r#"{"kernel": "PI", "n": 256, "procs": 4}"#,
        ));
        let b = api.handle(&post(
            "/v1/predict",
            r#"{"kernel": "PI", "n": 256, "procs": 4, "machine": "torus3d"}"#,
        ));
        assert_eq!(a.status, 200, "{}", String::from_utf8_lossy(&a.body));
        assert_eq!(b.status, 200, "{}", String::from_utf8_lossy(&b.body));
        let va = parse_json(std::str::from_utf8(&a.body).unwrap()).unwrap();
        let vb = parse_json(std::str::from_utf8(&b.body).unwrap()).unwrap();
        // Conditional echo: only the request that named a machine gets one
        // back — the default body stays byte-compatible with the
        // pre-registry service.
        assert!(va.get("machine").is_none(), "default must not echo");
        assert_eq!(vb.get("machine").and_then(Value::as_str), Some("torus3d"));
        let pa = va.get("predicted_s").and_then(Value::as_f64).unwrap();
        let pb = vb.get("predicted_s").and_then(Value::as_f64).unwrap();
        assert!(pa > 0.0 && pb > 0.0 && pa != pb, "{pa} vs {pb}");
    }

    #[test]
    fn unknown_machine_is_a_structured_400_from_the_registry() {
        let resp = api().handle(&post(
            "/v1/predict",
            r#"{"kernel": "PI", "n": 64, "procs": 4, "machine": "cm5"}"#,
        ));
        assert_eq!(resp.status, 400, "{}", String::from_utf8_lossy(&resp.body));
        let v = parse_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let err = v.get("error").unwrap();
        assert_eq!(err.get("kind").and_then(Value::as_str), Some("pipeline"));
        assert_eq!(err.get("stage").and_then(Value::as_str), Some("machine"));
        let msg = err.get("message").and_then(Value::as_str).unwrap();
        assert!(msg.contains("cm5"), "{msg}");
        assert!(msg.contains("ipsc860"), "should list available: {msg}");
    }

    #[test]
    fn machine_node_range_is_enforced_as_a_structured_400() {
        // The multicore backend tops out at 128 nodes; 256 is in the
        // generic procs range but out of this machine's.
        let resp = api().handle(&post(
            "/v1/predict",
            r#"{"kernel": "PI", "n": 64, "procs": 256, "machine": "multicore"}"#,
        ));
        assert_eq!(resp.status, 400, "{}", String::from_utf8_lossy(&resp.body));
        let v = parse_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let err = v.get("error").unwrap();
        assert_eq!(err.get("stage").and_then(Value::as_str), Some("machine"));
    }

    #[test]
    fn advise_machines_returns_one_merged_ranking() {
        let resp = api().handle(&post(
            "/v1/advise",
            r#"{"kernel": "Laplace (Blk-Blk)", "n": 96, "procs": 4, "top_k": 1,
                "machines": ["ipsc860", "multicore"]}"#,
        ));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let v = parse_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let machines = v.get("machines").and_then(Value::as_arr).unwrap();
        assert_eq!(machines.len(), 2);
        let ranked = v.get("ranked").and_then(Value::as_arr).unwrap();
        assert!(!ranked.is_empty());
        let row_machines: Vec<&str> = ranked
            .iter()
            .map(|r| r.get("machine").and_then(Value::as_str).unwrap())
            .collect();
        // The merged table is one ranking: the idealized multicore node
        // beats the 1994 hypercube, and rows are predicted-time ordered.
        assert_eq!(row_machines[0], "multicore");
        let times: Vec<f64> = ranked
            .iter()
            .map(|r| r.get("predicted_s").and_then(Value::as_f64).unwrap())
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    }

    #[test]
    fn unknown_route_and_method_are_404_405() {
        let api = api();
        assert_eq!(api.handle(&get("/nope")).status, 404);
        assert_eq!(api.handle(&get("/v1/predict")).status, 405);
        assert_eq!(api.handle(&post("/v1/healthz", "")).status, 405);
    }
}
