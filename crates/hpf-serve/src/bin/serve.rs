//! `serve` — the prediction service CLI.
//!
//! ```text
//! serve serve   [--addr HOST:PORT] [--workers N] [--queue N] [--shards N] [--no-trace]
//! serve loadgen [--quick] [--overload] [--requests R] [--clients C] [--workers W]
//!               [--seed S] [--shards N] [--pipeline D]
//! serve chaos   [--quick] [--requests R] [--clients C] [--workers W] [--seed S]
//!               [--metrics-out PATH]
//! ```
//!
//! `serve serve` runs the HTTP service until a `POST /v1/shutdown`
//! arrives, then drains in-flight work and exits 0. Workers default to
//! the machine's available parallelism (clamped to [2, 64]) and cache
//! shards default to the worker count rounded up to a power of two; the
//! chosen values are logged at startup. `serve loadgen`
//! starts a private in-process server, fires the seeded deterministic
//! request mix at it, and prints throughput, latency percentiles, the
//! warm-cache hit rate, and the order-independent response checksum;
//! `--overload` switches to the churn-heavy saturation profile that
//! reports the shed/served split and served-only percentiles instead.
//! `serve chaos` runs the seeded service-level fault-injection plan
//! (handler panics, DES panics, deadline storms, slow-loris reads,
//! truncated bodies, client aborts) against a private server and exits
//! non-zero unless the resilience contract holds — zero worker deaths,
//! structured answers for every fault, and a healthy-request checksum
//! bit-identical to a fault-free baseline pass. `--metrics-out PATH`
//! additionally writes the plan-deterministic summary of the pass's
//! `/v1/metrics?since=` delta export as JSON — CI diffs it against a
//! checked-in golden at several worker counts.

use hpf_serve::{chaos, loadgen, server, ChaosConfig, LoadgenConfig, OverloadConfig, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: serve serve   [--addr HOST:PORT] [--workers N] [--queue N] [--shards N] [--no-trace]\n\
         \x20      serve loadgen [--quick] [--overload] [--requests R] [--clients C] [--workers W]\n\
         \x20                    [--seed S] [--shards N] [--pipeline D]\n\
         \x20      serve chaos   [--quick] [--requests R] [--clients C] [--workers W] [--seed S]\n\
         \x20                    [--metrics-out PATH]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") | None => run_server(&args[args.len().min(1)..]),
        Some("loadgen") => run_loadgen(&args[1..]),
        Some("chaos") => run_chaos(&args[1..]),
        Some("--help") | Some("-h") => usage(),
        Some(other) => {
            eprintln!("unknown subcommand: {other}");
            usage()
        }
    }
}

fn take(args: &[String], i: &mut usize) -> String {
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| usage())
}

fn run_server(args: &[String]) {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut cfg = ServerConfig::default();
    let mut trace = true;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take(args, &mut i),
            "--workers" => cfg.workers = take(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--queue" => cfg.queue_depth = take(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--shards" => cfg.cache.shards = take(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--no-trace" => trace = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
        i += 1;
    }

    if trace {
        // Feeds /v1/metrics; the pipeline is bit-neutral under tracing.
        hpf_trace::enable();
    }
    // Mirror the derivations in `server::start` / `ShardedLru::new` so the
    // startup line reports the effective values, not the raw flags.
    let workers = cfg.workers.max(1);
    let shards = if cfg.cache.shards == 0 {
        workers
    } else {
        cfg.cache.shards
    }
    .max(1)
    .next_power_of_two();
    let handle = match server::start(&addr, cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            std::process::exit(1)
        }
    };
    println!(
        "serve: listening on http://{} ({workers} workers, {shards} cache shards)",
        handle.addr()
    );
    handle.wait();
    println!("serve: drained, exiting");
}

fn run_loadgen(args: &[String]) {
    let mut cfg = LoadgenConfig::default();
    let mut overload = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                cfg = LoadgenConfig {
                    requests: LoadgenConfig::quick().requests,
                    ..cfg
                }
            }
            "--overload" => overload = true,
            "--requests" => cfg.requests = take(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--clients" => cfg.clients = take(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = take(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = take(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--shards" => cfg.shards = take(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--pipeline" => cfg.pipeline = take(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
        i += 1;
    }

    if overload {
        // The overload preset supplies its own request count, client
        // surplus, and seed; explicit flags still override it.
        let quick = OverloadConfig::quick();
        let defaults = LoadgenConfig::default();
        let ocfg = OverloadConfig {
            requests: if cfg.requests == defaults.requests {
                quick.requests
            } else {
                cfg.requests
            },
            clients: if cfg.clients == defaults.clients {
                quick.clients
            } else {
                cfg.clients
            },
            workers: if cfg.workers == defaults.workers {
                quick.workers
            } else {
                cfg.workers
            },
            seed: if cfg.seed == defaults.seed {
                quick.seed
            } else {
                cfg.seed
            },
            shards: cfg.shards,
        };
        match loadgen::run_overload(&ocfg) {
            Ok(report) => {
                print!("{}", report.render());
                if report.failed > 0 || report.mismatched_shapes > 0 {
                    eprintln!("loadgen: overload contract violated");
                    std::process::exit(1)
                }
            }
            Err(e) => {
                eprintln!("loadgen: {e}");
                std::process::exit(1)
            }
        }
        return;
    }

    match loadgen::run(&cfg) {
        Ok(report) => print!("{}", report.render()),
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(1)
        }
    }
}

fn run_chaos(args: &[String]) {
    let mut cfg = ChaosConfig::default();
    let mut metrics_out: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                cfg = ChaosConfig {
                    requests: ChaosConfig::quick().requests,
                    ..cfg
                }
            }
            "--requests" => cfg.requests = take(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--clients" => cfg.clients = take(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = take(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = take(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--metrics-out" => metrics_out = Some(take(args, &mut i)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
        i += 1;
    }

    match chaos::run(&cfg) {
        Ok(report) => {
            print!("{}", report.render());
            if let Some(path) = metrics_out {
                let doc = format!("{}\n", report.metrics_summary.pretty());
                if let Err(e) = std::fs::write(&path, doc) {
                    eprintln!("chaos: cannot write {path}: {e}");
                    std::process::exit(1)
                }
                println!("metrics summary written to {path}");
            }
            if !report.passed() {
                std::process::exit(1)
            }
        }
        Err(e) => {
            eprintln!("chaos: {e}");
            std::process::exit(1)
        }
    }
}
