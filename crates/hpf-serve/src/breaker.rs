//! A circuit breaker for the expensive DES cross-check.
//!
//! `/v1/sweep` (with `simulate: true`) and `/v1/advise` both lean on the
//! discrete-event simulator — the one stage of a request that is orders
//! of magnitude slower than the analytic interpreter and the only one
//! that has ever been worth injecting faults into. The breaker wraps that
//! stage in the classic three-state machine:
//!
//! * **Closed** — calls run normally; consecutive failures (a panic
//!   caught by the breaker's own `catch_unwind`, or a call that exceeds
//!   the latency cap) are counted, and reaching the threshold trips the
//!   breaker open;
//! * **Open** — calls are rejected without running until the cooldown
//!   elapses; the caller serves the analytic-only answer with
//!   `"degraded": true` — the service-level analogue of PR 1's
//!   degraded-mode SAU prediction;
//! * **HalfOpen** — after the cooldown, exactly one trial call runs; a
//!   clean, fast success closes the breaker, anything else reopens it.
//!
//! Trace counters: `serve.breaker_open`, `serve.breaker_half_open`,
//! `serve.breaker_close`, plus `serve.breaker_rejected` per shed call.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures (panic or over-latency call) that trip the
    /// breaker open.
    pub failure_threshold: u32,
    /// A successful call slower than this still counts as a failure for
    /// the state machine (its result is served — it already ran).
    pub latency_cap_ms: u64,
    /// How long the breaker stays open before allowing a half-open trial.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            latency_cap_ms: 2_000,
            cooldown_ms: 500,
        }
    }
}

#[derive(Debug)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen { trial_in_flight: bool },
}

/// The outcome of a breaker-guarded call.
#[derive(Debug)]
pub enum BreakerOutcome<T> {
    /// The call ran and returned (it may still have counted as slow).
    Ok(T),
    /// The breaker is open (or a half-open trial is already in flight);
    /// the call never ran. Serve the degraded answer.
    Rejected,
    /// The call panicked; the panic was contained here. Serve the
    /// degraded answer.
    Failed(String),
}

/// Three-state circuit breaker, shared by every worker behind the `Api`.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
}

fn lock<'a>(m: &'a Mutex<State>) -> std::sync::MutexGuard<'a, State> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A bounded, human-readable excerpt of a panic payload (shared with the
/// server's structured-500 path).
pub(crate) fn panic_excerpt(payload: Box<dyn std::any::Any + Send>) -> String {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    let mut excerpt: String = msg.chars().take(200).collect();
    if excerpt.len() < msg.len() {
        excerpt.push('…');
    }
    excerpt
}

impl Breaker {
    pub fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            cfg,
            state: Mutex::new(State::Closed {
                consecutive_failures: 0,
            }),
        }
    }

    /// The current state, for `/v1/healthz`.
    pub fn state_label(&self) -> &'static str {
        match *lock(&self.state) {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen { .. } => "half_open",
        }
    }

    /// Admission decision: may a call run right now? Transitions
    /// Open → HalfOpen when the cooldown has elapsed.
    fn admit(&self) -> bool {
        let mut state = lock(&self.state);
        match *state {
            State::Closed { .. } => true,
            State::Open { until } => {
                if Instant::now() >= until {
                    *state = State::HalfOpen {
                        trial_in_flight: true,
                    };
                    hpf_trace::counter_add("serve.breaker_half_open", 1);
                    true
                } else {
                    false
                }
            }
            State::HalfOpen {
                ref mut trial_in_flight,
            } => {
                // Exactly one concurrent trial; the rest are rejected.
                if *trial_in_flight {
                    false
                } else {
                    *trial_in_flight = true;
                    true
                }
            }
        }
    }

    fn record(&self, failed: bool) {
        let mut state = lock(&self.state);
        if failed {
            let trip = match *state {
                State::Closed {
                    ref mut consecutive_failures,
                } => {
                    *consecutive_failures += 1;
                    *consecutive_failures >= self.cfg.failure_threshold
                }
                // A failed half-open trial reopens immediately.
                State::HalfOpen { .. } => true,
                State::Open { .. } => false,
            };
            if trip {
                *state = State::Open {
                    until: Instant::now() + Duration::from_millis(self.cfg.cooldown_ms),
                };
                hpf_trace::counter_add("serve.breaker_open", 1);
            }
        } else {
            match *state {
                State::Closed {
                    ref mut consecutive_failures,
                } => *consecutive_failures = 0,
                State::HalfOpen { .. } => {
                    *state = State::Closed {
                        consecutive_failures: 0,
                    };
                    hpf_trace::counter_add("serve.breaker_close", 1);
                }
                State::Open { .. } => {}
            }
        }
    }

    /// Run `f` under the breaker. Panics are contained here (they count
    /// as failures and surface as [`BreakerOutcome::Failed`]); a call
    /// slower than the latency cap counts as a failure but its value is
    /// still returned.
    pub fn call<T>(&self, f: impl FnOnce() -> T) -> BreakerOutcome<T> {
        if !self.admit() {
            hpf_trace::counter_add("serve.breaker_rejected", 1);
            return BreakerOutcome::Rejected;
        }
        let started = Instant::now();
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => {
                let slow = started.elapsed() > Duration::from_millis(self.cfg.latency_cap_ms);
                self.record(slow);
                BreakerOutcome::Ok(v)
            }
            Err(payload) => {
                self.record(true);
                BreakerOutcome::Failed(panic_excerpt(payload))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> Breaker {
        Breaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown_ms,
            ..BreakerConfig::default()
        })
    }

    #[test]
    fn trips_after_consecutive_panics_and_rejects_while_open() {
        let b = breaker(3, 60_000);
        for _ in 0..3 {
            match b.call(|| -> u32 { panic!("boom") }) {
                BreakerOutcome::Failed(msg) => assert!(msg.contains("boom")),
                other => panic!("expected Failed, got {other:?}"),
            }
        }
        assert_eq!(b.state_label(), "open");
        match b.call(|| 1u32) {
            BreakerOutcome::Rejected => {}
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn successes_reset_the_failure_count() {
        let b = breaker(2, 60_000);
        let _ = b.call(|| -> u32 { panic!("one") });
        match b.call(|| 7u32) {
            BreakerOutcome::Ok(7) => {}
            other => panic!("{other:?}"),
        }
        // The earlier failure was cleared: one more does not trip.
        let _ = b.call(|| -> u32 { panic!("two") });
        assert_eq!(b.state_label(), "closed");
    }

    #[test]
    fn half_open_trial_closes_on_success_and_reopens_on_failure() {
        let b = breaker(1, 0); // cooldown 0: open immediately re-arms
        let _ = b.call(|| -> u32 { panic!("trip") });
        assert_eq!(b.state_label(), "open");
        // Cooldown elapsed: the next call is the half-open trial.
        match b.call(|| 9u32) {
            BreakerOutcome::Ok(9) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(b.state_label(), "closed");

        let _ = b.call(|| -> u32 { panic!("trip again") });
        assert_eq!(b.state_label(), "open");
        let _ = b.call(|| -> u32 { panic!("failed trial") });
        assert_eq!(b.state_label(), "open");
    }

    #[test]
    fn slow_success_counts_as_failure_but_serves_its_value() {
        let b = Breaker::new(BreakerConfig {
            failure_threshold: 1,
            latency_cap_ms: 0, // everything is "slow"
            cooldown_ms: 60_000,
        });
        match b.call(|| {
            std::thread::sleep(Duration::from_millis(2));
            42u32
        }) {
            BreakerOutcome::Ok(42) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(b.state_label(), "open");
    }

    #[test]
    fn panic_excerpt_is_bounded() {
        let b = breaker(10, 0);
        let long = "x".repeat(5_000);
        match b.call(move || -> u32 { panic!("{long}") }) {
            BreakerOutcome::Failed(msg) => assert!(msg.chars().count() <= 201, "{}", msg.len()),
            other => panic!("{other:?}"),
        }
    }
}
