//! Warm compiled state shared by every worker, behind bounded LRU caches.
//!
//! Four layers, all keyed deterministically and all safe to recompute on a
//! miss (every cached object is a pure function of its key):
//!
//! * **kernel artifacts** — [`kernels::CompiledKernel`], one parse per
//!   kernel shape (the PR-3 warm-session primitive);
//! * **source programs** — parsed ASTs of POSTed HPF text, keyed by the
//!   full source (directives included — they shape the partitioning);
//! * **bound artifacts** — (analyzed, SPMD, AAG) per `(origin, n, procs)`
//!   point, so a repeat or near-repeat request skips parse, semantic
//!   analysis *and* partitioning entirely;
//! * **response bodies** — the serialized JSON answer per canonical
//!   request, the layer that makes a warm `/v1/predict` a hash lookup.
//!
//! Each layer is a [`ShardedLru`]: N power-of-two shards selected by the
//! FNV-1a hash of the key, each shard its own mutex *and* its own LRU
//! clock, so hot-path lookups from different workers stop convoying on
//! one global lock. A failed `try_lock` (another worker holds the shard)
//! is counted on `serve.cache.shard_contention` before falling back to a
//! blocking lock — the counter is the observable proof that sharding is
//! (or is not) pulling its weight at a given worker count.
//!
//! Cold misses are further deduplicated by a [`SingleFlight`] table keyed
//! by the canonical body key ([`body_cache_key`]): the first request for
//! a missing body becomes the *leader* and computes it; concurrent
//! duplicates park on a condvar and receive the leader's `Arc<Vec<u8>>`
//! verbatim. Only cacheable 200 bodies are shared — a degraded or failed
//! leader publishes "solo", and every parked waiter then computes its own
//! answer (degraded bodies depend on breaker state, not the request, so
//! replaying them to waiters could serve a stale degradation).
//!
//! Functional-interpreter profiles are *not* cached here: they live in the
//! process-wide memo behind [`report::shared_profile`], keyed by the
//! directive-stripped source, so directive variants of one program share a
//! single profile with the advisor and the sweep sessions.
//!
//! Misses are computed outside the cache locks; two workers racing on the
//! same key both compute the same (deterministic) value and the second
//! insert is a harmless overwrite — responses stay bit-identical whatever
//! the interleaving.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, TryLockError};
use std::time::{Duration, Instant};

use hpf_compiler::{compile, CompileOptions, SpmdProgram};
use hpf_lang::{analyze, parse_program, AnalyzedProgram};
use hpf_trace::json::Value;
use kernels::CompiledKernel;
use report::lru::LruMap;
use report::{directive_free_source, PipelineError, PipelineStage};

use crate::loadgen::{fnv1a, FNV_OFFSET};

/// Capacities of the serving caches.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Distinct kernel artifacts + parsed source programs.
    pub sessions: usize,
    /// Distinct bound (analyzed, SPMD, AAG) artifacts.
    pub binds: usize,
    /// Distinct serialized response bodies.
    pub bodies: usize,
    /// Lock shards per cache layer, rounded up to a power of two.
    /// `0` = derive: the server sets it from its worker count; a
    /// standalone [`ServeCache::new`] falls back to a single shard.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            sessions: 32,
            binds: 128,
            bodies: 512,
            shards: 0,
        }
    }
}

/// Canonical cache key for a POST body: path + re-serialized (sorted,
/// whitespace-normalized) JSON with the timing-only `deadline_ms` knob
/// removed — so near-repeat requests (reordered keys, different
/// formatting, different deadlines) share one cached response. This one
/// function keys both the response-body cache and the single-flight
/// table, so "same cached answer" and "same in-flight computation" can
/// never disagree about request identity.
pub fn body_cache_key(path: &str, body: &Value) -> String {
    let canonical = match body {
        Value::Obj(map) => {
            let mut map = map.clone();
            map.remove("deadline_ms");
            Value::Obj(map)
        }
        other => other.clone(),
    };
    format!("{path}\u{0}{}", canonical.pretty())
}

/// A request deadline, checked between pipeline stages: work in progress
/// is never interrupted mid-stage, but no new stage starts past the
/// deadline — the graceful-cancellation contract.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline (loadgen warmup, tests).
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// A deadline `ms` milliseconds from now.
    pub fn in_ms(ms: u64) -> Self {
        Deadline {
            at: Some(Instant::now() + Duration::from_millis(ms)),
        }
    }

    /// Fail with the stage that would have started past the deadline.
    pub fn check(&self, stage: &'static str) -> Result<(), ServeFailure> {
        match self.at {
            Some(at) if Instant::now() >= at => {
                hpf_trace::counter_add("serve.deadline_exceeded", 1);
                Err(ServeFailure::Deadline { stage })
            }
            _ => Ok(()),
        }
    }

    /// Budget left: `None` = unbounded, `Some(ZERO)` = already expired.
    /// Parked single-flight waiters use this to bound their condvar wait.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

/// Why a cached evaluation could not be served.
#[derive(Debug)]
pub enum ServeFailure {
    /// The compilation pipeline rejected the program (spanned, maps to a
    /// structured 400).
    Pipeline(PipelineError),
    /// The request deadline expired before `stage` could start (504).
    Deadline { stage: &'static str },
}

impl From<PipelineError> for ServeFailure {
    fn from(e: PipelineError) -> Self {
        ServeFailure::Pipeline(e)
    }
}

impl From<kernels::KernelBindError> for ServeFailure {
    fn from(e: kernels::KernelBindError) -> Self {
        ServeFailure::Pipeline(e.into())
    }
}

impl std::fmt::Display for ServeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeFailure::Pipeline(e) => write!(f, "{e}"),
            ServeFailure::Deadline { stage } => {
                write!(f, "deadline exceeded before stage `{stage}`")
            }
        }
    }
}

/// A POSTed program parsed once: the AST plus the directive-stripped text
/// that keys the shared profile memo.
#[derive(Debug)]
pub struct SourceProgram {
    pub source: String,
    pub canonical: String,
    pub program: hpf_lang::ast::Program,
}

/// Everything the predict/sweep paths need for one `(program, n, procs)`
/// point, compiled once and re-served warm.
#[derive(Debug)]
pub struct BoundArtifact {
    pub analyzed: AnalyzedProgram,
    pub spmd: SpmdProgram,
    pub aag: appgraph::Aag,
    /// Directive-stripped source — the shared-profile memo key.
    pub canonical: String,
}

fn lock_plain<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A bounded LRU map split into power-of-two lock shards.
///
/// The shard for a key is `fnv1a(key) & (shards - 1)`; each shard is an
/// independent [`LruMap`] with its own capacity slice and its own logical
/// clock, so recency ordering (and therefore eviction) is per-shard.
/// Every cached value is a pure function of its key, so shard-local
/// eviction can only ever cost a recompute, never correctness.
///
/// Lock acquisition first tries `try_lock`; when another thread holds the
/// shard the miss is counted on `serve.cache.shard_contention` before
/// blocking — making lock convoys visible instead of silent.
#[derive(Debug)]
pub struct ShardedLru<V> {
    shards: Vec<Mutex<LruMap<String, V>>>,
    mask: u64,
}

impl<V: Clone> ShardedLru<V> {
    /// `total_cap` entries spread over `shard_count` shards (rounded up
    /// to a power of two, at least one; each shard holds at least one
    /// entry).
    pub fn new(total_cap: usize, shard_count: usize) -> Self {
        let count = shard_count.max(1).next_power_of_two();
        let per_shard = total_cap.div_ceil(count).max(1);
        ShardedLru {
            shards: (0..count)
                .map(|_| Mutex::new(LruMap::new(per_shard)))
                .collect(),
            mask: count as u64 - 1,
        }
    }

    /// Number of lock shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Capacity of each shard.
    pub fn per_shard_cap(&self) -> usize {
        lock_plain(&self.shards[0]).capacity()
    }

    /// The shard index `key` maps to.
    pub fn shard_index(&self, key: &str) -> usize {
        (fnv1a(FNV_OFFSET, key.as_bytes()) & self.mask) as usize
    }

    /// Entries currently held, per shard (for capacity assertions).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| lock_plain(s).len()).collect()
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shard_lens().iter().sum()
    }

    /// Is the whole map empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, LruMap<String, V>> {
        match self.shards[idx].try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                hpf_trace::counter_add("serve.cache.shard_contention", 1);
                lock_plain(&self.shards[idx])
            }
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
        }
    }

    /// Look up `key`, marking it most recently used in its shard.
    pub fn get(&self, key: &str) -> Option<V> {
        self.lock_shard(self.shard_index(key))
            .get(&key.to_string())
            .cloned()
    }

    /// Insert `key → value`; returns the entry the shard evicted, if any.
    pub fn insert(&self, key: String, value: V) -> Option<(String, V)> {
        let idx = self.shard_index(&key);
        self.lock_shard(idx).insert(key, value)
    }
}

/// Outcome of parking on an in-flight computation.
#[derive(Debug)]
pub enum FlightWait {
    /// The leader published a cacheable 200 body — serve it verbatim.
    Shared(Arc<Vec<u8>>),
    /// The leader's answer was not shareable (error, degraded, 504):
    /// compute independently.
    Solo,
    /// The waiter's own deadline expired before the leader finished.
    Expired,
}

#[derive(Debug)]
enum FlightState {
    Pending,
    Shared(Arc<Vec<u8>>),
    Solo,
}

/// One in-flight computation: concurrent requests for the same canonical
/// body park here until the leader publishes.
#[derive(Debug)]
pub struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    /// Park until the leader publishes, bounded by the waiter's own
    /// deadline — a parked request is still subject to its caller's
    /// budget and answers 504 rather than waiting past it.
    pub fn wait(&self, deadline: &Deadline) -> FlightWait {
        // The tick bounds each sleep so a deadline that lands mid-wait is
        // honored promptly even if a wakeup is missed.
        const TICK: Duration = Duration::from_millis(100);
        let mut st = lock_plain(&self.state);
        loop {
            match &*st {
                FlightState::Shared(b) => return FlightWait::Shared(b.clone()),
                FlightState::Solo => return FlightWait::Solo,
                FlightState::Pending => {}
            }
            let wait_for = match deadline.remaining() {
                Some(rem) if rem.is_zero() => return FlightWait::Expired,
                Some(rem) => rem.min(TICK),
                None => TICK,
            };
            st = self
                .cv
                .wait_timeout(st, wait_for)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }
}

/// Leadership of one in-flight key. Publish a shareable body with
/// [`publish_shared`](FlightLeader::publish_shared); dropping without
/// publishing (error path, degraded answer, or a handler panic unwinding
/// through) releases every waiter as [`FlightWait::Solo`] — waiters can
/// never hang on a leader that failed.
#[derive(Debug)]
pub struct FlightLeader<'a> {
    table: &'a SingleFlight,
    key: String,
    flight: Arc<Flight>,
}

impl FlightLeader<'_> {
    /// Hand the leader's cacheable 200 body to every parked duplicate.
    pub fn publish_shared(self, body: Arc<Vec<u8>>) {
        *lock_plain(&self.flight.state) = FlightState::Shared(body);
        // Drop removes the table entry and notifies the waiters.
    }
}

impl Drop for FlightLeader<'_> {
    fn drop(&mut self) {
        // Remove the entry first so new arrivals start a fresh flight
        // instead of parking on a finished one.
        self.table.remove(&self.key);
        {
            let mut st = lock_plain(&self.flight.state);
            if matches!(*st, FlightState::Pending) {
                *st = FlightState::Solo;
            }
        }
        self.flight.cv.notify_all();
    }
}

/// Joining an in-flight table: either this request leads the computation
/// or it parks behind whoever does.
#[derive(Debug)]
pub enum FlightJoin<'a> {
    Leader(FlightLeader<'a>),
    Waiter(Arc<Flight>),
}

/// The per-shard in-flight table: at most one leader per canonical body
/// key at any moment. Sharded with the same FNV mapping as the caches so
/// join/remove never funnel through one lock.
#[derive(Debug)]
pub struct SingleFlight {
    shards: Vec<Mutex<HashMap<String, Arc<Flight>>>>,
    mask: u64,
}

impl SingleFlight {
    fn new(shard_count: usize) -> Self {
        let count = shard_count.max(1).next_power_of_two();
        SingleFlight {
            shards: (0..count).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: count as u64 - 1,
        }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, Arc<Flight>>> {
        &self.shards[(fnv1a(FNV_OFFSET, key.as_bytes()) & self.mask) as usize]
    }

    /// Become the leader for `key`, or park behind the current one.
    pub fn join(&self, key: &str) -> FlightJoin<'_> {
        let mut map = lock_plain(self.shard(key));
        if let Some(f) = map.get(key) {
            return FlightJoin::Waiter(f.clone());
        }
        let flight = Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        });
        map.insert(key.to_string(), flight.clone());
        FlightJoin::Leader(FlightLeader {
            table: self,
            key: key.to_string(),
            flight,
        })
    }

    fn remove(&self, key: &str) {
        lock_plain(self.shard(key)).remove(key);
    }
}

/// The shared cache stack. One instance per server, shared by every
/// worker behind an `Arc`.
#[derive(Debug)]
pub struct ServeCache {
    kernels: ShardedLru<Arc<CompiledKernel>>,
    programs: ShardedLru<Arc<SourceProgram>>,
    binds: ShardedLru<Arc<BoundArtifact>>,
    bodies: ShardedLru<Arc<Vec<u8>>>,
    /// Exact-raw-bytes front memo over `bodies` — see [`ServeCache::wire_lookup`].
    wire: ShardedLru<Arc<WireEntry>>,
    flights: SingleFlight,
}

/// One wire-memo entry: the cached response for an exact raw request
/// body, plus the per-kernel latency-sketch name the parsed path would
/// have recorded into (kept so a memo hit feeds the same per-kernel
/// distribution as a canonical-cache hit).
#[derive(Debug)]
pub struct WireEntry {
    pub body: Arc<Vec<u8>>,
    pub kernel_metric: Option<String>,
    /// `serve.latency.machine.<name>` sketch name, for requests that
    /// named a machine explicitly.
    pub machine_metric: Option<String>,
}

fn wire_key(path: &str, raw: &str) -> String {
    format!("{path}\u{0}{raw}")
}

fn counter_pair(prefix: &'static str, hit: bool) {
    hpf_trace::counter_add(
        match (prefix, hit) {
            ("session", true) => "serve.session.hit",
            ("session", false) => "serve.session.miss",
            ("bind", true) => "serve.bind.hit",
            ("bind", false) => "serve.bind.miss",
            _ => unreachable!(),
        },
        1,
    );
}

/// The shared cold-bind body for suite kernels: semantic analysis + SPMD
/// lowering + AAG construction from an already-resolved artifact, with
/// the deadline checked between stages. Used by both the per-request path
/// ([`ServeCache::bind_kernel`]) and the batched sweep path that resolves
/// the artifact once for many points.
fn build_kernel_bind(
    compiled: &CompiledKernel,
    n: i64,
    procs: usize,
    deadline: &Deadline,
) -> Result<BoundArtifact, ServeFailure> {
    deadline.check("analyze")?;
    let (analyzed, spmd) = compiled.bind(n, procs, &CompileOptions::default())?;
    deadline.check("build_aag")?;
    let aag = appgraph::build_aag(&spmd);
    Ok(BoundArtifact {
        analyzed,
        spmd,
        aag,
        canonical: directive_free_source(compiled.canonical_source()),
    })
}

/// The shared cold-bind body for POSTed source, from an already-parsed
/// program. Stage order and deadline checks match the historical inline
/// path exactly, so error bodies are byte-identical.
fn build_source_bind(
    program: &SourceProgram,
    n: Option<i64>,
    procs: usize,
    deadline: &Deadline,
) -> Result<BoundArtifact, ServeFailure> {
    deadline.check("analyze")?;
    let mut overrides = std::collections::BTreeMap::new();
    if let Some(n) = n {
        overrides.insert("N".to_string(), n);
    }
    let analyzed = analyze(&program.program, &overrides).map_err(PipelineError::from)?;
    deadline.check("compile")?;
    let opts = CompileOptions {
        nodes: procs,
        ..CompileOptions::default()
    };
    let spmd = compile(&analyzed, &opts).map_err(PipelineError::from)?;
    deadline.check("build_aag")?;
    let aag = appgraph::build_aag(&spmd);
    Ok(BoundArtifact {
        analyzed,
        spmd,
        aag,
        canonical: program.canonical.clone(),
    })
}

fn kernel_bind_key(name: &str, n: i64, procs: usize) -> String {
    format!("k\u{0}{name}\u{0}{n}\u{0}{procs}")
}

fn source_bind_key(source: &str, n: Option<i64>, procs: usize) -> String {
    format!(
        "s\u{0}{source}\u{0}{}\u{0}{procs}",
        n.map(|v| v.to_string()).unwrap_or_default()
    )
}

impl ServeCache {
    pub fn new(cfg: &CacheConfig) -> Self {
        let shards = cfg.shards.max(1);
        ServeCache {
            kernels: ShardedLru::new(cfg.sessions, shards),
            programs: ShardedLru::new(cfg.sessions, shards),
            binds: ShardedLru::new(cfg.binds, shards),
            bodies: ShardedLru::new(cfg.bodies, shards),
            wire: ShardedLru::new(cfg.bodies, shards),
            flights: SingleFlight::new(shards),
        }
    }

    /// Lock shards per layer (for the startup log line).
    pub fn shard_count(&self) -> usize {
        self.bodies.shard_count()
    }

    /// Join the in-flight table for a canonical body key: lead or park.
    pub fn join_flight(&self, key: &str) -> FlightJoin<'_> {
        self.flights.join(key)
    }

    /// The compile-once artifact for a suite kernel (one parse per kernel
    /// shape, process lifetime permitting).
    pub fn kernel_artifact(&self, name: &str) -> Result<Arc<CompiledKernel>, ServeFailure> {
        if let Some(k) = self.kernels.get(name) {
            counter_pair("session", true);
            return Ok(k);
        }
        counter_pair("session", false);
        let kernel = kernels::kernel_by_name(name).ok_or_else(|| {
            ServeFailure::Pipeline(PipelineError::new(
                PipelineStage::Parse,
                format!("unknown kernel `{name}`"),
            ))
        })?;
        let compiled = Arc::new(CompiledKernel::new(&kernel)?);
        self.kernels.insert(name.to_string(), compiled.clone());
        Ok(compiled)
    }

    /// The parsed AST for POSTed source (full text is the key: directive
    /// lines shape partitioning, so they are part of program identity).
    pub fn source_program(&self, source: &str) -> Result<Arc<SourceProgram>, ServeFailure> {
        if let Some(p) = self.programs.get(source) {
            counter_pair("session", true);
            return Ok(p);
        }
        counter_pair("session", false);
        let program = parse_program(source).map_err(PipelineError::from)?;
        let entry = Arc::new(SourceProgram {
            source: source.to_string(),
            canonical: directive_free_source(source),
            program,
        });
        self.programs.insert(source.to_string(), entry.clone());
        Ok(entry)
    }

    fn bind_cached(
        &self,
        key: &str,
        deadline: &Deadline,
        build: impl FnOnce() -> Result<BoundArtifact, ServeFailure>,
    ) -> Result<Arc<BoundArtifact>, ServeFailure> {
        if let Some(b) = self.binds.get(key) {
            counter_pair("bind", true);
            return Ok(b);
        }
        counter_pair("bind", false);
        deadline.check("bind")?;
        let built = Arc::new(build()?);
        self.binds.insert(key.to_string(), built.clone());
        Ok(built)
    }

    /// Bind a suite kernel to `(n, procs)` — warm, deadline-checked
    /// between the pipeline stages it runs on a miss.
    pub fn bind_kernel(
        &self,
        name: &str,
        n: i64,
        procs: usize,
        deadline: &Deadline,
    ) -> Result<Arc<BoundArtifact>, ServeFailure> {
        self.bind_cached(&kernel_bind_key(name, n, procs), deadline, || {
            let compiled = self.kernel_artifact(name)?;
            build_kernel_bind(&compiled, n, procs, deadline)
        })
    }

    /// Bind an already-resolved kernel artifact — the batched sweep path:
    /// the artifact is looked up once per request, then every point is
    /// served through the *same* bind-cache keys as [`bind_kernel`](Self::bind_kernel),
    /// so batched and per-request evaluation are interchangeable warm.
    pub fn bind_kernel_artifact(
        &self,
        name: &str,
        compiled: &Arc<CompiledKernel>,
        n: i64,
        procs: usize,
        deadline: &Deadline,
    ) -> Result<Arc<BoundArtifact>, ServeFailure> {
        self.bind_cached(&kernel_bind_key(name, n, procs), deadline, || {
            build_kernel_bind(compiled, n, procs, deadline)
        })
    }

    /// Bind POSTed source to `(n, procs)`. `n = None` leaves the program's
    /// own PARAMETER values untouched; `Some(n)` overrides the critical
    /// variable `N` exactly like the kernel path.
    pub fn bind_source(
        &self,
        source: &str,
        n: Option<i64>,
        procs: usize,
        deadline: &Deadline,
    ) -> Result<Arc<BoundArtifact>, ServeFailure> {
        self.bind_cached(&source_bind_key(source, n, procs), deadline, || {
            let program = self.source_program(source)?;
            build_source_bind(&program, n, procs, deadline)
        })
    }

    /// Bind an already-parsed source program — the batched sweep
    /// counterpart of [`bind_source`](Self::bind_source), sharing its keys.
    pub fn bind_source_program(
        &self,
        program: &Arc<SourceProgram>,
        n: Option<i64>,
        procs: usize,
        deadline: &Deadline,
    ) -> Result<Arc<BoundArtifact>, ServeFailure> {
        self.bind_cached(
            &source_bind_key(&program.source, n, procs),
            deadline,
            || build_source_bind(program, n, procs, deadline),
        )
    }

    /// Look up a serialized response body (`serve.cache.hit` /
    /// `serve.cache.miss` are the loadgen's warm-hit-rate counters).
    pub fn cached_body(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        let hit = self.bodies.get(key);
        hpf_trace::counter_add(
            if hit.is_some() {
                "serve.cache.hit"
            } else {
                "serve.cache.miss"
            },
            1,
        );
        hit
    }

    /// Store a freshly computed response body.
    pub fn store_body(&self, key: &str, body: Arc<Vec<u8>>) -> Arc<Vec<u8>> {
        self.bodies.insert(key.to_string(), body.clone());
        body
    }

    /// Wire-level memo lookup: exact raw request bytes → cached response.
    ///
    /// Strictly narrower than the canonical body cache — identical bytes
    /// always canonicalize to the same [`body_cache_key`], so a memo hit
    /// can never disagree with the canonical layer; it merely skips the
    /// JSON parse and key canonicalization for exact byte-repeats, which
    /// is most of a warm request's CPU. Only cacheable 200 responses are
    /// ever stored, so degraded/error answers never replay from here. A
    /// hit counts on `serve.cache.hit` (it *is* a body-cache hit, served
    /// one layer earlier) and on `serve.cache.wire_hit` for its own rate.
    pub fn wire_lookup(&self, path: &str, raw: &str) -> Option<Arc<WireEntry>> {
        let hit = self.wire.get(&wire_key(path, raw));
        if hit.is_some() {
            hpf_trace::counter_add("serve.cache.hit", 1);
            hpf_trace::counter_add("serve.cache.wire_hit", 1);
        }
        hit
    }

    /// Fill the wire memo after a cacheable 200 answer (canonical hit or
    /// freshly computed). Only reached when [`Self::wire_lookup`] missed,
    /// so warm exact-repeat traffic never pays this insert.
    pub fn wire_store(&self, path: &str, raw: &str, entry: WireEntry) {
        self.wire.insert(wire_key(path, raw), Arc::new(entry));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_trace::json::parse as parse_json;

    const PI_SRC: &str = "
PROGRAM PI
INTEGER, PARAMETER :: N = 128
REAL F(N), PIE
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE F(BLOCK) ONTO P
FORALL (I = 1:N) F(I) = 4.0 / (1.0 + ((I - 0.5) * (1.0 / N)) ** 2)
PIE = SUM(F) / N
END
";

    #[test]
    fn kernel_binds_are_reused() {
        let cache = ServeCache::new(&CacheConfig::default());
        let a = cache.bind_kernel("PI", 256, 4, &Deadline::none()).unwrap();
        let b = cache.bind_kernel("PI", 256, 4, &Deadline::none()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second bind must be served warm");
        let c = cache.bind_kernel("PI", 512, 4, &Deadline::none()).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "different n is a different artifact");
    }

    #[test]
    fn source_binds_are_reused_and_match_kernel_semantics() {
        let cache = ServeCache::new(&CacheConfig::default());
        let a = cache
            .bind_source(PI_SRC, None, 4, &Deadline::none())
            .unwrap();
        let b = cache
            .bind_source(PI_SRC, None, 4, &Deadline::none())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.spmd.nodes, 4);
        assert!(!a.canonical.contains("!HPF$"));
    }

    #[test]
    fn batched_binds_share_keys_with_per_request_binds() {
        let cache = ServeCache::new(&CacheConfig::default());
        let a = cache.bind_kernel("PI", 256, 4, &Deadline::none()).unwrap();
        let artifact = cache.kernel_artifact("PI").unwrap();
        let b = cache
            .bind_kernel_artifact("PI", &artifact, 256, 4, &Deadline::none())
            .unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "batched bind must hit the per-request bind's cache entry"
        );
        let s1 = cache
            .bind_source(PI_SRC, Some(96), 4, &Deadline::none())
            .unwrap();
        let program = cache.source_program(PI_SRC).unwrap();
        let s2 = cache
            .bind_source_program(&program, Some(96), 4, &Deadline::none())
            .unwrap();
        assert!(Arc::ptr_eq(&s1, &s2));
    }

    #[test]
    fn unknown_kernel_is_a_pipeline_error() {
        let cache = ServeCache::new(&CacheConfig::default());
        match cache.bind_kernel("NOSUCH", 64, 4, &Deadline::none()) {
            Err(ServeFailure::Pipeline(e)) => assert!(e.message.contains("NOSUCH")),
            other => panic!("expected pipeline error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_source_is_a_spanned_pipeline_error() {
        let cache = ServeCache::new(&CacheConfig::default());
        let bad = "PROGRAM X\nREAL A(\nEND\n";
        match cache.bind_source(bad, None, 4, &Deadline::none()) {
            Err(ServeFailure::Pipeline(e)) => {
                assert!(e.line().is_some(), "diagnostic must carry a span: {e}")
            }
            other => panic!("expected pipeline error, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_cancels_before_the_next_stage() {
        let cache = ServeCache::new(&CacheConfig::default());
        // Already-expired deadline: the cold path must refuse to start.
        match cache.bind_kernel("PI", 300, 4, &Deadline::in_ms(0)) {
            Err(ServeFailure::Deadline { .. }) => {}
            other => panic!("expected deadline failure, got {other:?}"),
        }
        // A warm hit needs no stages, so it is served even when expired.
        cache.bind_kernel("PI", 300, 4, &Deadline::none()).unwrap();
        cache
            .bind_kernel("PI", 300, 4, &Deadline::in_ms(0))
            .expect("warm hit carries no further stages");
    }

    #[test]
    fn body_cache_round_trips() {
        let cache = ServeCache::new(&CacheConfig::default());
        assert!(cache.cached_body("k").is_none());
        cache.store_body("k", Arc::new(b"{\"x\":1}".to_vec()));
        assert_eq!(cache.cached_body("k").unwrap().as_slice(), b"{\"x\":1}");
    }

    #[test]
    fn body_key_ignores_deadline_but_not_content() {
        let a = parse_json(r#"{"kernel":"PI","n":128,"deadline_ms":5}"#).unwrap();
        let b = parse_json(r#"{"deadline_ms": 9000, "n": 128, "kernel": "PI"}"#).unwrap();
        let c = parse_json(r#"{"kernel":"PI","n":256,"deadline_ms":5}"#).unwrap();
        // Differ only in deadline_ms (and formatting/key order): collide.
        assert_eq!(
            body_cache_key("/v1/predict", &a),
            body_cache_key("/v1/predict", &b)
        );
        // Different payload: distinct keys.
        assert_ne!(
            body_cache_key("/v1/predict", &a),
            body_cache_key("/v1/predict", &c)
        );
        // Same body on a different route: distinct keys.
        assert_ne!(
            body_cache_key("/v1/predict", &a),
            body_cache_key("/v1/sweep", &a)
        );
    }

    #[test]
    fn sharded_lru_spreads_and_bounds_per_shard() {
        let lru: ShardedLru<u32> = ShardedLru::new(8, 4);
        assert_eq!(lru.shard_count(), 4);
        assert_eq!(lru.per_shard_cap(), 2);
        for i in 0..64 {
            lru.insert(format!("key-{i}"), i);
        }
        let lens = lru.shard_lens();
        assert!(
            lens.iter().all(|&l| l <= 2),
            "shard over capacity: {lens:?}"
        );
        assert!(
            lens.iter().filter(|&&l| l > 0).count() >= 2,
            "FNV sharding left all keys in one shard: {lens:?}"
        );
    }

    #[test]
    fn sharded_lru_shard_count_rounds_up_to_power_of_two() {
        let lru: ShardedLru<u32> = ShardedLru::new(16, 3);
        assert_eq!(lru.shard_count(), 4);
        let lru: ShardedLru<u32> = ShardedLru::new(16, 0);
        assert_eq!(lru.shard_count(), 1);
    }

    #[test]
    fn single_flight_leader_shares_with_waiter() {
        let sf = SingleFlight::new(2);
        let leader = match sf.join("k") {
            FlightJoin::Leader(l) => l,
            FlightJoin::Waiter(_) => panic!("first join must lead"),
        };
        let waiter = match sf.join("k") {
            FlightJoin::Waiter(f) => f,
            FlightJoin::Leader(_) => panic!("second join must park"),
        };
        let body = Arc::new(b"{}".to_vec());
        let handle = std::thread::spawn({
            let waiter = waiter.clone();
            move || waiter.wait(&Deadline::none())
        });
        leader.publish_shared(body.clone());
        match handle.join().unwrap() {
            FlightWait::Shared(b) => assert!(Arc::ptr_eq(&b, &body)),
            other => panic!("expected shared body, got {other:?}"),
        }
        // The finished flight is gone: the next join leads again.
        assert!(matches!(sf.join("k"), FlightJoin::Leader(_)));
    }

    #[test]
    fn single_flight_dropped_leader_releases_waiters_solo() {
        let sf = SingleFlight::new(1);
        let leader = match sf.join("k") {
            FlightJoin::Leader(l) => l,
            FlightJoin::Waiter(_) => panic!("first join must lead"),
        };
        let waiter = match sf.join("k") {
            FlightJoin::Waiter(f) => f,
            FlightJoin::Leader(_) => panic!("second join must park"),
        };
        drop(leader); // error path: nothing published
        assert!(matches!(waiter.wait(&Deadline::none()), FlightWait::Solo));
    }

    #[test]
    fn single_flight_waiter_honors_its_own_deadline() {
        let sf = SingleFlight::new(1);
        let _leader = sf.join("k"); // held pending for the whole test
        let waiter = match sf.join("k") {
            FlightJoin::Waiter(f) => f,
            FlightJoin::Leader(_) => panic!("second join must park"),
        };
        assert!(matches!(
            waiter.wait(&Deadline::in_ms(0)),
            FlightWait::Expired
        ));
    }
}
