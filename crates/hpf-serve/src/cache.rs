//! Warm compiled state shared by every worker, behind bounded LRU caches.
//!
//! Four layers, all keyed deterministically and all safe to recompute on a
//! miss (every cached object is a pure function of its key):
//!
//! * **kernel artifacts** — [`kernels::CompiledKernel`], one parse per
//!   kernel shape (the PR-3 warm-session primitive);
//! * **source programs** — parsed ASTs of POSTed HPF text, keyed by the
//!   full source (directives included — they shape the partitioning);
//! * **bound artifacts** — (analyzed, SPMD, AAG) per `(origin, n, procs)`
//!   point, so a repeat or near-repeat request skips parse, semantic
//!   analysis *and* partitioning entirely;
//! * **response bodies** — the serialized JSON answer per canonical
//!   request, the layer that makes a warm `/v1/predict` a hash lookup.
//!
//! Functional-interpreter profiles are *not* cached here: they live in the
//! process-wide memo behind [`report::shared_profile`], keyed by the
//! directive-stripped source, so directive variants of one program share a
//! single profile with the advisor and the sweep sessions.
//!
//! Misses are computed outside the cache locks; two workers racing on the
//! same key both compute the same (deterministic) value and the second
//! insert is a harmless overwrite — responses stay bit-identical whatever
//! the interleaving.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hpf_compiler::{compile, CompileOptions, SpmdProgram};
use hpf_lang::{analyze, parse_program, AnalyzedProgram};
use kernels::CompiledKernel;
use report::lru::LruMap;
use report::{directive_free_source, PipelineError, PipelineStage};

/// Capacities of the serving caches.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Distinct kernel artifacts + parsed source programs.
    pub sessions: usize,
    /// Distinct bound (analyzed, SPMD, AAG) artifacts.
    pub binds: usize,
    /// Distinct serialized response bodies.
    pub bodies: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            sessions: 32,
            binds: 128,
            bodies: 512,
        }
    }
}

/// A request deadline, checked between pipeline stages: work in progress
/// is never interrupted mid-stage, but no new stage starts past the
/// deadline — the graceful-cancellation contract.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline (loadgen warmup, tests).
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// A deadline `ms` milliseconds from now.
    pub fn in_ms(ms: u64) -> Self {
        Deadline {
            at: Some(Instant::now() + Duration::from_millis(ms)),
        }
    }

    /// Fail with the stage that would have started past the deadline.
    pub fn check(&self, stage: &'static str) -> Result<(), ServeFailure> {
        match self.at {
            Some(at) if Instant::now() >= at => {
                hpf_trace::counter_add("serve.deadline_exceeded", 1);
                Err(ServeFailure::Deadline { stage })
            }
            _ => Ok(()),
        }
    }
}

/// Why a cached evaluation could not be served.
#[derive(Debug)]
pub enum ServeFailure {
    /// The compilation pipeline rejected the program (spanned, maps to a
    /// structured 400).
    Pipeline(PipelineError),
    /// The request deadline expired before `stage` could start (504).
    Deadline { stage: &'static str },
}

impl From<PipelineError> for ServeFailure {
    fn from(e: PipelineError) -> Self {
        ServeFailure::Pipeline(e)
    }
}

impl From<kernels::KernelBindError> for ServeFailure {
    fn from(e: kernels::KernelBindError) -> Self {
        ServeFailure::Pipeline(e.into())
    }
}

impl std::fmt::Display for ServeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeFailure::Pipeline(e) => write!(f, "{e}"),
            ServeFailure::Deadline { stage } => {
                write!(f, "deadline exceeded before stage `{stage}`")
            }
        }
    }
}

/// A POSTed program parsed once: the AST plus the directive-stripped text
/// that keys the shared profile memo.
#[derive(Debug)]
pub struct SourceProgram {
    pub source: String,
    pub canonical: String,
    pub program: hpf_lang::ast::Program,
}

/// Everything the predict/sweep paths need for one `(program, n, procs)`
/// point, compiled once and re-served warm.
#[derive(Debug)]
pub struct BoundArtifact {
    pub analyzed: AnalyzedProgram,
    pub spmd: SpmdProgram,
    pub aag: appgraph::Aag,
    /// Directive-stripped source — the shared-profile memo key.
    pub canonical: String,
}

/// The shared cache stack. One instance per server, shared by every
/// worker behind an `Arc`.
#[derive(Debug)]
pub struct ServeCache {
    kernels: Mutex<LruMap<String, Arc<CompiledKernel>>>,
    programs: Mutex<LruMap<String, Arc<SourceProgram>>>,
    binds: Mutex<LruMap<String, Arc<BoundArtifact>>>,
    bodies: Mutex<LruMap<String, Arc<Vec<u8>>>>,
}

fn counter_pair(prefix: &'static str, hit: bool) {
    hpf_trace::counter_add(
        match (prefix, hit) {
            ("session", true) => "serve.session.hit",
            ("session", false) => "serve.session.miss",
            ("bind", true) => "serve.bind.hit",
            ("bind", false) => "serve.bind.miss",
            _ => unreachable!(),
        },
        1,
    );
}

impl ServeCache {
    pub fn new(cfg: &CacheConfig) -> Self {
        ServeCache {
            kernels: Mutex::new(LruMap::new(cfg.sessions)),
            programs: Mutex::new(LruMap::new(cfg.sessions)),
            binds: Mutex::new(LruMap::new(cfg.binds)),
            bodies: Mutex::new(LruMap::new(cfg.bodies)),
        }
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The compile-once artifact for a suite kernel (one parse per kernel
    /// shape, process lifetime permitting).
    pub fn kernel_artifact(&self, name: &str) -> Result<Arc<CompiledKernel>, ServeFailure> {
        let key = name.to_string();
        if let Some(k) = Self::lock(&self.kernels).get(&key) {
            counter_pair("session", true);
            return Ok(k.clone());
        }
        counter_pair("session", false);
        let kernel = kernels::kernel_by_name(name).ok_or_else(|| {
            ServeFailure::Pipeline(PipelineError::new(
                PipelineStage::Parse,
                format!("unknown kernel `{name}`"),
            ))
        })?;
        let compiled = Arc::new(CompiledKernel::new(&kernel)?);
        Self::lock(&self.kernels).insert(key, compiled.clone());
        Ok(compiled)
    }

    /// The parsed AST for POSTed source (full text is the key: directive
    /// lines shape partitioning, so they are part of program identity).
    pub fn source_program(&self, source: &str) -> Result<Arc<SourceProgram>, ServeFailure> {
        let key = source.to_string();
        if let Some(p) = Self::lock(&self.programs).get(&key) {
            counter_pair("session", true);
            return Ok(p.clone());
        }
        counter_pair("session", false);
        let program = parse_program(source).map_err(PipelineError::from)?;
        let entry = Arc::new(SourceProgram {
            source: source.to_string(),
            canonical: directive_free_source(source),
            program,
        });
        Self::lock(&self.programs).insert(key, entry.clone());
        Ok(entry)
    }

    fn bind_cached(
        &self,
        key: &String,
        deadline: &Deadline,
        build: impl FnOnce() -> Result<BoundArtifact, ServeFailure>,
    ) -> Result<Arc<BoundArtifact>, ServeFailure> {
        if let Some(b) = Self::lock(&self.binds).get(key) {
            counter_pair("bind", true);
            return Ok(b.clone());
        }
        counter_pair("bind", false);
        deadline.check("bind")?;
        let built = Arc::new(build()?);
        Self::lock(&self.binds).insert(key.clone(), built.clone());
        Ok(built)
    }

    /// Bind a suite kernel to `(n, procs)` — warm, deadline-checked
    /// between the pipeline stages it runs on a miss.
    pub fn bind_kernel(
        &self,
        name: &str,
        n: i64,
        procs: usize,
        deadline: &Deadline,
    ) -> Result<Arc<BoundArtifact>, ServeFailure> {
        let key = format!("k\u{0}{name}\u{0}{n}\u{0}{procs}");
        self.bind_cached(&key, deadline, || {
            let compiled = self.kernel_artifact(name)?;
            deadline.check("analyze")?;
            let (analyzed, spmd) = compiled.bind(n, procs, &CompileOptions::default())?;
            deadline.check("build_aag")?;
            let aag = appgraph::build_aag(&spmd);
            Ok(BoundArtifact {
                analyzed,
                spmd,
                aag,
                canonical: directive_free_source(compiled.canonical_source()),
            })
        })
    }

    /// Bind POSTed source to `(n, procs)`. `n = None` leaves the program's
    /// own PARAMETER values untouched; `Some(n)` overrides the critical
    /// variable `N` exactly like the kernel path.
    pub fn bind_source(
        &self,
        source: &str,
        n: Option<i64>,
        procs: usize,
        deadline: &Deadline,
    ) -> Result<Arc<BoundArtifact>, ServeFailure> {
        let key = format!(
            "s\u{0}{source}\u{0}{}\u{0}{procs}",
            n.map(|v| v.to_string()).unwrap_or_default()
        );
        self.bind_cached(&key, deadline, || {
            let program = self.source_program(source)?;
            deadline.check("analyze")?;
            let mut overrides = std::collections::BTreeMap::new();
            if let Some(n) = n {
                overrides.insert("N".to_string(), n);
            }
            let analyzed = analyze(&program.program, &overrides).map_err(PipelineError::from)?;
            deadline.check("compile")?;
            let opts = CompileOptions {
                nodes: procs,
                ..CompileOptions::default()
            };
            let spmd = compile(&analyzed, &opts).map_err(PipelineError::from)?;
            deadline.check("build_aag")?;
            let aag = appgraph::build_aag(&spmd);
            Ok(BoundArtifact {
                analyzed,
                spmd,
                aag,
                canonical: program.canonical.clone(),
            })
        })
    }

    /// Look up a serialized response body (`serve.cache.hit` /
    /// `serve.cache.miss` are the loadgen's warm-hit-rate counters).
    pub fn cached_body(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        let mut bodies = Self::lock(&self.bodies);
        let hit = bodies.get(&key.to_string()).cloned();
        hpf_trace::counter_add(
            if hit.is_some() {
                "serve.cache.hit"
            } else {
                "serve.cache.miss"
            },
            1,
        );
        hit
    }

    /// Store a freshly computed response body.
    pub fn store_body(&self, key: &str, body: Vec<u8>) -> Arc<Vec<u8>> {
        let body = Arc::new(body);
        Self::lock(&self.bodies).insert(key.to_string(), body.clone());
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PI_SRC: &str = "
PROGRAM PI
INTEGER, PARAMETER :: N = 128
REAL F(N), PIE
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE F(BLOCK) ONTO P
FORALL (I = 1:N) F(I) = 4.0 / (1.0 + ((I - 0.5) * (1.0 / N)) ** 2)
PIE = SUM(F) / N
END
";

    #[test]
    fn kernel_binds_are_reused() {
        let cache = ServeCache::new(&CacheConfig::default());
        let a = cache.bind_kernel("PI", 256, 4, &Deadline::none()).unwrap();
        let b = cache.bind_kernel("PI", 256, 4, &Deadline::none()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second bind must be served warm");
        let c = cache.bind_kernel("PI", 512, 4, &Deadline::none()).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "different n is a different artifact");
    }

    #[test]
    fn source_binds_are_reused_and_match_kernel_semantics() {
        let cache = ServeCache::new(&CacheConfig::default());
        let a = cache
            .bind_source(PI_SRC, None, 4, &Deadline::none())
            .unwrap();
        let b = cache
            .bind_source(PI_SRC, None, 4, &Deadline::none())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.spmd.nodes, 4);
        assert!(!a.canonical.contains("!HPF$"));
    }

    #[test]
    fn unknown_kernel_is_a_pipeline_error() {
        let cache = ServeCache::new(&CacheConfig::default());
        match cache.bind_kernel("NOSUCH", 64, 4, &Deadline::none()) {
            Err(ServeFailure::Pipeline(e)) => assert!(e.message.contains("NOSUCH")),
            other => panic!("expected pipeline error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_source_is_a_spanned_pipeline_error() {
        let cache = ServeCache::new(&CacheConfig::default());
        let bad = "PROGRAM X\nREAL A(\nEND\n";
        match cache.bind_source(bad, None, 4, &Deadline::none()) {
            Err(ServeFailure::Pipeline(e)) => {
                assert!(e.line().is_some(), "diagnostic must carry a span: {e}")
            }
            other => panic!("expected pipeline error, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_cancels_before_the_next_stage() {
        let cache = ServeCache::new(&CacheConfig::default());
        // Already-expired deadline: the cold path must refuse to start.
        match cache.bind_kernel("PI", 300, 4, &Deadline::in_ms(0)) {
            Err(ServeFailure::Deadline { .. }) => {}
            other => panic!("expected deadline failure, got {other:?}"),
        }
        // A warm hit needs no stages, so it is served even when expired.
        cache.bind_kernel("PI", 300, 4, &Deadline::none()).unwrap();
        cache
            .bind_kernel("PI", 300, 4, &Deadline::in_ms(0))
            .expect("warm hit carries no further stages");
    }

    #[test]
    fn body_cache_round_trips() {
        let cache = ServeCache::new(&CacheConfig::default());
        assert!(cache.cached_body("k").is_none());
        cache.store_body("k", b"{\"x\":1}".to_vec());
        assert_eq!(cache.cached_body("k").unwrap().as_slice(), b"{\"x\":1}");
    }
}
