//! Seeded, replayable service-level chaos harness.
//!
//! PR 1 proved the *simulated* machine survives hostile conditions with a
//! seeded `FaultPlan`; this module ports the same idiom up to the service
//! itself. A chaos plan — a pure function of `(seed, request index)`
//! via [`fault_at`] —
//! decides per request whether it is healthy or carries one of six
//! service-level faults:
//!
//! * **handler panic** — the test-only [`crate::api::CHAOS_HEADER`]
//!   (honored only when the server runs with chaos enabled) panics inside
//!   the routed handler; the worker's `catch_unwind` isolation must turn
//!   it into a structured 500;
//! * **DES panic** — the same header aimed at the breaker-guarded
//!   simulator cross-check; the response must degrade to analytic-only
//!   (`"degraded": true`) and repeated hits must trip the breaker open;
//! * **deadline storm** — `deadline_ms: 0`, dead at parse time; must
//!   short-circuit to 504 before any pipeline stage;
//! * **slow-loris** — a client that writes half a request line and
//!   stalls; the read timeout must answer 408 and free the worker;
//! * **truncated body** — `Content-Length` promises more bytes than
//!   arrive before EOF; must answer a structured 400;
//! * **abort** — a client that writes a full request and hangs up without
//!   reading; the worker must shrug and move on.
//!
//! A second independent draw ([`machine_at`]) splices a non-default
//! `"machine"` into a small slice of the generated requests, so the
//! machine-keyed cache rows and per-machine latency sketches stay under
//! test while faults fly. A third ([`io_at`]) turns ~5% of the traffic
//! into out-of-core predicts, so the striped-I/O pricing path (and its
//! `io_s` response field) is exercised under the same conditions.
//!
//! [`run`] executes the plan twice against fresh in-process servers — a
//! fault-free **baseline** pass (only the plan's healthy requests) and
//! the **chaos** pass (everything) — and asserts the resilience contract:
//! zero worker deaths, the pool at full strength afterwards, every
//! injected fault answered with the expected structured status (never a
//! hang, never a silent drop of a request that awaited an answer), the
//! healthy-request checksum bit-identical to the baseline pass, healthy
//! p99 in-band, and the breaker observed open when enough DES faults were
//! injected. The plan is seeded, so a failure replays exactly.

use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use hpf_trace::json::{parse as parse_json, Value};

use crate::api::CHAOS_HEADER;
use crate::http::read_response;
use crate::loadgen::{fnv1a, percentile, request_at, splitmix64, FNV_OFFSET};
use crate::server::{start, ServerConfig, ServerHandle};

/// Chaos harness knobs.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Total requests in the plan (healthy + injected).
    pub requests: usize,
    /// Client threads (one fresh connection per request).
    pub clients: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Plan seed: the fault at every index is a pure function of it.
    pub seed: u64,
    /// Server read timeout for the run — kept short so slow-loris faults
    /// resolve quickly.
    pub read_timeout_ms: u64,
    /// Server queue-wait cap for the run.
    pub queue_wait_cap_ms: u64,
}

impl ChaosConfig {
    /// The `--quick` preset the CI chaos-smoke job runs.
    pub fn quick() -> Self {
        ChaosConfig {
            requests: 240,
            clients: 4,
            workers: 4,
            seed: 0xC4A0_55ED,
            read_timeout_ms: 150,
            queue_wait_cap_ms: 2_000,
        }
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            requests: 1_000,
            ..ChaosConfig::quick()
        }
    }
}

/// The fault (or lack of one) the plan injects at one request index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    Healthy,
    HandlerPanic,
    DeadlineStorm,
    SimPanic,
    SlowLoris,
    TruncatedBody,
    Abort,
}

impl Fault {
    pub fn label(&self) -> &'static str {
        match self {
            Fault::Healthy => "healthy",
            Fault::HandlerPanic => "handler-panic",
            Fault::DeadlineStorm => "deadline-storm",
            Fault::SimPanic => "sim-panic",
            Fault::SlowLoris => "slow-loris",
            Fault::TruncatedBody => "truncated-body",
            Fault::Abort => "abort",
        }
    }

    fn index(&self) -> usize {
        match self {
            Fault::Healthy => 0,
            Fault::HandlerPanic => 1,
            Fault::DeadlineStorm => 2,
            Fault::SimPanic => 3,
            Fault::SlowLoris => 4,
            Fault::TruncatedBody => 5,
            Fault::Abort => 6,
        }
    }
}

const FAULTS: [Fault; 7] = [
    Fault::Healthy,
    Fault::HandlerPanic,
    Fault::DeadlineStorm,
    Fault::SimPanic,
    Fault::SlowLoris,
    Fault::TruncatedBody,
    Fault::Abort,
];

/// Non-default machines the plan splices into a slice of its requests.
const SPLICE_MACHINES: [&str; 3] = ["torus3d", "fattree", "multicore"];

/// Out-of-core predict requests the plan splices into a slice of its
/// traffic: `(kernel, n, procs)`.
const SPLICE_OOC: [(&str, usize, usize); 2] = [("Laplace OOC", 32, 4), ("N-Body OOC", 128, 4)];

/// The deterministic out-of-core override at index `i`: a small (~5%)
/// slice of the plan's generated requests becomes a `/v1/predict` over an
/// out-of-core kernel, so the striped-I/O pricing path (and its `io_s`
/// response field) stays under test while faults fly. Drawn independently
/// of [`fault_at`] and [`machine_at`] and pure in `(seed, i)`, so the
/// baseline and chaos passes splice identical bodies and the healthy
/// checksum still matches bit for bit.
pub fn io_at(seed: u64, i: usize) -> Option<(&'static str, usize, usize)> {
    let r = splitmix64(seed.rotate_left(41) ^ (i as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)) % 100;
    (r < 5).then(|| SPLICE_OOC[(r % SPLICE_OOC.len() as u64) as usize])
}

/// The deterministic machine override at index `i`: a small (~6%) slice
/// of the plan's generated requests names a non-default registry machine,
/// exercising the machine-keyed cache rows and per-machine latency
/// sketches under chaos. Drawn independently of [`fault_at`] and pure in
/// `(seed, i)`, so the baseline and chaos passes splice identical bodies
/// and the healthy checksum still matches bit for bit.
pub fn machine_at(seed: u64, i: usize) -> Option<&'static str> {
    let r = splitmix64(seed.rotate_left(29) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 100;
    (r < 6).then(|| SPLICE_MACHINES[(r % SPLICE_MACHINES.len() as u64) as usize])
}

/// The body the plan fires at index `i`: the loadgen mix (or an
/// out-of-core predict, when [`io_at`] says so), with the machine
/// override (if any) spliced in before the closing brace.
fn plan_request(seed: u64, i: usize) -> (&'static str, String) {
    let (path, mut body) = match io_at(seed, i) {
        Some((kernel, n, procs)) => (
            "/v1/predict",
            format!(r#"{{"kernel": "{kernel}", "n": {n}, "procs": {procs}}}"#),
        ),
        None => request_at(seed, i),
    };
    if let Some(machine) = machine_at(seed, i) {
        body.pop();
        body.push_str(&format!(r#", "machine": "{machine}"}}"#));
    }
    (path, body)
}

/// The deterministic fault at index `i` — ~70% healthy, the rest spread
/// over the six fault classes. Same `(seed, i)`, same fault, forever:
/// that is what makes a failed chaos run replayable.
pub fn fault_at(seed: u64, i: usize) -> Fault {
    let r = splitmix64(seed.rotate_left(17) ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F)) % 100;
    match r {
        0..=69 => Fault::Healthy,
        70..=77 => Fault::HandlerPanic,
        78..=85 => Fault::DeadlineStorm,
        86..=91 => Fault::SimPanic,
        92..=94 => Fault::SlowLoris,
        95..=97 => Fault::TruncatedBody,
        _ => Fault::Abort,
    }
}

/// What one fired request came back with.
#[derive(Debug, Clone)]
struct Outcome {
    index: usize,
    fault: Fault,
    /// `None`: no response was read (an abort on purpose, or a violation
    /// for any fault that expected an answer).
    status: Option<u16>,
    ms: f64,
    body_hash: u64,
    /// The body was a structured error with `kind: "panic"`.
    panic_kind: bool,
    /// The body carried `"degraded": true` or a `measured_s` point — the
    /// two legitimate answers to a DES-faulted simulate request.
    degraded_or_measured: bool,
}

/// Pool/queue health parsed from `/v1/healthz` after the pass.
#[derive(Debug, Clone, Default)]
struct Health {
    configured: usize,
    live: usize,
    panics: usize,
    deaths: usize,
    respawns: usize,
    shed: usize,
}

/// One finished chaos run (baseline + chaos passes).
#[derive(Debug, Clone)]
pub struct ChaosReport {
    pub requests: usize,
    pub clients: usize,
    pub workers: usize,
    pub seed: u64,
    pub healthy: usize,
    pub injected: usize,
    /// FNV-1a over healthy response bodies, request-index order, from
    /// the fault-free baseline pass.
    pub baseline_checksum: u64,
    /// Same fold over the same (healthy) indices during the chaos pass —
    /// must equal `baseline_checksum` bit for bit.
    pub healthy_checksum: u64,
    pub baseline_p99_ms: f64,
    pub healthy_p50_ms: f64,
    pub healthy_p99_ms: f64,
    /// `(fault label, injected, answered-as-expected)` per fault class.
    pub tally: Vec<(&'static str, usize, usize)>,
    pub workers_configured: usize,
    pub workers_live: usize,
    pub worker_deaths: usize,
    pub worker_panics: usize,
    pub worker_respawns: usize,
    pub shed: usize,
    pub breaker_opens: u64,
    pub degraded_responses: u64,
    /// The plan-deterministic slice of the chaos pass's
    /// `/v1/metrics?since=` delta (see `summarize_delta`) — identical
    /// for a given `(seed, requests)` whatever the worker count, and
    /// diffed against a checked-in golden by CI.
    pub metrics_summary: Value,
    /// Contract violations; empty means the run passed.
    pub failures: Vec<String>,
}

impl ChaosReport {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos: {} requests ({} healthy, {} injected), {} clients, {} workers, seed {:#x}\n\
             baseline checksum  {:016x}\n\
             healthy checksum   {:016x}  ({})\n\
             healthy p50 / p99  {:.3} / {:.3} ms  (baseline p99 {:.3} ms)\n",
            self.requests,
            self.healthy,
            self.injected,
            self.clients,
            self.workers,
            self.seed,
            self.baseline_checksum,
            self.healthy_checksum,
            if self.baseline_checksum == self.healthy_checksum {
                "MATCH"
            } else {
                "MISMATCH"
            },
            self.healthy_p50_ms,
            self.healthy_p99_ms,
            self.baseline_p99_ms,
        );
        out.push_str("faults:");
        for (label, total, ok) in &self.tally {
            if *total > 0 {
                out.push_str(&format!(" {label} {ok}/{total}"));
            }
        }
        out.push('\n');
        let summary_num = |section: &str, key: &str| {
            self.metrics_summary
                .get(section)
                .and_then(|s| s.get(key))
                .and_then(Value::as_f64)
                .unwrap_or(0.0)
        };
        out.push_str(&format!(
            "metrics delta: requests {}, latency sketch counts predict {} / sweep {}\n",
            summary_num("counters", "serve.requests"),
            summary_num("sketch_counts", "serve.latency.predict"),
            summary_num("sketch_counts", "serve.latency.sweep"),
        ));
        out.push_str(&format!(
            "workers: live {}/{}, deaths {}, caught panics {}, respawns {}, shed {}\n\
             breaker: opens {}, degraded responses {}\n",
            self.workers_live,
            self.workers_configured,
            self.worker_deaths,
            self.worker_panics,
            self.worker_respawns,
            self.shed,
            self.breaker_opens,
            self.degraded_responses,
        ));
        for f in &self.failures {
            out.push_str(&format!("FAIL: {f}\n"));
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

/// Suppress the default panic hook's backtrace spam for the panics this
/// harness injects on purpose ("chaos: …" payloads); everything else
/// still reaches the previous hook.
fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.starts_with("chaos:"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.starts_with("chaos:"))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

fn send_post(
    stream: &mut TcpStream,
    path: &str,
    body: &str,
    chaos: Option<&str>,
) -> std::io::Result<()> {
    let mut raw = format!("POST {path} HTTP/1.1\r\ncontent-length: {}\r\n", body.len());
    if let Some(kind) = chaos {
        raw.push_str(&format!("{CHAOS_HEADER}: {kind}\r\n"));
    }
    raw.push_str("\r\n");
    raw.push_str(body);
    stream.write_all(raw.as_bytes())
}

/// Fire the plan's request `i` at the server and record what came back.
fn fire(addr: SocketAddr, cfg: &ChaosConfig, i: usize, fault: Fault) -> Outcome {
    let t0 = Instant::now();
    let mut out = Outcome {
        index: i,
        fault,
        status: None,
        ms: 0.0,
        body_hash: 0,
        panic_kind: false,
        degraded_or_measured: false,
    };
    let result: std::io::Result<()> = (|| {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // The client-side hang detector: no response within 10 s is a
        // contract violation, not a wait.
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        match fault {
            Fault::Healthy | Fault::HandlerPanic => {
                let (path, body) = plan_request(cfg.seed, i);
                let chaos = matches!(fault, Fault::HandlerPanic).then_some("handler");
                send_post(&mut stream, path, &body, chaos)?;
            }
            Fault::DeadlineStorm => {
                send_post(
                    &mut stream,
                    "/v1/predict",
                    r#"{"kernel": "PI", "n": 256, "procs": 4, "deadline_ms": 0}"#,
                    None,
                )?;
            }
            Fault::SimPanic => {
                send_post(
                    &mut stream,
                    "/v1/sweep",
                    r#"{"kernel": "PI", "sizes": [96], "procs": 4, "simulate": true, "runs": 20}"#,
                    Some("sim"),
                )?;
            }
            Fault::SlowLoris => {
                stream.write_all(b"POST /v1/predict HTTP/1.1\r\ncontent-le")?;
                std::thread::sleep(Duration::from_millis(cfg.read_timeout_ms * 3));
            }
            Fault::TruncatedBody => {
                stream.write_all(
                    b"POST /v1/predict HTTP/1.1\r\ncontent-length: 64\r\n\r\n{\"kernel\": ",
                )?;
                stream.shutdown(Shutdown::Write)?;
            }
            Fault::Abort => {
                let (path, body) = plan_request(cfg.seed, i);
                send_post(&mut stream, path, &body, None)?;
                // Hang up without reading: the worker's write may fail
                // mid-response; it must survive and move on.
                return Ok(());
            }
        }
        let mut reader = BufReader::new(stream.try_clone()?);
        let (status, _, body) =
            read_response(&mut reader).map_err(|e| std::io::Error::other(e.message))?;
        out.status = Some(status);
        out.body_hash = fnv1a(FNV_OFFSET, &body);
        if let Ok(v) = parse_json(&String::from_utf8_lossy(&body)) {
            out.panic_kind = v
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Value::as_str)
                == Some("panic");
            out.degraded_or_measured = matches!(v.get("degraded"), Some(Value::Bool(true)))
                || v.get("points")
                    .and_then(Value::as_arr)
                    .map(|ps| ps.iter().any(|p| p.get("measured_s").is_some()))
                    .unwrap_or(false);
        }
        Ok(())
    })();
    let _ = result; // a refused/broken connection stays `status: None`
    out.ms = t0.elapsed().as_secs_f64() * 1e3;
    out
}

fn fetch_json(addr: SocketAddr, path: &str) -> std::io::Result<Value> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n").as_bytes())?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let (status, _, body) =
        read_response(&mut reader).map_err(|e| std::io::Error::other(e.message))?;
    if status != 200 {
        return Err(std::io::Error::other(format!("{path} status {status}")));
    }
    parse_json(std::str::from_utf8(&body).map_err(std::io::Error::other)?)
        .map_err(|e| std::io::Error::other(format!("{path} json: {e}")))
}

fn fetch_health(addr: SocketAddr) -> std::io::Result<Health> {
    let v = fetch_json(addr, "/v1/healthz")?;
    let field = |obj: &str, key: &str| {
        v.get(obj)
            .and_then(|o| o.get(key))
            .and_then(Value::as_f64)
            .unwrap_or(0.0) as usize
    };
    Ok(Health {
        configured: field("workers", "configured"),
        live: field("workers", "live"),
        panics: field("workers", "panics"),
        deaths: field("workers", "deaths"),
        respawns: field("workers", "respawns"),
        shed: field("queue", "shed"),
    })
}

fn fetch_counter(addr: SocketAddr, name: &str) -> u64 {
    fetch_json(addr, "/v1/metrics")
        .ok()
        .and_then(|doc| {
            doc.get("counters")
                .and_then(|c| c.get(name))
                .and_then(Value::as_f64)
        })
        .unwrap_or(0.0) as u64
}

fn shutdown_over_the_wire(addr: SocketAddr, handle: ServerHandle) {
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.write_all(b"POST /v1/shutdown HTTP/1.1\r\ncontent-length: 0\r\n\r\n");
        let mut reader = BufReader::new(stream.try_clone().unwrap_or(stream));
        let _ = read_response(&mut reader);
    }
    handle.wait();
}

/// Everything one pass of the plan observed.
struct PassResult {
    outcomes: Vec<Outcome>,
    health: Health,
    breaker_opens: u64,
    degraded: u64,
    /// The `/v1/metrics?since=<cursor>` document, where the cursor was
    /// issued *before* any plan request fired — i.e. exactly what the
    /// pass did to the service, as the delta export tells it.
    metrics_delta: Value,
}

/// One pass of the plan. `chaos: false` is the baseline — only the
/// plan's healthy requests are fired, against a server with injection
/// disabled.
fn run_pass(cfg: &ChaosConfig, chaos: bool) -> std::io::Result<PassResult> {
    let handle = start(
        "127.0.0.1:0",
        ServerConfig {
            workers: cfg.workers.max(1),
            // Deep enough that the full client population can wait out a
            // loris-held worker alongside a few abandoned (abort)
            // connections without tripping accept-queue backpressure even
            // at one worker: this harness asserts *zero* spurious sheds
            // of answered traffic; structural shedding under real
            // overload is loadgen's `--overload` profile, not chaos.
            queue_depth: cfg.workers.max(1) * 4 + cfg.clients.max(1),
            read_timeout_ms: cfg.read_timeout_ms,
            queue_wait_cap_ms: cfg.queue_wait_cap_ms,
            chaos,
            ..ServerConfig::default()
        },
    )?;
    let addr = handle.addr();

    // Open the delta window before the first plan request fires.
    let cursor = fetch_json(addr, "/v1/metrics")?
        .get("cursor")
        .and_then(Value::as_f64)
        .unwrap_or(0.0) as u64;

    let clients = cfg.clients.max(1);
    let mut joins = Vec::with_capacity(clients);
    for t in 0..clients {
        let cfg = cfg.clone();
        joins.push(std::thread::spawn(move || {
            let mut outcomes = Vec::new();
            let mut i = t;
            while i < cfg.requests {
                let fault = fault_at(cfg.seed, i);
                if chaos || fault == Fault::Healthy {
                    outcomes.push(fire(addr, &cfg, i, fault));
                }
                i += clients;
            }
            outcomes
        }));
    }
    let mut outcomes = Vec::with_capacity(cfg.requests);
    for j in joins {
        outcomes.extend(
            j.join()
                .map_err(|_| std::io::Error::other("chaos client thread panicked"))?,
        );
    }

    // Close the delta window before the healthz fetch below — the delta
    // must cover the plan's requests and nothing this harness does to
    // inspect the aftermath.
    let metrics_delta = fetch_json(addr, &format!("/v1/metrics?since={cursor}"))?;

    let health = fetch_health(addr)?;
    let breaker_opens = fetch_counter(addr, "serve.breaker_open");
    let degraded = fetch_counter(addr, "serve.degraded");
    shutdown_over_the_wire(addr, handle);
    outcomes.sort_by_key(|o| o.index);
    Ok(PassResult {
        outcomes,
        health,
        breaker_opens,
        degraded,
        metrics_delta,
    })
}

fn healthy_checksum_and_latencies(outcomes: &[Outcome]) -> (u64, Vec<f64>) {
    let mut checksum = FNV_OFFSET;
    let mut lat = Vec::new();
    for o in outcomes {
        if o.fault == Fault::Healthy {
            checksum = fnv1a(checksum, &o.body_hash.to_be_bytes());
            lat.push(o.ms);
        }
    }
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (checksum, lat)
}

/// Run the full harness: baseline pass, chaos pass, contract check.
///
/// Tracing is enabled for the duration (the breaker/respawn counters are
/// part of the contract); the instrumented pipeline is bit-neutral under
/// tracing, so this perturbs nothing.
pub fn run(cfg: &ChaosConfig) -> std::io::Result<ChaosReport> {
    silence_injected_panics();
    hpf_trace::enable();
    hpf_trace::reset();
    let baseline_pass = run_pass(cfg, false)?;
    let (baseline_checksum, baseline_lat) = healthy_checksum_and_latencies(&baseline_pass.outcomes);

    hpf_trace::reset();
    let chaos_pass = run_pass(cfg, true)?;
    hpf_trace::disable();
    let PassResult {
        outcomes,
        health,
        breaker_opens,
        degraded: degraded_responses,
        metrics_delta,
    } = chaos_pass;
    let (healthy_checksum, healthy_lat) = healthy_checksum_and_latencies(&outcomes);

    // Tally and per-fault contract: every injected fault that awaits an
    // answer must get the structured status its class promises.
    let mut totals = [0usize; FAULTS.len()];
    let mut expected = [0usize; FAULTS.len()];
    let mut failures: Vec<String> = Vec::new();
    let violation = |failures: &mut Vec<String>, o: &Outcome, want: &str| {
        if failures.len() < 12 {
            failures.push(format!(
                "request {} ({}) expected {want}, got {:?}",
                o.index,
                o.fault.label(),
                o.status
            ));
        }
    };
    for o in &outcomes {
        totals[o.fault.index()] += 1;
        let ok = match o.fault {
            Fault::Healthy => o.status == Some(200),
            Fault::HandlerPanic => o.status == Some(500) && o.panic_kind,
            Fault::DeadlineStorm => o.status == Some(504),
            Fault::SimPanic => o.status == Some(200) && o.degraded_or_measured,
            Fault::SlowLoris => o.status == Some(408),
            Fault::TruncatedBody => o.status == Some(400),
            Fault::Abort => true,
        };
        if ok {
            expected[o.fault.index()] += 1;
        } else {
            let want = match o.fault {
                Fault::Healthy => "200",
                Fault::HandlerPanic => "structured 500 (kind: panic)",
                Fault::DeadlineStorm => "504",
                Fault::SimPanic => "200 (degraded or measured)",
                Fault::SlowLoris => "408",
                Fault::TruncatedBody => "400",
                Fault::Abort => unreachable!(),
            };
            violation(&mut failures, o, want);
        }
    }

    if healthy_checksum != baseline_checksum {
        failures.push(format!(
            "healthy checksum {healthy_checksum:016x} != baseline {baseline_checksum:016x}: \
             chaos changed bytes of non-injected responses"
        ));
    }
    if health.deaths != 0 {
        failures.push(format!("{} worker death(s) under chaos", health.deaths));
    }
    if health.live != health.configured {
        failures.push(format!(
            "pool below strength after chaos: {}/{} workers live",
            health.live, health.configured
        ));
    }
    let baseline_p99 = percentile(&baseline_lat, 0.99);
    let healthy_p99 = percentile(&healthy_lat, 0.99);
    // In-band: a healthy request may at worst sit behind loris-held
    // workers for a read-timeout; beyond a few of those, the service is
    // letting faults starve healthy traffic.
    let band_ms = (4 * cfg.read_timeout_ms + 100) as f64;
    let band_ms = band_ms.max(25.0 * baseline_p99);
    if healthy_p99 > band_ms {
        failures.push(format!(
            "healthy p99 {healthy_p99:.3} ms out of band (cap {band_ms:.1} ms)"
        ));
    }
    let sim_faults = totals[Fault::SimPanic.index()];
    if sim_faults >= 3 && breaker_opens == 0 {
        failures.push(format!(
            "{sim_faults} DES faults injected but the breaker never opened"
        ));
    }

    // The delta-export contract: the chaos pass's window must carry the
    // metrics schema and must have resolved the cursor exactly (a
    // `reset` would mean the window silently became totals).
    if metrics_delta.get("schema").and_then(Value::as_str) != Some(crate::metrics::METRICS_SCHEMA) {
        failures.push("metrics delta: wrong or missing schema".into());
    }
    if metrics_delta.get("reset").is_some() {
        failures.push("metrics delta: cursor aged out of the ring during the pass".into());
    }
    let metrics_summary = summarize_delta(cfg, &metrics_delta, healthy_checksum);

    let healthy = totals[Fault::Healthy.index()];
    Ok(ChaosReport {
        requests: cfg.requests,
        clients: cfg.clients.max(1),
        workers: cfg.workers.max(1),
        seed: cfg.seed,
        healthy,
        injected: outcomes.len() - healthy,
        baseline_checksum,
        healthy_checksum,
        baseline_p99_ms: baseline_p99,
        healthy_p50_ms: percentile(&healthy_lat, 0.50),
        healthy_p99_ms: healthy_p99,
        tally: FAULTS
            .iter()
            .map(|f| (f.label(), totals[f.index()], expected[f.index()]))
            .collect(),
        workers_configured: health.configured,
        workers_live: health.live,
        worker_deaths: health.deaths,
        worker_panics: health.panics,
        worker_respawns: health.respawns,
        shed: health.shed,
        breaker_opens,
        degraded_responses,
        metrics_summary,
        failures,
    })
}

/// The deterministic slice of the chaos pass's `?since=` delta: values
/// that are a pure function of the plan (seed + request count) and
/// independent of worker count, client count, and timing. CI pins this
/// document against a checked-in golden at several worker counts — the
/// service-level analogue of the loadgen checksum.
///
/// Deliberately excluded: connection and cache counters (they see the
/// harness's own scrapes and cache-timing races), shed/breaker/degraded
/// counts (timing-dependent), and every latency *value* (only sketch
/// *counts* are plan-determined).
fn summarize_delta(cfg: &ChaosConfig, delta: &Value, healthy_checksum: u64) -> Value {
    let counter = |name: &str| -> Value {
        Value::Num(
            delta
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
        )
    };
    let sketch_count = |name: &str| -> Value {
        Value::Num(
            delta
                .get("sketches")
                .and_then(|s| s.get(name))
                .and_then(|s| s.get("count"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
        )
    };
    Value::obj(vec![
        ("schema", Value::Str("hpf-serve-chaos-metrics/v1".into())),
        ("seed", Value::Str(format!("{:#x}", cfg.seed))),
        ("requests", Value::Num(cfg.requests as f64)),
        (
            "healthy_checksum",
            Value::Str(format!("{healthy_checksum:016x}")),
        ),
        (
            "counters",
            Value::obj(vec![
                ("serve.requests", counter("serve.requests")),
                ("serve.worker_death", counter("serve.worker_death")),
                ("serve.worker_panic", counter("serve.worker_panic")),
            ]),
        ),
        (
            "sketch_counts",
            Value::obj(vec![
                (
                    "serve.latency.predict",
                    sketch_count("serve.latency.predict"),
                ),
                ("serve.latency.sweep", sketch_count("serve.latency.sweep")),
                (
                    "serve.latency.machine.torus3d",
                    sketch_count("serve.latency.machine.torus3d"),
                ),
                (
                    "serve.latency.machine.fattree",
                    sketch_count("serve.latency.machine.fattree"),
                ),
                (
                    "serve.latency.machine.multicore",
                    sketch_count("serve.latency.machine.multicore"),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_mostly_healthy() {
        let a: Vec<Fault> = (0..1000).map(|i| fault_at(0xFEED, i)).collect();
        let b: Vec<Fault> = (0..1000).map(|i| fault_at(0xFEED, i)).collect();
        assert_eq!(a, b, "same seed must give the same plan");
        let healthy = a.iter().filter(|f| **f == Fault::Healthy).count();
        assert!(
            (600..=800).contains(&healthy),
            "healthy share {healthy}/1000 outside the ~70% design point"
        );
        // Every fault class occurs: the plan exercises the whole surface.
        for f in FAULTS {
            assert!(a.contains(&f), "fault {:?} never drawn", f);
        }
    }

    #[test]
    fn machine_splice_is_deterministic_small_and_well_formed() {
        let a: Vec<Option<&str>> = (0..1000).map(|i| machine_at(0xFEED, i)).collect();
        let b: Vec<Option<&str>> = (0..1000).map(|i| machine_at(0xFEED, i)).collect();
        assert_eq!(a, b, "same seed must give the same machine splice");
        let named = a.iter().filter(|m| m.is_some()).count();
        assert!(
            (20..=120).contains(&named),
            "machine share {named}/1000 outside the ~6% design point"
        );
        for m in SPLICE_MACHINES {
            assert!(a.contains(&Some(m)), "machine {m} never drawn");
            assert!(hpf_machines::machine(m).is_ok(), "{m} must be registered");
        }
        // Spliced bodies stay valid JSON carrying the named machine.
        for i in 0..1000 {
            let (_, body) = plan_request(0xFEED, i);
            let v = parse_json(&body).unwrap_or_else(|e| panic!("request {i}: {e}: {body}"));
            assert_eq!(
                v.get("machine").and_then(Value::as_str),
                machine_at(0xFEED, i)
            );
        }
    }

    #[test]
    fn io_splice_is_deterministic_small_and_well_formed() {
        let a: Vec<Option<(&str, usize, usize)>> = (0..1000).map(|i| io_at(0xFEED, i)).collect();
        let b: Vec<Option<(&str, usize, usize)>> = (0..1000).map(|i| io_at(0xFEED, i)).collect();
        assert_eq!(a, b, "same seed must give the same io splice");
        let spliced = a.iter().filter(|m| m.is_some()).count();
        assert!(
            (15..=100).contains(&spliced),
            "io share {spliced}/1000 outside the ~5% design point"
        );
        for (kernel, n, procs) in SPLICE_OOC {
            assert!(
                a.contains(&Some((kernel, n, procs))),
                "ooc request {kernel} never drawn"
            );
            assert!(
                kernels::kernel_by_name(kernel).is_some(),
                "{kernel} must resolve in the suite"
            );
        }
        // Spliced bodies stay valid JSON naming the out-of-core kernel,
        // and the machine override still composes on top.
        for i in 0..1000 {
            if let Some((kernel, n, procs)) = io_at(0xFEED, i) {
                let (path, body) = plan_request(0xFEED, i);
                assert_eq!(path, "/v1/predict");
                let v = parse_json(&body).unwrap_or_else(|e| panic!("request {i}: {e}: {body}"));
                assert_eq!(v.get("kernel").and_then(Value::as_str), Some(kernel));
                assert_eq!(v.get("n").and_then(Value::as_f64), Some(n as f64));
                assert_eq!(v.get("procs").and_then(Value::as_f64), Some(procs as f64));
                assert_eq!(
                    v.get("machine").and_then(Value::as_str),
                    machine_at(0xFEED, i)
                );
            }
        }
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let a: Vec<Fault> = (0..200).map(|i| fault_at(1, i)).collect();
        let b: Vec<Fault> = (0..200).map(|i| fault_at(2, i)).collect();
        assert_ne!(a, b);
    }
}
