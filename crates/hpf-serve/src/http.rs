//! A minimal HTTP/1.1 layer over `std::net` — request parsing, response
//! serialization, keep-alive bookkeeping. Zero dependencies, consistent
//! with the vendored-deps policy: the service only needs the subset of
//! HTTP that `curl` and the loadgen speak (request line, headers,
//! `Content-Length` bodies, persistent connections).

use std::io::{BufRead, Write};

/// Largest accepted request body, bytes. HPF programs are kilobytes; a
/// megabyte leaves room without letting one request balloon the worker.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest accepted header section (request line + headers), bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// Path with the query string stripped — routing is on the path alone.
    pub path: String,
    /// Raw query string (no leading `?`); empty when the request had none.
    pub query: String,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Value of the query parameter `name` (`k=v` pairs split on `&`).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }

    /// Did the client ask to close the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// A malformed or over-limit request, mapped to the HTTP status the
/// connection handler should answer with before closing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    pub status: u16,
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HTTP {}: {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// The canonical reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Map a read error to the right protocol answer: a timed-out read (a
/// slow-loris peer, or an idle keep-alive connection expiring) is `408
/// Request Timeout`; anything else is a `400` protocol violation.
fn read_error(context: &str, e: &std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            HttpError::new(408, format!("{context}: read timed out"))
        }
        _ => HttpError::new(400, format!("{context}: {e}")),
    }
}

/// Read one request from a buffered connection.
///
/// Returns `Ok(None)` on a clean end-of-stream before any bytes of a new
/// request (the keep-alive peer hung up — not an error). I/O errors and
/// timeouts surface as `Err` with status 408-ish semantics handled by the
/// caller; protocol violations surface with the 4xx status to answer.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(read_error("read request line", &e)),
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => {
            return Err(HttpError::new(
                400,
                format!("malformed request line {line:?}"),
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(
            400,
            format!("unsupported version {version}"),
        ));
    }

    let mut headers = Vec::new();
    let mut header_bytes = line.len();
    loop {
        let mut h = String::new();
        match reader.read_line(&mut h) {
            Ok(0) => return Err(HttpError::new(400, "eof inside headers")),
            Ok(n) => header_bytes += n,
            Err(e) => return Err(read_error("read header", &e)),
        }
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::new(413, "header section too large"));
        }
        let h = h.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header {h:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::new(400, format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::new(413, "request body too large"));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        std::io::Read::read_exact(reader, &mut body).map_err(|e| read_error("read body", &e))?;
    }

    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (path, String::new()),
    };
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Serialize a response. `retry_after` adds the backpressure header the
/// 429 path promises; `keep_alive` decides the `Connection` header.
pub fn response_bytes(
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    retry_after_s: Option<u32>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 160);
    let _ = write_response(
        &mut out,
        status,
        content_type,
        body,
        keep_alive,
        retry_after_s,
    );
    out
}

/// Serialize a response directly into a writer — the keep-alive hot path
/// uses this to stream into the connection's write buffer instead of
/// allocating and copying a temporary per response.
pub fn write_response<W: Write>(
    out: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    retry_after_s: Option<u32>,
) -> std::io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    if let Some(s) = retry_after_s {
        write!(out, "retry-after: {s}\r\n")?;
    }
    out.write_all(b"\r\n")?;
    out.write_all(body)
}

/// One parsed response: `(status, headers, body)`, header names lower-cased.
pub type Response = (u16, Vec<(String, String)>, Vec<u8>);

/// Read one response from a buffered connection — the client half used by
/// the loadgen and the end-to-end tests.
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<Response, HttpError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Err(HttpError::new(400, "eof before status line")),
        Ok(_) => {}
        Err(e) => return Err(HttpError::new(400, format!("read status line: {e}"))),
    }
    let mut parts = line.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(v), Some(s)) if v.starts_with("HTTP/1.") => s
            .parse::<u16>()
            .map_err(|_| HttpError::new(400, format!("bad status {s:?}")))?,
        _ => {
            return Err(HttpError::new(
                400,
                format!("malformed status line {line:?}"),
            ))
        }
    };

    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        match reader.read_line(&mut h) {
            Ok(0) => return Err(HttpError::new(400, "eof inside response headers")),
            Ok(_) => {}
            Err(e) => return Err(HttpError::new(400, format!("read response header: {e}"))),
        }
        let h = h.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(HttpError::new(
                400,
                format!("malformed response header {h:?}"),
            ));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::new(400, format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        std::io::Read::read_exact(reader, &mut body)
            .map_err(|e| HttpError::new(400, format!("read response body: {e}")))?;
    }
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/predict");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"a\"");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_get_without_body_and_splits_query() {
        let req = parse("GET /v1/healthz?x=1&since=42 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert_eq!(req.query, "x=1&since=42");
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("since"), Some("42"));
        assert_eq!(req.query_param("nope"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_close_is_detected() {
        let req = parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_none_not_error() {
        assert_eq!(parse("").unwrap().map(|r| r.method), None);
    }

    #[test]
    fn rejects_protocol_garbage() {
        assert_eq!(parse("NONSENSE\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET / SPDY/3\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse("GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn rejects_oversized_bodies() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(&raw).unwrap_err().status, 413);
    }

    #[test]
    fn truncated_body_is_an_error() {
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn response_bytes_carry_headers() {
        let bytes = response_bytes(429, "application/json", b"{}", true, Some(2));
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn read_response_round_trips_what_response_bytes_wrote() {
        let bytes = response_bytes(404, "application/json", b"{\"e\":1}", false, None);
        let (status, headers, body) = read_response(&mut BufReader::new(bytes.as_slice())).unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, b"{\"e\":1}");
        assert!(headers
            .iter()
            .any(|(k, v)| k == "connection" && v == "close"));
    }

    #[test]
    fn keep_alive_roundtrip_reads_two_requests() {
        let raw = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = BufReader::new(raw.as_bytes());
        let a = read_request(&mut r).unwrap().unwrap();
        let b = read_request(&mut r).unwrap().unwrap();
        assert_eq!((a.path.as_str(), b.path.as_str()), ("/a", "/b"));
        assert!(read_request(&mut r).unwrap().is_none());
    }
}
