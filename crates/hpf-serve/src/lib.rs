//! # hpf-serve — a concurrent prediction service over warm sessions
//!
//! The SC'94 framework was built to live inside an interactive
//! application-development environment: a developer edits directives and
//! asks "what would this cost on 16 nodes?" over and over. This crate
//! packages the prediction pipeline as a long-running HTTP/1.1 JSON
//! service shaped for exactly that loop — the expensive front half
//! (parse, semantic analysis, partitioning) happens once per distinct
//! program shape and is then re-served warm from bounded LRU caches,
//! while the cheap back half (interpretation over the AAG) runs per
//! request.
//!
//! Zero external dependencies, per the workspace's offline policy: the
//! HTTP layer ([`http`]), JSON (via `hpf_trace::json`), thread pool and
//! load generator ([`loadgen`]) are all std-only.
//!
//! ## Endpoints
//!
//! | route | answer |
//! |---|---|
//! | `POST /v1/predict` | per-phase predicted times for `(kernel or source, n, procs)` |
//! | `POST /v1/sweep`   | predicted (optionally DES-simulated) curve over a size range |
//! | `POST /v1/advise`  | top-k directive recommendations via the hpf-advisor search |
//! | `GET /v1/metrics`  | streaming metrics: totals, windowed rates, latency sketches, and the embedded `hpf-trace/v1` doc; `?since=<cursor>` answers deltas ([`metrics`]) |
//! | `GET /v1/healthz`  | liveness: pool strength, queue depth, panics, breaker state |
//! | `POST /v1/shutdown`| graceful drain: answer in-flight work, then exit |
//!
//! ## Guarantees
//!
//! * **Determinism** — responses for identical requests are bit-identical
//!   regardless of worker count or arrival order (pure handlers, sorted
//!   JSON keys, seeded simulation); the loadgen checksum and the
//!   end-to-end tests enforce this.
//! * **Bounded memory** — every cache layer (kernel artifacts, parsed
//!   sources, bound artifacts, response bodies, and the process-wide
//!   profile memo in `report`) is LRU-bounded.
//! * **Backpressure** — a full connection queue answers `429` with
//!   `Retry-After` instead of queueing without limit.
//! * **Graceful cancellation** — per-request deadlines are checked
//!   between pipeline stages; an expired deadline yields `504` without
//!   interrupting a stage midway, and a deadline that is already dead at
//!   parse time short-circuits before any pipeline stage runs.
//! * **Crash isolation** — a panicking handler is caught at the worker
//!   boundary and answered as a structured `500` (kind `panic`); the
//!   worker survives, and a supervisor respawns any worker that dies
//!   anyway, so the pool never silently shrinks ([`server`], [`status`]).
//! * **Deadline-aware shedding** — connections that out-wait the
//!   queue-wait cap are shed at dequeue with a structured `504` instead
//!   of being serviced after their caller gave up.
//! * **Graceful degradation** — the DES cross-check runs behind a
//!   circuit [`breaker`]; when it trips, sweeps and advice are served
//!   analytic-only with `"degraded": true` rather than failing.
//! * **Chaos-tested** — the seeded, replayable service-level [`chaos`]
//!   plan (`serve chaos`) injects handler panics, DES panics, deadline
//!   storms, slow-loris reads, truncated bodies and client aborts, and
//!   asserts zero worker deaths, structured answers for every fault, and
//!   a healthy-request checksum bit-identical to a fault-free run.

pub mod api;
pub mod breaker;
pub mod cache;
pub mod chaos;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod server;
pub mod status;

pub use api::{Api, ApiResponse, SCHEMA};
pub use breaker::{Breaker, BreakerConfig, BreakerOutcome};
pub use cache::{body_cache_key, CacheConfig, Deadline, ServeCache, ServeFailure, ShardedLru};
pub use chaos::{ChaosConfig, ChaosReport};
pub use loadgen::{LoadgenConfig, LoadgenReport, OverloadConfig, OverloadReport};
pub use metrics::{ServeMetrics, METRICS_SCHEMA};
pub use server::{default_workers, start, ServerConfig, ServerHandle};
pub use status::ServiceStatus;

#[cfg(test)]
pub(crate) mod testlock {
    //! The hpf-trace global registry is shared by every unit test in this
    //! binary; tests that enable/reset tracing serialize on this lock.
    pub static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}
