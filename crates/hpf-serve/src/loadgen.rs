//! Deterministic load generator: a seeded request mix over the kernel
//! suite, fired at an in-process server over real sockets.
//!
//! The mix is a pure function of `(seed, request index)` — ~90% of
//! requests are warm Laplace predicts drawn from a handful of distinct
//! bodies (the steady-state shape a prediction service sees), the rest
//! spread over the other kernels and small sweep curves. Every response
//! body is folded into an FNV-1a checksum *in request-index order*, so
//! two runs with the same seed and request count produce the same
//! checksum no matter how many workers or client threads raced — the
//! drive-by proof of the service's byte-determinism contract.
//!
//! Clients pipeline: each writes a burst of up to `pipeline` requests in
//! one syscall and then drains the burst of responses (the server's
//! write buffering answers a burst with a burst). With the warm
//! in-process path at single-digit microseconds, per-request syscalls
//! and context switches were the throughput ceiling; amortizing them
//! over a burst is where the headline req/s comes from. Latency is
//! measured from burst write to each response read — the time a caller
//! of the batch actually waited.
//!
//! Reported: throughput, latency percentiles (p50/p95/p99/p99.9),
//! status counts, warm-cache hit rate (from the server's own
//! `serve.cache.{hit,miss}` counters via `GET /v1/metrics`), and the
//! body checksum.
//!
//! The [`run_overload`] profile is the opposite shape: connection churn
//! (one fresh connection per request), no pipelining, more clients than
//! workers, and a shallow queue — so the service is forced to shed. It
//! reports the served/shed split, percentiles over *served* responses
//! only, and a per-request-shape checksum (shedding is timing-dependent,
//! so which requests get 200 varies run to run, but every served body
//! for a shape must be byte-identical and every shape must be servable).
//!
//! Percentiles come from a [`QuantileSketch`] per client thread, merged
//! at the end — the same shard-then-merge shape the service itself uses,
//! and (by the sketch's exact-merge guarantee) identical to what one
//! sketch over all samples would report.

use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use hpf_trace::json::{parse as parse_json, Value};
use hpf_trace::QuantileSketch;

use crate::cache::CacheConfig;
use crate::http::read_response;
use crate::server::{start, ServerConfig};

/// Loadgen knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total requests in the run.
    pub requests: usize,
    /// Client threads. Clamped to `workers` so a parked keep-alive client
    /// can never starve the pool (each client holds one connection, each
    /// connection holds one worker).
    pub clients: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Mix seed.
    pub seed: u64,
    /// Requests per pipelined burst (1 = classic write/read lockstep).
    pub pipeline: usize,
    /// Cache lock shards (0 = derive from the worker count).
    pub shards: usize,
}

impl LoadgenConfig {
    /// The `--quick` preset the CI gate and EXPERIMENTS numbers use.
    pub fn quick() -> Self {
        LoadgenConfig {
            requests: 2_000,
            clients: 4,
            workers: 4,
            seed: 0x010A_D6E4,
            pipeline: 32,
            shards: 0,
        }
    }
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 10_000,
            ..LoadgenConfig::quick()
        }
    }
}

/// One finished run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    pub requests: usize,
    pub clients: usize,
    pub workers: usize,
    pub seed: u64,
    pub wall_s: f64,
    pub throughput_rps: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    pub ok: usize,
    pub failed: usize,
    /// `serve.cache.hit / (hit + miss)` over the run.
    pub cache_hit_rate: f64,
    /// FNV-1a over all response bodies in request-index order.
    pub checksum: u64,
}

impl LoadgenReport {
    pub fn render(&self) -> String {
        format!(
            "loadgen: {} requests, {} clients, {} workers, seed {:#x}\n\
             wall          {:.3} s\n\
             throughput    {:.0} req/s\n\
             latency p50   {:.3} ms\n\
             latency p95   {:.3} ms\n\
             latency p99   {:.3} ms\n\
             latency p99.9 {:.3} ms\n\
             ok / failed   {} / {}\n\
             cache hits    {:.1} %\n\
             checksum      {:016x}\n",
            self.requests,
            self.clients,
            self.workers,
            self.seed,
            self.wall_s,
            self.throughput_rps,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.p999_ms,
            self.ok,
            self.failed,
            self.cache_hit_rate * 100.0,
            self.checksum
        )
    }
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The deterministic request at index `i`: `(path, body)`.
pub fn request_at(seed: u64, i: usize) -> (&'static str, String) {
    let r = splitmix64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9)) % 100;
    match r {
        // ~90%: the warm Laplace predict mix — 6 distinct bodies.
        0..=89 => {
            let n = [64usize, 128, 256][(r % 3) as usize];
            let procs = [4usize, 8][(r % 2) as usize];
            (
                "/v1/predict",
                format!(r#"{{"kernel": "Laplace (Blk-Blk)", "n": {n}, "procs": {procs}}}"#),
            )
        }
        // ~5%: predicts over the rest of the suite.
        90..=94 => {
            let kernel = ["PI", "Laplace (Blk-X)", "Laplace (X-Blk)"][(r % 3) as usize];
            (
                "/v1/predict",
                format!(r#"{{"kernel": "{kernel}", "n": 128, "procs": 4}}"#),
            )
        }
        // ~5%: small predicted sweep curves.
        _ => (
            "/v1/sweep",
            format!(
                r#"{{"kernel": "PI", "sizes": {{"min": {}, "max": 128}}, "procs": 4}}"#,
                [32usize, 64][(r % 2) as usize]
            ),
        ),
    }
}

pub(crate) fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() as f64 * q).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

struct ClientResult {
    /// `(request index, latency ms, status, body hash)` per request.
    samples: Vec<(usize, f64, u16, u64)>,
    /// This client's latency shard (seconds), merged with the other
    /// clients' shards for the report percentiles.
    sketch: QuantileSketch,
}

fn raw_request(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// One pipelined burst, serialized before the clock starts: the wire
/// bytes of up to `pipeline` requests and the request indices they
/// answer, in order.
struct PreparedBurst {
    bytes: Vec<u8>,
    indices: Vec<usize>,
}

/// Serialize one client's share of the mix into bursts ahead of time —
/// the generator's own `format!` work must not count against the
/// service's measured throughput.
fn prepare_bursts(
    seed: u64,
    requests: usize,
    stride: usize,
    first: usize,
    pipeline: usize,
) -> Vec<PreparedBurst> {
    let pipeline = pipeline.max(1);
    let mut bursts = Vec::new();
    let mut i = first;
    while i < requests {
        let mut bytes = Vec::new();
        let mut indices = Vec::with_capacity(pipeline);
        while indices.len() < pipeline && i < requests {
            let (path, body) = request_at(seed, i);
            bytes.extend_from_slice(raw_request(path, &body).as_bytes());
            indices.push(i);
            i += stride;
        }
        bursts.push(PreparedBurst { bytes, indices });
    }
    bursts
}

/// Hash a response body, memoizing by exact bytes: the mix is
/// duplicate-heavy (a handful of distinct shapes), and a 2.5 KB FNV walk
/// per response costs more than the entire server-side hot path. An
/// exact `==` (memcmp) against the few seen bodies is ~30× cheaper and
/// yields bit-identical hashes, so the checksum is unchanged.
fn memoized_hash(memo: &mut Vec<(Vec<u8>, u64)>, body: &[u8]) -> u64 {
    for (seen, hash) in memo.iter() {
        if seen.as_slice() == body {
            return *hash;
        }
    }
    let hash = fnv1a(FNV_OFFSET, body);
    // Bound the memo so a pathological mix of all-distinct bodies
    // degrades to plain hashing instead of unbounded memory.
    if memo.len() < 64 {
        memo.push((body.to_vec(), hash));
    }
    hash
}

/// The loadgen's lean response reader: status + body, no per-header
/// allocations, body into a caller-owned reusable buffer.
fn read_response_lean<R: std::io::BufRead>(
    reader: &mut R,
    line: &mut String,
    body: &mut Vec<u8>,
) -> std::io::Result<u16> {
    line.clear();
    if reader.read_line(line)? == 0 {
        return Err(std::io::Error::other("eof before status line"));
    }
    let mut parts = line.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(v), Some(s)) if v.starts_with("HTTP/1.") => s
            .parse::<u16>()
            .map_err(|_| std::io::Error::other("bad status"))?,
        _ => return Err(std::io::Error::other("malformed status line")),
    };
    let mut content_length = 0usize;
    loop {
        line.clear();
        if reader.read_line(line)? == 0 {
            return Err(std::io::Error::other("eof inside response headers"));
        }
        let h = line.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| std::io::Error::other("bad content-length"))?;
            }
        }
    }
    body.resize(content_length, 0);
    std::io::Read::read_exact(reader, body)?;
    Ok(status)
}

fn client_run(
    addr: std::net::SocketAddr,
    bursts: Vec<PreparedBurst>,
) -> std::io::Result<ClientResult> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::with_capacity(256 << 10, stream.try_clone()?);
    let mut stream = stream;
    let total: usize = bursts.iter().map(|b| b.indices.len()).sum();
    let mut samples = Vec::with_capacity(total);
    let mut sketch = QuantileSketch::new();
    let mut memo: Vec<(Vec<u8>, u64)> = Vec::new();
    let mut line = String::new();
    let mut body = Vec::new();
    for burst in &bursts {
        // One burst: up to `pipeline` requests in a single write, then
        // drain that many responses. Latency for each response is
        // measured from the burst write — what a caller who sent the
        // batch actually waited for that answer.
        let t0 = Instant::now();
        stream.write_all(&burst.bytes)?;
        for &idx in &burst.indices {
            let status = read_response_lean(&mut reader, &mut line, &mut body)?;
            let secs = t0.elapsed().as_secs_f64();
            sketch.record(secs);
            samples.push((idx, secs * 1e3, status, memoized_hash(&mut memo, &body)));
        }
    }
    Ok(ClientResult { samples, sketch })
}

/// Warm-cache hit rate from the server's own metrics endpoint.
fn fetch_hit_rate(addr: std::net::SocketAddr) -> std::io::Result<f64> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"GET /v1/metrics HTTP/1.1\r\nconnection: close\r\n\r\n")?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let (status, _, body) =
        read_response(&mut reader).map_err(|e| std::io::Error::other(e.message))?;
    if status != 200 {
        return Err(std::io::Error::other(format!("metrics status {status}")));
    }
    let doc = parse_json(std::str::from_utf8(&body).map_err(std::io::Error::other)?)
        .map_err(|e| std::io::Error::other(format!("metrics json: {e}")))?;
    let counter = |name: &str| -> f64 {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    };
    let (hit, miss) = (counter("serve.cache.hit"), counter("serve.cache.miss"));
    Ok(if hit + miss == 0.0 {
        0.0
    } else {
        hit / (hit + miss)
    })
}

/// Run the generator against a fresh in-process server and drain it.
///
/// Tracing is enabled (and the registry reset) for the duration so the
/// hit-rate counters exist; the instrumented pipeline is bit-neutral
/// under tracing, so this perturbs nothing.
pub fn run(cfg: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    let workers = cfg.workers.max(1);
    let clients = cfg.clients.max(1).min(workers);

    hpf_trace::enable();
    hpf_trace::reset();

    let handle = start(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            // Never the bottleneck here: clients <= workers holds every
            // connection on a worker, the queue stays empty.
            queue_depth: workers * 2,
            cache: CacheConfig {
                shards: cfg.shards,
                ..CacheConfig::default()
            },
            ..ServerConfig::default()
        },
    )?;
    let addr = handle.addr();

    // Serialize every client's bursts before the clock starts; the
    // measurement should time the service, not the generator.
    let prepared: Vec<Vec<PreparedBurst>> = (0..clients)
        .map(|j| prepare_bursts(cfg.seed, cfg.requests, clients, j, cfg.pipeline))
        .collect();

    let t0 = Instant::now();
    let mut joins = Vec::with_capacity(clients);
    for bursts in prepared {
        joins.push(std::thread::spawn(move || client_run(addr, bursts)));
    }
    let mut samples = Vec::with_capacity(cfg.requests);
    let mut merged = QuantileSketch::new();
    for j in joins {
        let result = j
            .join()
            .map_err(|_| std::io::Error::other("client thread panicked"))??;
        samples.extend(result.samples);
        merged.merge(&result.sketch);
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let cache_hit_rate = fetch_hit_rate(addr)?;

    // Shut the server down the way a supervisor would: over the wire.
    {
        let mut stream = TcpStream::connect(addr)?;
        stream.write_all(b"POST /v1/shutdown HTTP/1.1\r\ncontent-length: 0\r\n\r\n")?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let _ = read_response(&mut reader);
    }
    handle.wait();
    hpf_trace::disable();

    // Fold body hashes in request-index order: worker count and arrival
    // order cancel out of the checksum by construction.
    samples.sort_by_key(|&(i, _, _, _)| i);
    let mut checksum = FNV_OFFSET;
    let mut ok = 0;
    let mut failed = 0;
    for &(_, _, status, body_hash) in &samples {
        checksum = fnv1a(checksum, &body_hash.to_be_bytes());
        if status == 200 {
            ok += 1;
        } else {
            failed += 1;
        }
    }

    debug_assert_eq!(merged.count() as usize, samples.len());

    Ok(LoadgenReport {
        requests: cfg.requests,
        clients,
        workers,
        seed: cfg.seed,
        wall_s,
        throughput_rps: cfg.requests as f64 / wall_s.max(1e-9),
        p50_ms: merged.quantile(0.50) * 1e3,
        p95_ms: merged.quantile(0.95) * 1e3,
        p99_ms: merged.quantile(0.99) * 1e3,
        p999_ms: merged.quantile(0.999) * 1e3,
        ok,
        failed,
        cache_hit_rate,
        checksum,
    })
}

/// Overload-profile knobs: more clients than workers, a fresh connection
/// per request, and a shallow queue — the service must shed, and the
/// profile proves it sheds *structurally* (429/504) instead of serving
/// late.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Total requests attempted in the storm.
    pub requests: usize,
    /// Client threads — deliberately more than workers.
    pub clients: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Mix seed (the same duplicate-heavy mix as the healthy profile).
    pub seed: u64,
    /// Cache lock shards (0 = derive from the worker count).
    pub shards: usize,
}

impl OverloadConfig {
    /// The `--overload` preset: 3 clients per worker, churn, shallow queue.
    pub fn quick() -> Self {
        OverloadConfig {
            requests: 2_000,
            clients: 12,
            workers: 4,
            seed: 0x0BAD_10AD,
            shards: 0,
        }
    }
}

/// One finished overload run.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    pub requests: usize,
    pub clients: usize,
    pub workers: usize,
    pub seed: u64,
    pub wall_s: f64,
    /// Requests answered 200.
    pub served: usize,
    /// Backpressure at accept: queue full.
    pub shed_429: usize,
    /// Shed at dequeue: out-waited the queue-wait cap.
    pub shed_504: usize,
    /// Other structured answers (408 on a stalled read, etc.).
    pub other_structured: usize,
    /// Non-structured failures: connection errors, unparseable bodies.
    /// The overload contract is that this stays zero — overload is
    /// handled by structured shedding, never by broken answers.
    pub failed: usize,
    /// Percentiles over *served* (200) responses only, from merged
    /// per-client sketch shards.
    pub served_p50_ms: f64,
    pub served_p99_ms: f64,
    pub served_p999_ms: f64,
    /// Distinct request shapes in the mix.
    pub shapes: usize,
    /// Shapes whose served bodies ever disagreed (must be zero).
    pub mismatched_shapes: usize,
    /// FNV-1a over one served body hash per shape, in first-occurrence
    /// order. Shedding decides *which* requests are served, never *what*
    /// a served answer contains, so this is run-to-run stable where the
    /// index-ordered healthy checksum would not be.
    pub checksum: u64,
}

impl OverloadReport {
    pub fn render(&self) -> String {
        format!(
            "overload: {} requests, {} clients, {} workers, seed {:#x}\n\
             wall            {:.3} s\n\
             attempted       {:.0} req/s\n\
             served          {}\n\
             shed 429 / 504  {} / {}\n\
             other / failed  {} / {}\n\
             served p50      {:.3} ms\n\
             served p99      {:.3} ms\n\
             served p99.9    {:.3} ms\n\
             shapes          {} ({} mismatched)\n\
             shape checksum  {:016x}\n",
            self.requests,
            self.clients,
            self.workers,
            self.seed,
            self.wall_s,
            self.requests as f64 / self.wall_s.max(1e-9),
            self.served,
            self.shed_429,
            self.shed_504,
            self.other_structured,
            self.failed,
            self.served_p50_ms,
            self.served_p99_ms,
            self.served_p999_ms,
            self.shapes,
            self.mismatched_shapes,
            self.checksum
        )
    }
}

/// A one-request connection with `connection: close` — real churn: every
/// request pays connect + accept, and the worker is freed at the write.
fn overload_raw(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Fire one churned request. Latency is measured from the request write
/// (connection setup excluded): the served-latency contract is about
/// service time, and under churn the accept path is the arrival process,
/// not the service.
fn overload_fire(addr: std::net::SocketAddr, raw: &[u8]) -> std::io::Result<(u16, Vec<u8>, f64)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
    let t0 = Instant::now();
    stream.write_all(raw)?;
    let mut reader = BufReader::new(stream);
    let (status, _, body) =
        read_response(&mut reader).map_err(|e| std::io::Error::other(e.message))?;
    Ok((status, body, t0.elapsed().as_secs_f64()))
}

/// Is this body a structured service answer (schema-stamped JSON)?
fn is_structured(body: &[u8]) -> bool {
    std::str::from_utf8(body)
        .ok()
        .and_then(|t| parse_json(t).ok())
        .is_some_and(|v| v.get("schema").is_some())
}

struct OverloadClientResult {
    /// `(shape, status, body hash, latency s, structured)` per request.
    samples: Vec<(u32, u16, u64, f64, bool)>,
    /// Served-latency shard.
    sketch: QuantileSketch,
    /// Connection-level failures (no response at all).
    failed: usize,
}

fn overload_client(
    addr: std::net::SocketAddr,
    shapes: std::sync::Arc<Vec<(String, String, Vec<u8>)>>,
    shape_of: std::sync::Arc<Vec<u32>>,
    stride: usize,
    first: usize,
) -> OverloadClientResult {
    let mut samples = Vec::with_capacity(shape_of.len() / stride + 1);
    let mut sketch = QuantileSketch::new();
    let mut failed = 0;
    let mut i = first;
    while i < shape_of.len() {
        let shape = shape_of[i];
        match overload_fire(addr, &shapes[shape as usize].2) {
            Ok((status, body, secs)) => {
                if status == 200 {
                    sketch.record(secs);
                }
                samples.push((
                    shape,
                    status,
                    fnv1a(FNV_OFFSET, &body),
                    secs,
                    is_structured(&body),
                ));
            }
            Err(_) => failed += 1,
        }
        i += stride;
    }
    OverloadClientResult {
        samples,
        sketch,
        failed,
    }
}

/// Run the overload profile: saturate a small pool through churned
/// one-shot connections and prove the service sheds structurally while
/// serving byte-identical answers for whatever it does serve.
///
/// After the storm, any shape the shedding happened to starve completely
/// is fetched once on an idle server (bounded retries) so the per-shape
/// checksum always covers the whole mix.
pub fn run_overload(cfg: &OverloadConfig) -> std::io::Result<OverloadReport> {
    let workers = cfg.workers.max(1);
    let clients = cfg.clients.max(1);

    // The deterministic shape table: distinct (path, body) pairs in
    // first-occurrence order, and each request index's shape.
    let mut shape_index: BTreeMap<(&'static str, String), u32> = BTreeMap::new();
    let mut shapes: Vec<(String, String, Vec<u8>)> = Vec::new();
    let mut shape_of: Vec<u32> = Vec::with_capacity(cfg.requests);
    for i in 0..cfg.requests {
        let (path, body) = request_at(cfg.seed, i);
        let next = shapes.len() as u32;
        let idx = *shape_index.entry((path, body.clone())).or_insert_with(|| {
            shapes.push((path.to_string(), body.clone(), overload_raw(path, &body)));
            next
        });
        shape_of.push(idx);
    }
    let shapes = std::sync::Arc::new(shapes);
    let shape_of = std::sync::Arc::new(shape_of);

    hpf_trace::enable();
    hpf_trace::reset();

    let handle = start(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            // Shallow on purpose: the queue is the shedding instrument.
            queue_depth: workers * 2,
            // Tight dequeue cap: anything that waited longer is answered
            // 504, never served late — the flat-p99 half of the contract.
            queue_wait_cap_ms: 50,
            cache: CacheConfig {
                shards: cfg.shards,
                ..CacheConfig::default()
            },
            ..ServerConfig::default()
        },
    )?;
    let addr = handle.addr();

    let t0 = Instant::now();
    let mut joins = Vec::with_capacity(clients);
    for j in 0..clients {
        let shapes = shapes.clone();
        let shape_of = shape_of.clone();
        joins.push(std::thread::spawn(move || {
            overload_client(addr, shapes, shape_of, clients, j)
        }));
    }
    let mut samples = Vec::with_capacity(cfg.requests);
    let mut merged = QuantileSketch::new();
    let mut failed = 0;
    for j in joins {
        let result = j
            .join()
            .map_err(|_| std::io::Error::other("overload client panicked"))?;
        samples.extend(result.samples);
        merged.merge(&result.sketch);
        failed += result.failed;
    }
    let wall_s = t0.elapsed().as_secs_f64();

    // Aggregate: status split, structural check, per-shape body hashes.
    let mut served = 0;
    let mut shed_429 = 0;
    let mut shed_504 = 0;
    let mut other_structured = 0;
    let mut shape_hash: Vec<Option<u64>> = vec![None; shapes.len()];
    let mut mismatched: Vec<bool> = vec![false; shapes.len()];
    for &(shape, status, hash, _, structured) in &samples {
        if !structured {
            failed += 1;
            continue;
        }
        match status {
            200 => {
                served += 1;
                match shape_hash[shape as usize] {
                    None => shape_hash[shape as usize] = Some(hash),
                    Some(h) if h != hash => mismatched[shape as usize] = true,
                    Some(_) => {}
                }
            }
            429 => shed_429 += 1,
            504 => shed_504 += 1,
            _ => other_structured += 1,
        }
    }

    // Sweep-up: the storm is over, the queue is empty — any shape that
    // was shed every single time is fetched once so the checksum covers
    // the full mix.
    for (idx, slot) in shape_hash.iter_mut().enumerate() {
        if slot.is_some() {
            continue;
        }
        let raw = &shapes[idx].2;
        let mut fetched = None;
        for _ in 0..100 {
            match overload_fire(addr, raw) {
                Ok((200, body, _)) => {
                    fetched = Some(fnv1a(FNV_OFFSET, &body));
                    break;
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(2)),
            }
        }
        match fetched {
            Some(h) => *slot = Some(h),
            None => {
                return Err(std::io::Error::other(format!(
                    "shape {idx} unservable even on an idle server"
                )))
            }
        }
    }

    // Drain over the wire, like the healthy profile.
    {
        let mut stream = TcpStream::connect(addr)?;
        stream.write_all(b"POST /v1/shutdown HTTP/1.1\r\ncontent-length: 0\r\n\r\n")?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let _ = read_response(&mut reader);
    }
    handle.wait();
    hpf_trace::disable();

    let mut checksum = FNV_OFFSET;
    for slot in &shape_hash {
        checksum = fnv1a(checksum, &slot.expect("all shapes resolved").to_be_bytes());
    }

    Ok(OverloadReport {
        requests: cfg.requests,
        clients,
        workers,
        seed: cfg.seed,
        wall_s,
        served,
        shed_429,
        shed_504,
        other_structured,
        failed,
        served_p50_ms: merged.quantile(0.50) * 1e3,
        served_p99_ms: merged.quantile(0.99) * 1e3,
        served_p999_ms: merged.quantile(0.999) * 1e3,
        shapes: shapes.len(),
        mismatched_shapes: mismatched.iter().filter(|&&m| m).count(),
        checksum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_warm_heavy() {
        let a: Vec<_> = (0..500).map(|i| request_at(7, i)).collect();
        let b: Vec<_> = (0..500).map(|i| request_at(7, i)).collect();
        assert_eq!(a, b);
        let laplace = a
            .iter()
            .filter(|(_, body)| body.contains("Laplace (Blk-Blk)"))
            .count();
        assert!(laplace >= 400, "warm share too small: {laplace}/500");
        // The whole mix draws from a small body alphabet — that is what
        // makes the steady state warm.
        let distinct: std::collections::BTreeSet<_> =
            a.iter().map(|(p, b)| (*p, b.clone())).collect();
        assert!(distinct.len() <= 16, "{} distinct bodies", distinct.len());
    }

    #[test]
    fn percentile_is_rank_based() {
        let lat = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&lat, 0.50), 2.0);
        assert_eq!(percentile(&lat, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn fnv_checksum_is_order_sensitive() {
        let a = fnv1a(fnv1a(FNV_OFFSET, b"one"), b"two");
        let b = fnv1a(fnv1a(FNV_OFFSET, b"two"), b"one");
        assert_ne!(a, b);
    }
}
