//! Deterministic load generator: a seeded request mix over the kernel
//! suite, fired at an in-process server over real sockets.
//!
//! The mix is a pure function of `(seed, request index)` — ~90% of
//! requests are warm Laplace predicts drawn from a handful of distinct
//! bodies (the steady-state shape a prediction service sees), the rest
//! spread over the other kernels and small sweep curves. Every response
//! body is folded into an FNV-1a checksum *in request-index order*, so
//! two runs with the same seed and request count produce the same
//! checksum no matter how many workers or client threads raced — the
//! drive-by proof of the service's byte-determinism contract.
//!
//! Reported: throughput, latency percentiles (p50/p95/p99/p99.9),
//! status counts, warm-cache hit rate (from the server's own
//! `serve.cache.{hit,miss}` counters via `GET /v1/metrics`), and the
//! body checksum.
//!
//! Percentiles come from a [`QuantileSketch`] per client thread, merged
//! at the end — the same shard-then-merge shape the service itself uses,
//! and (by the sketch's exact-merge guarantee) identical to what one
//! sketch over all samples would report.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use hpf_trace::json::{parse as parse_json, Value};
use hpf_trace::QuantileSketch;

use crate::http::read_response;
use crate::server::{start, ServerConfig};

/// Loadgen knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total requests in the run.
    pub requests: usize,
    /// Client threads. Clamped to `workers` so a parked keep-alive client
    /// can never starve the pool (each client holds one connection, each
    /// connection holds one worker).
    pub clients: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Mix seed.
    pub seed: u64,
}

impl LoadgenConfig {
    /// The `--quick` preset the CI gate and EXPERIMENTS numbers use.
    pub fn quick() -> Self {
        LoadgenConfig {
            requests: 2_000,
            clients: 4,
            workers: 4,
            seed: 0x010A_D6E4,
        }
    }
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 10_000,
            ..LoadgenConfig::quick()
        }
    }
}

/// One finished run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    pub requests: usize,
    pub clients: usize,
    pub workers: usize,
    pub seed: u64,
    pub wall_s: f64,
    pub throughput_rps: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    pub ok: usize,
    pub failed: usize,
    /// `serve.cache.hit / (hit + miss)` over the run.
    pub cache_hit_rate: f64,
    /// FNV-1a over all response bodies in request-index order.
    pub checksum: u64,
}

impl LoadgenReport {
    pub fn render(&self) -> String {
        format!(
            "loadgen: {} requests, {} clients, {} workers, seed {:#x}\n\
             wall          {:.3} s\n\
             throughput    {:.0} req/s\n\
             latency p50   {:.3} ms\n\
             latency p95   {:.3} ms\n\
             latency p99   {:.3} ms\n\
             latency p99.9 {:.3} ms\n\
             ok / failed   {} / {}\n\
             cache hits    {:.1} %\n\
             checksum      {:016x}\n",
            self.requests,
            self.clients,
            self.workers,
            self.seed,
            self.wall_s,
            self.throughput_rps,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.p999_ms,
            self.ok,
            self.failed,
            self.cache_hit_rate * 100.0,
            self.checksum
        )
    }
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The deterministic request at index `i`: `(path, body)`.
pub fn request_at(seed: u64, i: usize) -> (&'static str, String) {
    let r = splitmix64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9)) % 100;
    match r {
        // ~90%: the warm Laplace predict mix — 6 distinct bodies.
        0..=89 => {
            let n = [64usize, 128, 256][(r % 3) as usize];
            let procs = [4usize, 8][(r % 2) as usize];
            (
                "/v1/predict",
                format!(r#"{{"kernel": "Laplace (Blk-Blk)", "n": {n}, "procs": {procs}}}"#),
            )
        }
        // ~5%: predicts over the rest of the suite.
        90..=94 => {
            let kernel = ["PI", "Laplace (Blk-X)", "Laplace (X-Blk)"][(r % 3) as usize];
            (
                "/v1/predict",
                format!(r#"{{"kernel": "{kernel}", "n": 128, "procs": 4}}"#),
            )
        }
        // ~5%: small predicted sweep curves.
        _ => (
            "/v1/sweep",
            format!(
                r#"{{"kernel": "PI", "sizes": {{"min": {}, "max": 128}}, "procs": 4}}"#,
                [32usize, 64][(r % 2) as usize]
            ),
        ),
    }
}

pub(crate) fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() as f64 * q).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

struct ClientResult {
    /// `(request index, latency ms, status, body hash)` per request.
    samples: Vec<(usize, f64, u16, u64)>,
    /// This client's latency shard (seconds), merged with the other
    /// clients' shards for the report percentiles.
    sketch: QuantileSketch,
}

fn client_run(
    addr: std::net::SocketAddr,
    seed: u64,
    requests: usize,
    stride: usize,
    first: usize,
) -> std::io::Result<ClientResult> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let mut samples = Vec::with_capacity(requests / stride + 1);
    let mut sketch = QuantileSketch::new();
    let mut i = first;
    while i < requests {
        let (path, body) = request_at(seed, i);
        let raw = format!(
            "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let t0 = Instant::now();
        stream.write_all(raw.as_bytes())?;
        let (status, _, resp_body) =
            read_response(&mut reader).map_err(|e| std::io::Error::other(e.message))?;
        let secs = t0.elapsed().as_secs_f64();
        sketch.record(secs);
        samples.push((i, secs * 1e3, status, fnv1a(FNV_OFFSET, &resp_body)));
        i += stride;
    }
    Ok(ClientResult { samples, sketch })
}

/// Warm-cache hit rate from the server's own metrics endpoint.
fn fetch_hit_rate(addr: std::net::SocketAddr) -> std::io::Result<f64> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"GET /v1/metrics HTTP/1.1\r\nconnection: close\r\n\r\n")?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let (status, _, body) =
        read_response(&mut reader).map_err(|e| std::io::Error::other(e.message))?;
    if status != 200 {
        return Err(std::io::Error::other(format!("metrics status {status}")));
    }
    let doc = parse_json(std::str::from_utf8(&body).map_err(std::io::Error::other)?)
        .map_err(|e| std::io::Error::other(format!("metrics json: {e}")))?;
    let counter = |name: &str| -> f64 {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    };
    let (hit, miss) = (counter("serve.cache.hit"), counter("serve.cache.miss"));
    Ok(if hit + miss == 0.0 {
        0.0
    } else {
        hit / (hit + miss)
    })
}

/// Run the generator against a fresh in-process server and drain it.
///
/// Tracing is enabled (and the registry reset) for the duration so the
/// hit-rate counters exist; the instrumented pipeline is bit-neutral
/// under tracing, so this perturbs nothing.
pub fn run(cfg: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    let workers = cfg.workers.max(1);
    let clients = cfg.clients.max(1).min(workers);

    hpf_trace::enable();
    hpf_trace::reset();

    let handle = start(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            // Never the bottleneck here: clients <= workers holds every
            // connection on a worker, the queue stays empty.
            queue_depth: workers * 2,
            ..ServerConfig::default()
        },
    )?;
    let addr = handle.addr();

    let t0 = Instant::now();
    let mut joins = Vec::with_capacity(clients);
    for j in 0..clients {
        let seed = cfg.seed;
        let requests = cfg.requests;
        joins.push(std::thread::spawn(move || {
            client_run(addr, seed, requests, clients, j)
        }));
    }
    let mut samples = Vec::with_capacity(cfg.requests);
    let mut merged = QuantileSketch::new();
    for j in joins {
        let result = j
            .join()
            .map_err(|_| std::io::Error::other("client thread panicked"))??;
        samples.extend(result.samples);
        merged.merge(&result.sketch);
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let cache_hit_rate = fetch_hit_rate(addr)?;

    // Shut the server down the way a supervisor would: over the wire.
    {
        let mut stream = TcpStream::connect(addr)?;
        stream.write_all(b"POST /v1/shutdown HTTP/1.1\r\ncontent-length: 0\r\n\r\n")?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let _ = read_response(&mut reader);
    }
    handle.wait();
    hpf_trace::disable();

    // Fold body hashes in request-index order: worker count and arrival
    // order cancel out of the checksum by construction.
    samples.sort_by_key(|&(i, _, _, _)| i);
    let mut checksum = FNV_OFFSET;
    let mut ok = 0;
    let mut failed = 0;
    for &(_, _, status, body_hash) in &samples {
        checksum = fnv1a(checksum, &body_hash.to_be_bytes());
        if status == 200 {
            ok += 1;
        } else {
            failed += 1;
        }
    }

    debug_assert_eq!(merged.count() as usize, samples.len());

    Ok(LoadgenReport {
        requests: cfg.requests,
        clients,
        workers,
        seed: cfg.seed,
        wall_s,
        throughput_rps: cfg.requests as f64 / wall_s.max(1e-9),
        p50_ms: merged.quantile(0.50) * 1e3,
        p95_ms: merged.quantile(0.95) * 1e3,
        p99_ms: merged.quantile(0.99) * 1e3,
        p999_ms: merged.quantile(0.999) * 1e3,
        ok,
        failed,
        cache_hit_rate,
        checksum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_warm_heavy() {
        let a: Vec<_> = (0..500).map(|i| request_at(7, i)).collect();
        let b: Vec<_> = (0..500).map(|i| request_at(7, i)).collect();
        assert_eq!(a, b);
        let laplace = a
            .iter()
            .filter(|(_, body)| body.contains("Laplace (Blk-Blk)"))
            .count();
        assert!(laplace >= 400, "warm share too small: {laplace}/500");
        // The whole mix draws from a small body alphabet — that is what
        // makes the steady state warm.
        let distinct: std::collections::BTreeSet<_> =
            a.iter().map(|(p, b)| (*p, b.clone())).collect();
        assert!(distinct.len() <= 16, "{} distinct bodies", distinct.len());
    }

    #[test]
    fn percentile_is_rank_based() {
        let lat = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&lat, 0.50), 2.0);
        assert_eq!(percentile(&lat, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn fnv_checksum_is_order_sensitive() {
        let a = fnv1a(fnv1a(FNV_OFFSET, b"one"), b"two");
        let b = fnv1a(fnv1a(FNV_OFFSET, b"two"), b"one");
        assert_ne!(a, b);
    }
}
