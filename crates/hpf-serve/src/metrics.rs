//! Streaming metrics for the service: windowed rates plus the cursor
//! ring behind `GET /v1/metrics?since=<cursor>`.
//!
//! ## Why deltas
//!
//! The trace registry's counters and sketches are process-lifetime
//! totals. A scraper that polls totals has to keep its own previous
//! sample and subtract — and gets it wrong across restarts. Instead the
//! service does the subtraction: every `GET /v1/metrics` response carries
//! a `cursor`, and a follow-up `?since=<cursor>` answers with exactly
//! what happened *between the two scrapes* — per-counter deltas and
//! per-endpoint/per-kernel latency-sketch deltas (exact bucket-wise
//! subtraction, see [`hpf_trace::QuantileSketch::delta_since`]). A
//! cursor that has aged out of the ring answers totals with
//! `"reset": true`, the standard "your window is gone, resynchronize"
//! signal.
//!
//! Delta correctness under concurrent writers: each snapshot is a
//! point-read of every counter/sketch, so for any one metric the deltas
//! between consecutive cursors telescope — their sum plus the final
//! `?since=` delta equals the total, no matter how many writers raced
//! the scrapes (the tests pin this down).
//!
//! Everything here is gated on [`hpf_trace::enabled`]: with tracing off
//! the notes are no-ops and the export degrades to empty sections, so
//! the bit-neutrality contract of the pipeline is untouched.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

use hpf_trace::json::Value;
use hpf_trace::QuantileSketch;
use hpf_trace::WindowedRate;

/// Schema tag on the `/v1/metrics` document.
pub const METRICS_SCHEMA: &str = "hpf-serve-metrics/v1";

/// Snapshots kept for `?since=` resolution. At one scrape per second
/// this is half a minute of history; beyond it, `"reset": true`.
const CURSOR_RING_CAP: usize = 32;

/// Rate window: 10 s at 1 s resolution.
const RATE_SLOT_MS: u64 = 1_000;
const RATE_SLOTS: usize = 10;

/// A point-in-time capture of every counter and sketch, labeled by the
/// cursor handed to the client that caused it.
#[derive(Clone)]
struct Snapshot {
    counters: BTreeMap<String, u64>,
    sketches: BTreeMap<String, QuantileSketch>,
}

fn capture() -> Snapshot {
    Snapshot {
        counters: hpf_trace::registry::counters_snapshot()
            .into_iter()
            .collect(),
        sketches: hpf_trace::sketches_snapshot().into_iter().collect(),
    }
}

struct CursorRing {
    next: u64,
    snaps: VecDeque<(u64, Snapshot)>,
}

struct Rates {
    requests: WindowedRate,
    errors: WindowedRate,
    shed: WindowedRate,
    panics: WindowedRate,
    degraded: WindowedRate,
}

impl Rates {
    fn new() -> Rates {
        let mk = || WindowedRate::new(RATE_SLOT_MS, RATE_SLOTS);
        Rates {
            requests: mk(),
            errors: mk(),
            shed: mk(),
            panics: mk(),
            degraded: mk(),
        }
    }
}

/// Per-server streaming-metrics state: the windowed rates and the cursor
/// ring. One instance per [`crate::api::Api`], shared with the server
/// loops for the shed/panic notes.
pub struct ServeMetrics {
    start: Instant,
    rates: Mutex<Rates>,
    cursors: Mutex<CursorRing>,
}

impl std::fmt::Debug for ServeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeMetrics").finish_non_exhaustive()
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    pub fn new() -> ServeMetrics {
        ServeMetrics {
            start: Instant::now(),
            rates: Mutex::new(Rates::new()),
            cursors: Mutex::new(CursorRing {
                next: 1,
                snaps: VecDeque::new(),
            }),
        }
    }

    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn with_rates(&self, f: impl FnOnce(&mut Rates, u64)) {
        if !hpf_trace::enabled() {
            return;
        }
        let t = self.now_ms();
        f(&mut self.rates.lock().unwrap_or_else(|e| e.into_inner()), t);
    }

    /// One request answered with `status` (everything except the metrics
    /// route itself, which never self-counts).
    pub fn note_request(&self, status: u16) {
        self.with_rates(|r, t| {
            r.requests.add(t, 1);
            if status >= 500 {
                r.errors.add(t, 1);
            }
        });
    }

    /// A connection shed at dequeue (queue-wait cap exceeded).
    pub fn note_shed(&self) {
        self.with_rates(|r, t| r.shed.add(t, 1));
    }

    /// A handler panic caught at the worker boundary.
    pub fn note_panic(&self) {
        self.with_rates(|r, t| r.panics.add(t, 1));
    }

    /// A degraded (breaker-open / analytic-only) response served.
    pub fn note_degraded(&self) {
        self.with_rates(|r, t| r.degraded.add(t, 1));
    }

    /// The `"rates"` section: events per second over the live window.
    fn rates_value(&self) -> Value {
        let r = self.rates.lock().unwrap_or_else(|e| e.into_inner());
        let t = self.now_ms();
        Value::obj(vec![
            ("window_s", Value::Num(r.requests.window_s())),
            ("requests_per_s", Value::Num(r.requests.rate_per_s(t))),
            ("errors_per_s", Value::Num(r.errors.rate_per_s(t))),
            ("shed_per_s", Value::Num(r.shed.rate_per_s(t))),
            ("panics_per_s", Value::Num(r.panics.rate_per_s(t))),
            ("degraded_per_s", Value::Num(r.degraded.rate_per_s(t))),
        ])
    }

    /// Store `snap` in the ring under a fresh cursor and return that
    /// cursor. The stored snapshot must be the very capture the response
    /// document was built from — capturing again here would let writes
    /// that land between the two captures vanish from the delta chain.
    fn issue_cursor(&self, snap: &Snapshot) -> u64 {
        let mut ring = self.cursors.lock().unwrap_or_else(|e| e.into_inner());
        let cursor = ring.next;
        ring.next += 1;
        ring.snaps.push_back((cursor, snap.clone()));
        while ring.snaps.len() > CURSOR_RING_CAP {
            ring.snaps.pop_front();
        }
        cursor
    }

    /// The full `/v1/metrics` document: totals for every counter and
    /// sketch, the windowed rates, and the embedded `hpf-trace/v1`
    /// export — plus a fresh `cursor` for the next `?since=` scrape.
    pub fn export_full(&self) -> Value {
        let snap = capture();
        let cursor = self.issue_cursor(&snap);
        let trace = hpf_trace::json::parse(&hpf_trace::export_json()).unwrap_or(Value::Null);
        Value::obj(vec![
            ("schema", Value::Str(METRICS_SCHEMA.into())),
            ("cursor", Value::Num(cursor as f64)),
            ("uptime_s", Value::Num(self.start.elapsed().as_secs_f64())),
            ("rates", self.rates_value()),
            ("counters", counters_value(&snap.counters)),
            ("sketches", sketches_value(&snap.sketches)),
            ("trace", trace),
        ])
    }

    /// The `?since=<cursor>` document: per-counter and per-sketch deltas
    /// against the snapshot stored under `since`, plus a fresh `cursor`.
    /// An unknown (aged-out or never-issued) cursor answers totals with
    /// `"reset": true`.
    pub fn export_delta(&self, since: u64) -> Value {
        let earlier = {
            let ring = self.cursors.lock().unwrap_or_else(|e| e.into_inner());
            ring.snaps
                .iter()
                .find(|(c, _)| *c == since)
                .map(|(_, snap)| snap.clone())
        };
        let now = capture();
        let cursor = self.issue_cursor(&now);
        let reset = earlier.is_none();
        let empty = Snapshot {
            counters: BTreeMap::new(),
            sketches: BTreeMap::new(),
        };
        let base = earlier.as_ref().unwrap_or(&empty);

        let counters: BTreeMap<String, u64> = now
            .counters
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    v - base.counters.get(k).copied().unwrap_or(0).min(*v),
                )
            })
            .collect();
        let sketches: BTreeMap<String, QuantileSketch> = now
            .sketches
            .iter()
            .map(|(k, s)| {
                let d = match base.sketches.get(k) {
                    Some(b) => s.delta_since(b),
                    None => s.clone(),
                };
                (k.clone(), d)
            })
            .collect();

        let mut top: Vec<(&str, Value)> = vec![
            ("schema", Value::Str(METRICS_SCHEMA.into())),
            ("cursor", Value::Num(cursor as f64)),
            ("since", Value::Num(since as f64)),
            ("rates", self.rates_value()),
            ("counters", counters_value(&counters)),
            ("sketches", sketches_value(&sketches)),
        ];
        if reset {
            top.push(("reset", Value::Bool(true)));
        }
        Value::obj(top)
    }
}

fn counters_value(counters: &BTreeMap<String, u64>) -> Value {
    Value::Obj(
        counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
            .collect(),
    )
}

fn sketches_value(sketches: &BTreeMap<String, QuantileSketch>) -> Value {
    Value::Obj(
        sketches
            .iter()
            .map(|(k, s)| (k.clone(), s.to_value()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock::TRACE_LOCK;

    fn counter_in(doc: &Value, name: &str) -> u64 {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_f64)
            .unwrap_or(0.0) as u64
    }

    fn cursor_of(doc: &Value) -> u64 {
        doc.get("cursor").and_then(Value::as_f64).unwrap() as u64
    }

    #[test]
    fn deltas_telescope_for_counters_and_sketches() {
        let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        hpf_trace::reset();
        hpf_trace::enable();
        let m = ServeMetrics::new();

        hpf_trace::counter_add("tm.requests", 10);
        hpf_trace::sketch_record("tm.lat", 1e-3);
        let a = m.export_full();
        hpf_trace::counter_add("tm.requests", 5);
        hpf_trace::sketch_record("tm.lat", 2e-3);
        hpf_trace::sketch_record("tm.lat", 3e-3);
        let b = m.export_delta(cursor_of(&a));
        hpf_trace::counter_add("tm.requests", 7);
        let c = m.export_delta(cursor_of(&b));
        hpf_trace::disable();

        assert_eq!(counter_in(&a, "tm.requests"), 10);
        assert_eq!(counter_in(&b, "tm.requests"), 5);
        assert_eq!(counter_in(&c, "tm.requests"), 7);
        assert!(b.get("reset").is_none());

        let sketch_count = |doc: &Value| {
            doc.get("sketches")
                .and_then(|s| s.get("tm.lat"))
                .and_then(|s| s.get("count"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0) as u64
        };
        assert_eq!(sketch_count(&a), 1);
        assert_eq!(sketch_count(&b), 2);
        assert_eq!(sketch_count(&c), 0);
    }

    #[test]
    fn unknown_cursor_answers_totals_with_reset() {
        let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        hpf_trace::reset();
        hpf_trace::enable();
        let m = ServeMetrics::new();
        hpf_trace::counter_add("tm.reset_case", 4);
        let doc = m.export_delta(999_999);
        hpf_trace::disable();
        assert_eq!(doc.get("reset"), Some(&Value::Bool(true)));
        assert_eq!(counter_in(&doc, "tm.reset_case"), 4);
    }

    #[test]
    fn aged_out_cursor_is_reset_too() {
        let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        hpf_trace::reset();
        hpf_trace::enable();
        let m = ServeMetrics::new();
        let first = m.export_full();
        for _ in 0..(CURSOR_RING_CAP + 4) {
            let _ = m.export_full();
        }
        let doc = m.export_delta(cursor_of(&first));
        hpf_trace::disable();
        assert_eq!(doc.get("reset"), Some(&Value::Bool(true)));
    }

    #[test]
    fn deltas_hold_under_concurrent_writers() {
        let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        hpf_trace::reset();
        hpf_trace::enable();
        let m = ServeMetrics::new();

        const THREADS: usize = 4;
        const PER_THREAD: u64 = 5_000;
        let mut cursor = cursor_of(&m.export_full());
        let mut summed = 0u64;
        let mut sketch_summed = 0u64;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for i in 0..PER_THREAD {
                        hpf_trace::counter_add("tm.conc", 1);
                        hpf_trace::sketch_record("tm.conc_lat", 1e-6 * (1 + i % 50) as f64);
                    }
                });
            }
            // Scrape deltas while the writers race.
            for _ in 0..20 {
                let d = m.export_delta(cursor);
                cursor = cursor_of(&d);
                summed += counter_in(&d, "tm.conc");
                sketch_summed += d
                    .get("sketches")
                    .and_then(|s| s.get("tm.conc_lat"))
                    .and_then(|s| s.get("count"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0) as u64;
                std::thread::yield_now();
            }
        });
        // One final delta collects whatever the last mid-race scrape missed.
        let tail = m.export_delta(cursor);
        summed += counter_in(&tail, "tm.conc");
        sketch_summed += tail
            .get("sketches")
            .and_then(|s| s.get("tm.conc_lat"))
            .and_then(|s| s.get("count"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0) as u64;
        hpf_trace::disable();

        let want = (THREADS as u64) * PER_THREAD;
        assert_eq!(summed, want, "counter deltas must telescope exactly");
        assert_eq!(sketch_summed, want, "sketch deltas must telescope exactly");
    }

    #[test]
    fn disabled_tracing_keeps_rates_silent() {
        let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        hpf_trace::disable();
        hpf_trace::reset();
        let m = ServeMetrics::new();
        m.note_request(200);
        m.note_shed();
        m.note_panic();
        let doc = m.export_full();
        let rate = doc
            .get("rates")
            .and_then(|r| r.get("requests_per_s"))
            .and_then(Value::as_f64)
            .unwrap();
        assert_eq!(rate, 0.0);
    }
}
