//! The concurrent server: acceptor + supervised worker pool over a
//! bounded connection queue.
//!
//! Concurrency model, simplest-thing-that-is-correct:
//!
//! * one **acceptor** thread owns the listening socket. Accepted
//!   connections go into a bounded queue (timestamped at enqueue); when
//!   the queue is full the acceptor answers `429 Too Many Requests` with
//!   a `Retry-After` header and closes — explicit backpressure instead
//!   of an unbounded backlog;
//! * a **fixed pool** of worker threads pops connections and serves them
//!   keep-alive until the peer closes, a read times out, or shutdown
//!   begins. Handlers are pure ([`crate::api`]), so any worker can serve
//!   any request and the response bytes do not depend on which one did;
//! * **panic isolation**: each request dispatch runs under
//!   `catch_unwind`, so a panicking handler answers a structured 500
//!   (with a panic-payload excerpt) and the pool keeps its capacity —
//!   the connection is closed, the worker survives;
//! * a **supervisor** thread watches for the panics that escape the
//!   wrapper anyway (a worker thread dying): each death is counted,
//!   surfaced in `/v1/healthz`, and answered with a respawned worker so
//!   the pool never silently shrinks;
//! * **deadline-aware shedding**: a connection that out-waits the
//!   queue-wait cap is answered with a structured 504 at dequeue instead
//!   of burning a worker on work its client has given up on;
//! * **graceful shutdown** is a `POST /v1/shutdown` (std has no signal
//!   API, so the SIGTERM role is played by an endpoint the supervisor —
//!   or CI — posts to): the acceptor stops accepting, idle workers wake
//!   and exit, busy workers finish the request in flight and close the
//!   connection after answering, and [`ServerHandle::wait`] joins them
//!   all (respawned workers included, via the supervisor) before
//!   returning.
//!
//! Trace counters (when tracing is enabled): `serve.conn.accepted`,
//! `serve.conn.rejected`, `serve.conn.served`, `serve.worker_panic`,
//! `serve.worker_death`, `serve.worker_respawn`, `serve.queue.shed`,
//! plus the request/cache/breaker counters the API layer and
//! [`crate::cache`] maintain.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hpf_trace::json::Value;

use crate::api::{Api, CHAOS_HEADER, SCHEMA};
use crate::cache::CacheConfig;
use crate::http;
use crate::status::ServiceStatus;

const JSON: &str = "application/json";

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Connections that may wait for a worker before new ones get 429.
    pub queue_depth: usize,
    /// Keep-alive read timeout: an idle connection is closed after this
    /// long with no next request.
    pub read_timeout_ms: u64,
    /// `Retry-After` seconds advertised on 429.
    pub retry_after_s: u32,
    /// Longest a connection may wait in the accept queue before it is
    /// shed with a structured 504 at dequeue instead of served late.
    pub queue_wait_cap_ms: u64,
    /// Honor the test-only `x-chaos-panic` fault-injection header
    /// ([`crate::api::CHAOS_HEADER`]). Never enable outside the chaos
    /// harness and its tests.
    pub chaos: bool,
    pub cache: CacheConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: default_workers(),
            queue_depth: 64,
            read_timeout_ms: 5_000,
            retry_after_s: 1,
            queue_wait_cap_ms: 2_000,
            chaos: false,
            cache: CacheConfig::default(),
        }
    }
}

/// The default pool size: one worker per available hardware thread,
/// clamped to [2, 64] — at least two so a single stalled connection
/// never serializes the whole service, at most 64 because beyond that
/// the bounded queue, not the pool, is the right lever.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 64)
}

/// A connection parked in the accept queue, timestamped so dequeue can
/// shed it if it has already out-waited the cap.
struct QueuedConn {
    stream: TcpStream,
    enqueued: Instant,
}

struct Shared {
    api: Api,
    cfg: ServerConfig,
    queue: Mutex<VecDeque<QueuedConn>>,
    ready: Condvar,
    shutdown: AtomicBool,
    status: Arc<ServiceStatus>,
    /// Supervisor wakeup: notified by a dying worker's drop guard.
    supervisor_gate: Mutex<()>,
    supervisor_wake: Condvar,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake idle workers and the supervisor so they can observe the
        // flag and exit.
        self.ready.notify_all();
        self.supervisor_wake.notify_all();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running server: its bound address plus the thread handles needed to
/// stop it and drain it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Trigger shutdown from in-process (equivalent to `POST
    /// /v1/shutdown`): stop accepting, let in-flight work finish.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Block until every server thread has exited. Returns cleanly only
    /// after in-flight connections have been answered and closed.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Bind `addr` and start the acceptor + supervised worker pool.
pub fn start(addr: &str, cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let status = Arc::new(ServiceStatus::default());
    let workers = cfg.workers.max(1);
    // Cache lock shards default to the worker count (rounded up to a
    // power of two inside the cache): enough shards that workers rarely
    // collide, no more than could ever contend.
    let cache = CacheConfig {
        shards: if cfg.cache.shards == 0 {
            workers
        } else {
            cfg.cache.shards
        },
        ..cfg.cache.clone()
    };
    let shared = Arc::new(Shared {
        api: Api::with_runtime(&cache, status.clone(), cfg.chaos),
        cfg: ServerConfig {
            workers,
            queue_depth: cfg.queue_depth.max(1),
            cache,
            ..cfg
        },
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
        status,
        supervisor_gate: Mutex::new(()),
        supervisor_wake: Condvar::new(),
    });
    shared
        .status
        .add(&shared.status.workers_configured, shared.cfg.workers);

    let mut threads = Vec::with_capacity(shared.cfg.workers + 2);
    for _ in 0..shared.cfg.workers {
        let s = shared.clone();
        threads.push(std::thread::spawn(move || worker_entry(&s)));
    }
    {
        let s = shared.clone();
        threads.push(std::thread::spawn(move || supervisor_loop(&s)));
    }
    {
        let s = shared.clone();
        threads.push(std::thread::spawn(move || acceptor_loop(&s, listener)));
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

/// Worker thread body: liveness accounting plus the death guard that
/// turns an escaped panic into a supervisor wakeup instead of a silent
/// pool shrink.
fn worker_entry(shared: &Arc<Shared>) {
    struct DeathGuard {
        shared: Arc<Shared>,
    }
    impl Drop for DeathGuard {
        fn drop(&mut self) {
            let status = &self.shared.status;
            status.sub(&status.workers_live, 1);
            if std::thread::panicking() {
                status.add(&status.worker_deaths, 1);
                hpf_trace::counter_add("serve.worker_death", 1);
                self.shared.supervisor_wake.notify_all();
            }
        }
    }

    shared.status.add(&shared.status.workers_live, 1);
    let _guard = DeathGuard {
        shared: shared.clone(),
    };
    worker_loop(shared);
}

/// Respawn workers that died to escaped panics. Runs until shutdown,
/// then joins every worker it spawned so [`ServerHandle::wait`] (which
/// joins this thread) transitively drains them too.
fn supervisor_loop(shared: &Arc<Shared>) {
    let mut respawned: Vec<JoinHandle<()>> = Vec::new();
    loop {
        {
            let mut gate = lock(&shared.supervisor_gate);
            loop {
                if shared.shutting_down() {
                    drop(gate);
                    for t in respawned {
                        let _ = t.join();
                    }
                    return;
                }
                let status = &shared.status;
                if status.get(&status.worker_deaths) > status.get(&status.worker_respawns) {
                    break;
                }
                // Timed wait as a missed-notify backstop: the guard's
                // notify can race this loop's predicate check.
                let (g, _) = shared
                    .supervisor_wake
                    .wait_timeout(gate, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                gate = g;
            }
        }
        shared.status.add(&shared.status.worker_respawns, 1);
        hpf_trace::counter_add("serve.worker_respawn", 1);
        let s = shared.clone();
        respawned.push(std::thread::spawn(move || worker_entry(&s)));
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn acceptor_loop(shared: &Shared, listener: TcpListener) {
    // Non-blocking accept polled on a short tick, so shutdown is observed
    // promptly without platform signal machinery.
    let _ = listener.set_nonblocking(true);
    loop {
        if shared.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(false);
                let mut q = lock(&shared.queue);
                if q.len() >= shared.cfg.queue_depth {
                    drop(q);
                    hpf_trace::counter_add("serve.conn.rejected", 1);
                    reject_overloaded(shared, stream);
                } else {
                    hpf_trace::counter_add("serve.conn.accepted", 1);
                    q.push_back(QueuedConn {
                        stream,
                        enqueued: Instant::now(),
                    });
                    shared.status.add(&shared.status.queue_len, 1);
                    drop(q);
                    shared.ready.notify_one();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// The backpressure answer: 429 + `Retry-After`, then close.
fn reject_overloaded(shared: &Shared, mut stream: TcpStream) {
    let body = Value::obj(vec![
        ("schema", Value::Str(SCHEMA.into())),
        (
            "error",
            Value::obj(vec![
                ("kind", Value::Str("overloaded".into())),
                (
                    "message",
                    Value::Str("request queue is full; retry shortly".into()),
                ),
            ]),
        ),
    ])
    .pretty();
    let _ = stream.write_all(&http::response_bytes(
        429,
        JSON,
        body.as_bytes(),
        false,
        Some(shared.cfg.retry_after_s),
    ));
}

/// The structured 500 a caught handler panic is answered with.
fn panic_response(payload: Box<dyn std::any::Any + Send>) -> crate::api::ApiResponse {
    let excerpt = crate::breaker::panic_excerpt(payload);
    let body = Value::obj(vec![
        ("schema", Value::Str(SCHEMA.into())),
        (
            "error",
            Value::obj(vec![
                ("kind", Value::Str("panic".into())),
                (
                    "message",
                    Value::Str(format!("handler panicked: {excerpt}")),
                ),
            ]),
        ),
    ])
    .pretty();
    crate::api::ApiResponse {
        status: 500,
        body: Arc::new(body.into_bytes()),
        cacheable: false,
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(c) = q.pop_front() {
                    break Some(c);
                }
                if shared.shutting_down() {
                    break None;
                }
                q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        match conn {
            Some(QueuedConn { stream, enqueued }) => {
                shared.status.sub(&shared.status.queue_len, 1);
                // Deadline-aware admission: a connection that out-waited
                // the queue cap is dead work — its client has timed out
                // or will. Shed it with a structured 504 instead of
                // burning this worker on a late answer.
                if enqueued.elapsed() > Duration::from_millis(shared.cfg.queue_wait_cap_ms) {
                    hpf_trace::counter_add("serve.queue.shed", 1);
                    shared.api.serve_metrics().note_shed();
                    shared.status.add(&shared.status.shed, 1);
                    shed_expired(shared, stream);
                    continue;
                }
                hpf_trace::counter_add("serve.conn.served", 1);
                serve_connection(shared, stream);
            }
            None => return,
        }
    }
}

/// The shedding answer: 504 + `Retry-After`, then close — without ever
/// reading the request (the connection is being dropped unserved).
fn shed_expired(shared: &Shared, mut stream: TcpStream) {
    let body = Value::obj(vec![
        ("schema", Value::Str(SCHEMA.into())),
        (
            "error",
            Value::obj(vec![
                ("kind", Value::Str("shed".into())),
                (
                    "message",
                    Value::Str(
                        "connection out-waited the queue-wait cap; shed before service".into(),
                    ),
                ),
            ]),
        ),
    ])
    .pretty();
    let _ = stream.write_all(&http::response_bytes(
        504,
        JSON,
        body.as_bytes(),
        false,
        Some(shared.cfg.retry_after_s),
    ));
}

fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.cfg.read_timeout_ms.max(1),
    )));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::with_capacity(32 << 10, read_half);
    // Responses go through a write buffer that is flushed only when the
    // read buffer holds no further pipelined request: a client that
    // writes a batch of requests in one burst gets its batch of
    // responses in one burst (one syscall each way), while a one-request
    // connection is flushed immediately. This is where the bulk of the
    // per-request syscall cost goes away — the warm in-process path is
    // microseconds, so write()+read() per request used to dominate. The
    // buffer is sized so a pipelined burst of ~2.5 KB bodies coalesces
    // into few write() calls.
    let mut writer = BufWriter::with_capacity(128 << 10, stream);
    loop {
        match http::read_request(&mut reader) {
            // Peer closed between requests: normal end of a keep-alive
            // connection.
            Ok(None) => return,
            // Protocol violation or read timeout. Answer the 4xx (a
            // timed-out peer ignores it; a broken client learns why) and
            // close either way.
            Err(e) => {
                let body = Value::obj(vec![
                    ("schema", Value::Str(SCHEMA.into())),
                    (
                        "error",
                        Value::obj(vec![
                            ("kind", Value::Str("http".into())),
                            ("message", Value::Str(e.message.clone())),
                        ]),
                    ),
                ])
                .pretty();
                let _ = writer.write_all(&http::response_bytes(
                    e.status,
                    JSON,
                    body.as_bytes(),
                    false,
                    None,
                ));
                let _ = writer.flush();
                return;
            }
            Ok(Some(req)) => {
                if req.method == "POST" && req.path == "/v1/shutdown" {
                    shared.begin_shutdown();
                    let body = Value::obj(vec![
                        ("schema", Value::Str(SCHEMA.into())),
                        ("status", Value::Str("draining".into())),
                    ])
                    .pretty();
                    let _ = writer.write_all(&http::response_bytes(
                        200,
                        JSON,
                        body.as_bytes(),
                        false,
                        None,
                    ));
                    let _ = writer.flush();
                    return;
                }
                // Chaos-only: a `fatal` injection panics *outside* the
                // isolation wrapper, killing this worker thread — the
                // supervisor's respawn path is the thing under test.
                if shared.cfg.chaos && req.header(CHAOS_HEADER) == Some("fatal") {
                    panic!("chaos: injected fatal worker panic");
                }
                // Panic isolation: a panicking handler answers a
                // structured 500 and the worker keeps its place in the
                // pool. The connection is closed — its request/response
                // rhythm is intact, but a handler that panicked halfway
                // earns no further trust.
                let (resp, panicked) =
                    match catch_unwind(AssertUnwindSafe(|| shared.api.handle(&req))) {
                        Ok(resp) => (resp, false),
                        Err(payload) => {
                            hpf_trace::counter_add("serve.worker_panic", 1);
                            shared.api.serve_metrics().note_panic();
                            shared.status.add(&shared.status.worker_panics, 1);
                            (panic_response(payload), true)
                        }
                    };
                // Once draining, answer the request in flight but refuse
                // to keep the connection open for more.
                let keep = !req.wants_close() && !shared.shutting_down() && !panicked;
                if http::write_response(&mut writer, resp.status, JSON, &resp.body, keep, None)
                    .is_err()
                {
                    return;
                }
                if !keep {
                    let _ = writer.flush();
                    return;
                }
                // Flush only when no further request is already buffered:
                // the client is (or will be) blocked waiting on us.
                if reader.buffer().is_empty() && writer.flush().is_err() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::read_response;
    use std::io::BufRead;

    // Trace counters are process-global; tests that read them serialize.
    use crate::testlock::TRACE_LOCK;

    fn send(stream: &mut TcpStream, method: &str, path: &str, body: &str) -> std::io::Result<()> {
        let req = format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(req.as_bytes())
    }

    fn roundtrip(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Vec<u8>) {
        let mut stream = TcpStream::connect(addr).unwrap();
        send(&mut stream, method, path, body).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, _, body) = read_response(&mut reader).unwrap();
        (status, body)
    }

    #[test]
    fn healthz_and_predict_over_a_real_socket() {
        let handle = start("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = handle.addr();

        let (status, body) = roundtrip(addr, "GET", "/v1/healthz", "");
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));

        let (status, body) = roundtrip(
            addr,
            "POST",
            "/v1/predict",
            r#"{"kernel": "PI", "n": 128, "procs": 4}"#,
        );
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        assert!(String::from_utf8_lossy(&body).contains("predicted_s"));

        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let handle = start("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut bodies = Vec::new();
        for _ in 0..3 {
            send(
                &mut stream,
                "POST",
                "/v1/predict",
                r#"{"kernel": "PI", "n": 64, "procs": 4}"#,
            )
            .unwrap();
            let (status, _, body) = read_response(&mut reader).unwrap();
            assert_eq!(status, 200);
            bodies.push(body);
        }
        assert_eq!(bodies[0], bodies[1]);
        assert_eq!(bodies[1], bodies[2]);
        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn full_queue_answers_429_with_retry_after() {
        let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        hpf_trace::enable();
        let base_served = hpf_trace::counter_get("serve.conn.served");
        let base_accepted = hpf_trace::counter_get("serve.conn.accepted");

        let handle = start(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                queue_depth: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr();

        // Occupy the single worker with an idle keep-alive connection.
        let held = TcpStream::connect(addr).unwrap();
        wait_for(|| hpf_trace::counter_get("serve.conn.served") > base_served);
        // Fill the one queue slot with a second idle connection.
        let parked = TcpStream::connect(addr).unwrap();
        wait_for(|| hpf_trace::counter_get("serve.conn.accepted") >= base_accepted + 2);

        // The third connection must be rejected with backpressure.
        let mut stream = TcpStream::connect(addr).unwrap();
        send(&mut stream, "GET", "/v1/healthz", "").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, headers, body) = read_response(&mut reader).unwrap();
        assert_eq!(status, 429, "{}", String::from_utf8_lossy(&body));
        assert!(
            headers
                .iter()
                .any(|(k, v)| k == "retry-after" && !v.is_empty()),
            "{headers:?}"
        );

        drop(held);
        drop(parked);
        hpf_trace::disable();
        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn shutdown_endpoint_drains_and_joins() {
        let handle = start("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = handle.addr();
        let (status, body) = roundtrip(addr, "POST", "/v1/shutdown", "");
        assert_eq!(status, 200);
        assert!(String::from_utf8_lossy(&body).contains("draining"));
        handle.wait();
        // The listener is gone: a fresh connect may be refused outright or
        // accepted by the OS backlog and then closed without a response.
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = send(&mut s, "GET", "/v1/healthz", "");
            let mut line = String::new();
            let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
            let n = BufReader::new(s).read_line(&mut line).unwrap_or(0);
            assert_eq!(n, 0, "server answered after shutdown: {line:?}");
        }
    }

    #[test]
    fn malformed_http_is_answered_and_closed() {
        let handle = start("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(b"GARBAGE\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, _, _) = read_response(&mut reader).unwrap();
        assert_eq!(status, 400);
        handle.shutdown();
        handle.wait();
    }

    fn wait_for(mut cond: impl FnMut() -> bool) {
        for _ in 0..500 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("condition not reached within 1s");
    }
}
