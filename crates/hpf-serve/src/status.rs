//! Shared liveness state surfaced by `/v1/healthz`.
//!
//! The server side (acceptor, workers, supervisor) updates these atomics
//! as connections queue and workers live, panic, die and respawn; the API
//! side reads them when answering a health probe. One instance per
//! server, shared between [`crate::server`] and [`crate::api`] behind an
//! `Arc` — an `Api` constructed without a server (tests, bench) carries a
//! detached all-zero instance.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Live counters for one server instance. All loads/stores are
/// `SeqCst`: health reporting is far off the hot path.
#[derive(Debug, Default)]
pub struct ServiceStatus {
    /// Worker threads the server was configured with.
    pub workers_configured: AtomicUsize,
    /// Worker threads currently alive (dips below `workers_configured`
    /// only in the window between a worker death and its respawn).
    pub workers_live: AtomicUsize,
    /// Connections currently parked in the accept queue.
    pub queue_len: AtomicUsize,
    /// Handler panics caught by the per-request `catch_unwind` (the
    /// worker survived and answered a structured 500).
    pub worker_panics: AtomicUsize,
    /// Panics that escaped the request wrapper and killed a worker
    /// thread (each one triggers a supervisor respawn).
    pub worker_deaths: AtomicUsize,
    /// Workers respawned by the supervisor after a death.
    pub worker_respawns: AtomicUsize,
    /// Connections shed at dequeue because they out-waited the
    /// queue-wait cap (answered a structured 504 without service).
    pub shed: AtomicUsize,
}

impl ServiceStatus {
    pub fn get(&self, field: &AtomicUsize) -> usize {
        field.load(Ordering::SeqCst)
    }

    pub fn add(&self, field: &AtomicUsize, delta: usize) {
        field.fetch_add(delta, Ordering::SeqCst);
    }

    pub fn sub(&self, field: &AtomicUsize, delta: usize) {
        field.fetch_sub(delta, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_move() {
        let s = ServiceStatus::default();
        assert_eq!(s.get(&s.workers_live), 0);
        s.add(&s.workers_live, 2);
        s.sub(&s.workers_live, 1);
        assert_eq!(s.get(&s.workers_live), 1);
        s.add(&s.worker_panics, 1);
        assert_eq!(s.get(&s.worker_panics), 1);
    }
}
