//! End-to-end determinism and concurrency tests for the prediction
//! service.
//!
//! The contract under test: for a fixed request set, the response bodies
//! are bit-identical whatever the concurrency — one thread or many, one
//! worker or many, arrival order shuffled by scheduling. The loadgen's
//! order-independent checksum plus direct body comparison enforce it
//! from two angles.

use std::sync::{Arc, Mutex};

use hpf_serve::api::Api;
use hpf_serve::cache::CacheConfig;
use hpf_serve::http::Request;
use hpf_serve::loadgen::{self, request_at, LoadgenConfig};

/// The loadgen (and anything reading trace counters) flips process-global
/// trace state; such tests serialize here.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn post(path: &str, body: &str) -> Request {
    Request {
        method: "POST".into(),
        path: path.into(),
        query: String::new(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    }
}

/// A deterministic request set drawn from the loadgen mix plus inline
/// sources, so both the kernel and the POSTed-source cache paths are
/// hammered.
fn request_set(count: usize) -> Vec<(String, String)> {
    const INLINE: &str = "
PROGRAM PI
INTEGER, PARAMETER :: N = 128
REAL F(N), PIE
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE F(BLOCK) ONTO P
FORALL (I = 1:N) F(I) = 4.0 / (1.0 + ((I - 0.5) * (1.0 / N)) ** 2)
PIE = SUM(F) / N
END
";
    (0..count)
        .map(|i| {
            if i % 11 == 3 {
                let body = hpf_trace::json::Value::obj(vec![
                    ("source", hpf_trace::json::Value::Str(INLINE.to_string())),
                    ("procs", hpf_trace::json::Value::Num(4.0)),
                ])
                .pretty();
                ("/v1/predict".to_string(), body)
            } else {
                let (path, body) = request_at(0xE2E, i);
                (path.to_string(), body)
            }
        })
        .collect()
}

/// Satellite: N threads hammering one shared `Api` (shared sessions,
/// shared caches) must produce responses bit-identical to a sequential
/// pass over the same request set on a fresh `Api`.
#[test]
fn concurrent_session_reuse_matches_sequential() {
    // This test never reads counters, but its traffic would pollute the
    // counter assertions of any test whose tracing window it overlaps.
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let requests = request_set(176);

    // Sequential reference on its own cache stack.
    let sequential = Api::new(&CacheConfig::default());
    let expected: Vec<(u16, Arc<Vec<u8>>)> = requests
        .iter()
        .map(|(path, body)| {
            let resp = sequential.handle(&post(path, body));
            (resp.status, resp.body)
        })
        .collect();

    // 8 threads over one shared Api, interleaved assignment so every
    // thread touches every distinct request shape and races the others
    // on the same cache entries.
    let shared = Arc::new(Api::new(&CacheConfig::default()));
    let requests = Arc::new(requests);
    let threads = 8;
    let mut joins = Vec::new();
    for t in 0..threads {
        let shared = shared.clone();
        let requests = requests.clone();
        joins.push(std::thread::spawn(move || {
            let mut got = Vec::new();
            for i in (t..requests.len()).step_by(threads) {
                let (path, body) = &requests[i];
                let resp = shared.handle(&post(path, body));
                got.push((i, resp.status, resp.body));
            }
            got
        }));
    }
    let mut concurrent: Vec<(usize, u16, Arc<Vec<u8>>)> = Vec::new();
    for j in joins {
        concurrent.extend(j.join().expect("worker thread panicked"));
    }
    concurrent.sort_by_key(|&(i, _, _)| i);

    assert_eq!(concurrent.len(), expected.len());
    for (i, status, body) in concurrent {
        assert_eq!(status, expected[i].0, "status diverged at request {i}");
        assert_eq!(
            body, expected[i].1,
            "body diverged at request {i}: concurrent run is not bit-identical"
        );
    }
}

/// Tentpole: K identical concurrent cold requests coalesce into exactly
/// one pipeline execution. One caller wins the single-flight table and
/// computes; the duplicates either park on the flight (the common case,
/// asserted via `serve.singleflight.parked`) or arrive after publication
/// and hit the body cache — never a second execution. All K bodies are
/// byte-identical.
#[test]
fn identical_cold_requests_coalesce_to_one_execution() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    hpf_trace::enable();
    hpf_trace::reset();

    let api = Arc::new(Api::new(&CacheConfig {
        shards: 8,
        ..CacheConfig::default()
    }));
    // A cold advise over a source program no other test submits: the
    // process-wide profile memo has never seen it, so the leader's
    // compute is genuinely multi-millisecond — wide enough for the
    // duplicate threads to be scheduled into the parked state even on a
    // single-CPU runner. (A suite kernel here would be warm in-process
    // whenever another test ran first, collapsing the window.)
    const COALESCE_SRC: &str = "
PROGRAM COALESCE
INTEGER, PARAMETER :: N = 96
REAL F(N), PIE
!HPF$ PROCESSORS P(8)
!HPF$ DISTRIBUTE F(BLOCK) ONTO P
FORALL (I = 1:N) F(I) = 4.0 / (1.0 + ((I - 0.5) * (1.0 / N)) ** 2)
PIE = SUM(F) / N
END
";
    let body = hpf_trace::json::Value::obj(vec![
        ("source", hpf_trace::json::Value::Str(COALESCE_SRC.into())),
        ("procs", hpf_trace::json::Value::Num(8.0)),
        ("top_k", hpf_trace::json::Value::Num(4.0)),
    ])
    .pretty();
    let body: &'static str = Box::leak(body.into_boxed_str());
    let k = 8;
    let barrier = Arc::new(std::sync::Barrier::new(k));
    let mut joins = Vec::new();
    for _ in 0..k {
        let api = api.clone();
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || {
            barrier.wait();
            let resp = api.handle(&post("/v1/advise", body));
            (resp.status, resp.body)
        }));
    }
    let results: Vec<(u16, Arc<Vec<u8>>)> = joins
        .into_iter()
        .map(|j| j.join().expect("advise thread panicked"))
        .collect();

    let leaders = hpf_trace::counter_get("serve.singleflight.leader");
    let parked = hpf_trace::counter_get("serve.singleflight.parked");
    let hits = hpf_trace::counter_get("serve.cache.hit");
    hpf_trace::disable();

    for (status, resp_body) in &results {
        assert_eq!(
            *status,
            200,
            "advise failed: {}",
            String::from_utf8_lossy(resp_body)
        );
        assert_eq!(
            *resp_body, results[0].1,
            "coalesced callers received different bodies"
        );
    }
    assert_eq!(
        leaders, 1,
        "expected exactly one pipeline execution, saw {leaders} leaders"
    );
    // Whether the duplicates parked on the flight or arrived after
    // publication (a single-CPU runner often lets the leader finish
    // inside one timeslice) is scheduling; the invariant is that every
    // caller was the leader, parked, or a cache hit — never a second
    // execution. Deterministic parking itself is pinned by the
    // single-flight unit tests.
    assert_eq!(
        leaders + parked + hits,
        k as u64,
        "every caller must be the leader, parked, or a late cache hit \
         (leader={leaders} parked={parked} hits={hits})"
    );
}

/// Acceptance: two loadgen runs with different `--workers` values answer
/// the same request set with byte-identical bodies (equal order-folded
/// checksums) and no failures.
#[test]
fn worker_count_does_not_change_response_bytes() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let base = LoadgenConfig {
        requests: 300,
        clients: 4,
        workers: 1,
        seed: 0xD00D,
        ..LoadgenConfig::default()
    };
    let one = loadgen::run(&base).expect("loadgen workers=1");
    let four = loadgen::run(&LoadgenConfig { workers: 4, ..base }).expect("loadgen workers=4");

    assert_eq!(one.failed, 0, "failures with one worker");
    assert_eq!(four.failed, 0, "failures with four workers");
    assert_eq!(
        one.checksum, four.checksum,
        "response bytes depend on worker count"
    );
}

/// The steady-state mix is warm: after the first occurrence of each
/// distinct body, everything is a response-cache hit.
#[test]
fn loadgen_mix_runs_warm() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let report = loadgen::run(&LoadgenConfig {
        requests: 400,
        clients: 4,
        workers: 4,
        seed: 0x5EED,
        ..LoadgenConfig::default()
    })
    .expect("loadgen run");
    assert_eq!(report.failed, 0);
    assert!(
        report.cache_hit_rate >= 0.9,
        "warm-cache hit rate {:.3} below 0.9",
        report.cache_hit_rate
    );
    assert!(report.p99_ms >= report.p50_ms);
    assert!(report.throughput_rps > 0.0);
}

/// A CHECKPOINT with nothing distributed to snapshot must come back as a
/// structured 400 with pipeline stage `io` — never a panic, never a
/// generic compile error.
#[test]
fn io_error_maps_to_structured_400_with_io_stage() {
    let api = Api::new(&CacheConfig::default());
    let src = "\nPROGRAM SCALARS\nREAL X\nX = 1.0\nCHECKPOINT\nEND\n";
    let body = hpf_trace::json::Value::obj(vec![
        ("source", hpf_trace::json::Value::Str(src.to_string())),
        ("procs", hpf_trace::json::Value::Num(4.0)),
    ])
    .pretty();
    let resp = api.handle(&post("/v1/predict", &body));
    assert_eq!(resp.status, 400);
    let text = String::from_utf8(resp.body.to_vec()).unwrap();
    assert!(text.contains("\"stage\": \"io\""), "body: {text}");
    assert!(text.contains("\"kind\": \"pipeline\""), "body: {text}");
}

/// An out-of-core kernel's predict response carries the `io_s` metric
/// (present only when nonzero, so I/O-free responses keep the old schema).
#[test]
fn ooc_kernel_predict_reports_io_seconds() {
    let api = Api::new(&CacheConfig::default());
    let body = r#"{"kernel": "Laplace OOC", "n": 32, "procs": 4}"#;
    let resp = api.handle(&post("/v1/predict", body));
    assert_eq!(
        resp.status,
        200,
        "body: {}",
        String::from_utf8_lossy(&resp.body)
    );
    let text = String::from_utf8(resp.body.to_vec()).unwrap();
    assert!(text.contains("\"io_s\""), "body: {text}");

    // And an I/O-free kernel's body must not mention the field at all.
    let resp = api.handle(&post(
        "/v1/predict",
        r#"{"kernel": "PI", "n": 128, "procs": 4}"#,
    ));
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body.to_vec()).unwrap();
    assert!(!text.contains("\"io_s\""), "body: {text}");
}
