//! Unhappy-path end-to-end tests for the resilience layer: panic
//! isolation and supervision, parse-time deadline short-circuit,
//! overload and queue-shed behavior, stalled and malformed clients, and
//! the in-process chaos harness itself.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use hpf_serve::api::{Api, CHAOS_HEADER};
use hpf_serve::cache::CacheConfig;
use hpf_serve::chaos::{self, ChaosConfig};
use hpf_serve::http::{read_response, Request};
use hpf_serve::server::{start, ServerConfig, ServerHandle};
use hpf_trace::json::{parse as parse_json, Value};

fn post(path: &str, body: &str) -> Request {
    Request {
        method: "POST".into(),
        path: path.into(),
        query: String::new(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    }
}

/// One request/response exchange on a fresh connection; panics on any
/// protocol failure.
fn roundtrip(addr: SocketAddr, path: &str, body: &str, chaos: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    send(&mut stream, path, body, chaos);
    read(&mut stream)
}

fn send(stream: &mut TcpStream, path: &str, body: &str, chaos: Option<&str>) {
    let mut raw = format!("POST {path} HTTP/1.1\r\ncontent-length: {}\r\n", body.len());
    if let Some(kind) = chaos {
        raw.push_str(&format!("{CHAOS_HEADER}: {kind}\r\n"));
    }
    raw.push_str("\r\n");
    raw.push_str(body);
    stream.write_all(raw.as_bytes()).expect("write request");
}

fn read(stream: &mut TcpStream) -> (u16, String) {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let (status, _, body) = read_response(&mut reader).expect("read response");
    (status, String::from_utf8_lossy(&body).into_owned())
}

fn healthz(addr: SocketAddr) -> Value {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /v1/healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
        .expect("write healthz");
    let (status, body) = read(&mut stream);
    assert_eq!(status, 200, "healthz: {body}");
    parse_json(&body).expect("healthz json")
}

fn worker_stat(h: &Value, key: &str) -> f64 {
    h.get("workers")
        .and_then(|w| w.get(key))
        .and_then(Value::as_f64)
        .unwrap_or(-1.0)
}

fn shutdown(addr: SocketAddr, handle: ServerHandle) {
    let (status, _) = roundtrip(addr, "/v1/shutdown", "", None);
    assert_eq!(status, 200);
    handle.wait();
}

const PREDICT: &str = r#"{"kernel": "PI", "n": 256, "procs": 4}"#;

/// Satellite: a panicking handler is answered as a structured 500 and
/// does NOT reduce the healthz-reported capacity — the worker that
/// caught it keeps serving.
#[test]
fn panicking_handler_does_not_reduce_capacity() {
    let handle = start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            chaos: true,
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = handle.addr();

    for _ in 0..4 {
        let (status, body) = roundtrip(addr, "/v1/predict", PREDICT, Some("handler"));
        assert_eq!(status, 500, "{body}");
        let v = parse_json(&body).expect("structured 500");
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Value::as_str),
            Some("panic"),
            "{body}"
        );
    }

    let h = healthz(addr);
    assert_eq!(worker_stat(&h, "configured"), 2.0);
    assert_eq!(worker_stat(&h, "live"), 2.0, "capacity shrank: {h:?}");
    assert_eq!(worker_stat(&h, "deaths"), 0.0);
    assert!(worker_stat(&h, "panics") >= 4.0);

    // And the pool still answers real work.
    let (status, _) = roundtrip(addr, "/v1/predict", PREDICT, None);
    assert_eq!(status, 200);
    shutdown(addr, handle);
}

/// The chaos header is inert unless the server opted into chaos.
#[test]
fn chaos_header_is_ignored_when_chaos_disabled() {
    let handle = start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = handle.addr();
    let (status, body) = roundtrip(addr, "/v1/predict", PREDICT, Some("handler"));
    assert_eq!(status, 200, "{body}");
    shutdown(addr, handle);
}

/// A worker that dies outright (panic outside the isolation boundary) is
/// detected and respawned by the supervisor; the pool returns to full
/// strength.
#[test]
fn supervisor_respawns_a_dead_worker() {
    let handle = start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            chaos: true,
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = handle.addr();

    // The fatal injection kills the worker before any response is
    // written: expect a dropped connection, not a status.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    send(&mut stream, "/v1/predict", PREDICT, Some("fatal"));
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert!(
        read_response(&mut reader).is_err(),
        "fatal injection should drop the connection"
    );

    // The supervisor notices and respawns; poll until the pool is whole.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let h = healthz(addr);
        if worker_stat(&h, "live") == 2.0 && worker_stat(&h, "respawns") >= 1.0 {
            assert!(worker_stat(&h, "deaths") >= 1.0);
            break;
        }
        assert!(
            Instant::now() < deadline,
            "supervisor never restored the pool: {h:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let (status, _) = roundtrip(addr, "/v1/predict", PREDICT, None);
    assert_eq!(status, 200);
    shutdown(addr, handle);
}

/// Satellite: a `deadline_ms` that is already expired at parse time
/// short-circuits to 504 before any pipeline stage — even before the
/// handler would have rejected the request for other reasons.
#[test]
fn expired_deadline_short_circuits_at_parse_time() {
    let api = Api::new(&CacheConfig::default());

    let resp = api.handle(&post(
        "/v1/predict",
        r#"{"kernel": "PI", "n": 256, "procs": 4, "deadline_ms": 0}"#,
    ));
    assert_eq!(resp.status, 504, "expired deadline must be 504");

    // An unknown kernel normally draws a 400 — but the dead deadline is
    // checked first, so no validation (no pipeline stage) ever runs.
    let resp = api.handle(&post(
        "/v1/predict",
        r#"{"kernel": "NO-SUCH-KERNEL", "n": 256, "procs": 4, "deadline_ms": 0}"#,
    ));
    assert_eq!(resp.status, 504, "parse-time check must precede validation");
    let resp = api.handle(&post(
        "/v1/predict",
        r#"{"kernel": "NO-SUCH-KERNEL", "n": 256, "procs": 4}"#,
    ));
    assert_eq!(resp.status, 400, "without a deadline the 400 is back");
}

/// Satellite: under sustained overload every rejected connection gets a
/// 429 **with** a `Retry-After` header — overload never degrades into
/// bare errors.
#[test]
fn overload_429_always_carries_retry_after() {
    let handle = start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout_ms: 1_000,
            retry_after_s: 1,
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = handle.addr();

    // Wedge the single worker with a stalled half-request, then fill the
    // one queue slot.
    let mut loris = TcpStream::connect(addr).expect("loris connect");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    loris
        .write_all(b"POST /v1/predict HTTP/1.1\r\ncontent-le")
        .unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let the worker adopt it
    let mut queued = TcpStream::connect(addr).expect("queued connect");
    queued
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    send(&mut queued, "/v1/predict", PREDICT, None);
    std::thread::sleep(Duration::from_millis(100)); // let it enqueue

    let mut saw_429 = 0;
    for _ in 0..5 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        send(&mut stream, "/v1/predict", PREDICT, None);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, headers, _) = read_response(&mut reader).expect("read 429");
        if status == 429 {
            saw_429 += 1;
            assert!(
                headers
                    .iter()
                    .any(|(k, v)| k == "retry-after" && !v.is_empty()),
                "429 without Retry-After: {headers:?}"
            );
        }
    }
    assert!(saw_429 >= 3, "expected sustained 429s, saw {saw_429}");

    // The stalled connection resolves (408) and service resumes.
    let (status, _) = read(&mut loris);
    assert_eq!(status, 408);
    let (status, _) = read(&mut queued);
    assert!(status == 200 || status == 504, "queued got {status}");
    let (status, _) = roundtrip(addr, "/v1/predict", PREDICT, None);
    assert_eq!(status, 200, "service did not recover after overload");
    shutdown(addr, handle);
}

/// Satellite: a half-request that stalls is closed by the read timeout
/// with a 408 and does not wedge the worker.
#[test]
fn stalled_half_request_gets_408_and_frees_the_worker() {
    let handle = start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            read_timeout_ms: 150,
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = handle.addr();

    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stalled
        .write_all(b"POST /v1/predict HTTP/1.1\r\ncontent-le")
        .unwrap();
    let (status, body) = read(&mut stalled);
    assert_eq!(status, 408, "{body}");

    // The single worker is free again: a real request answers promptly.
    let t0 = Instant::now();
    let (status, _) = roundtrip(addr, "/v1/predict", PREDICT, None);
    assert_eq!(status, 200);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "worker appears wedged"
    );
    shutdown(addr, handle);
}

/// Satellite: a handler-level error response (400) does not poison the
/// keep-alive connection — the next request on the same socket succeeds.
#[test]
fn error_response_does_not_poison_keep_alive() {
    let handle = start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = handle.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    send(&mut stream, "/v1/predict", r#"{"kernel": "NO-SUCH"}"#, None);
    let (status, body) = read(&mut stream);
    assert_eq!(status, 400, "{body}");

    // Same socket, next request: must be served, not dropped.
    send(&mut stream, "/v1/predict", PREDICT, None);
    let (status, body) = read(&mut stream);
    assert_eq!(status, 200, "keep-alive poisoned after 400: {body}");
    // Release the single worker (it would otherwise hold this keep-alive
    // socket until the idle timeout and the shutdown would be shed).
    drop(stream);
    shutdown(addr, handle);
}

/// Connections that out-wait the queue-wait cap are shed at dequeue with
/// a structured 504 instead of being served after their caller gave up.
#[test]
fn stale_queued_connections_are_shed_with_504() {
    let handle = start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            read_timeout_ms: 400,
            queue_wait_cap_ms: 50,
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = handle.addr();

    // Hold the only worker past the queue-wait cap…
    let mut loris = TcpStream::connect(addr).expect("connect");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    loris
        .write_all(b"POST /v1/predict HTTP/1.1\r\ncontent-le")
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // …so this queued connection is already stale at dequeue.
    let mut stale = TcpStream::connect(addr).expect("connect");
    stale
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    send(&mut stale, "/v1/predict", PREDICT, None);

    let (status, _) = read(&mut loris);
    assert_eq!(status, 408);
    let (status, body) = read(&mut stale);
    assert_eq!(status, 504, "{body}");
    let v = parse_json(&body).expect("structured shed body");
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("shed"),
        "{body}"
    );
    shutdown(addr, handle);
}

/// The whole chaos harness, in-process and scaled down: baseline and
/// chaos passes run, the contract holds, the report renders a PASS.
/// (This is the only test here that touches process-global trace state;
/// nothing else in this binary reads counters.)
#[test]
fn chaos_quick_run_passes() {
    let report = chaos::run(&ChaosConfig {
        requests: 120,
        clients: 2,
        workers: 2,
        seed: 0x7E57,
        read_timeout_ms: 150,
        queue_wait_cap_ms: 2_000,
    })
    .expect("chaos run");
    assert!(report.passed(), "chaos failed:\n{}", report.render());
    assert_eq!(report.worker_deaths, 0);
    assert_eq!(report.baseline_checksum, report.healthy_checksum);
    assert!(report.render().contains("verdict: PASS"));
}
