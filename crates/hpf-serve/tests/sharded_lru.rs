//! Concurrency property tests for the sharded LRU behind the serve
//! caches.
//!
//! The contract: threads racing `get`/`insert` on one `ShardedLru` never
//! grow a shard past its capacity, never corrupt a value (a key always
//! maps to the value derived from it), and never lose a hit that was
//! inserted and could not have been evicted — i.e. every key routed to a
//! shard that saw at most `per_shard_cap` distinct keys is still
//! retrievable after the storm.

use std::sync::Arc;

use hpf_serve::ShardedLru;
use proptest::prelude::*;

/// The value every writer stores for key `k{i}` — derived from the key,
/// so concurrent same-key inserts are idempotent and any torn read would
/// be visible as a value mismatch.
fn value_of(i: usize) -> u64 {
    (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

proptest! {
    /// Racing readers/writers preserve per-shard capacity and value
    /// integrity, and no unevictable insert is ever lost.
    #[test]
    fn racing_inserts_preserve_capacity_and_hits(
        universe in 1usize..120,
        total_cap in 1usize..96,
        shards in 1usize..9,
        threads in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let lru = Arc::new(ShardedLru::<u64>::new(total_cap, shards));

        let mut joins = Vec::new();
        for t in 0..threads {
            let lru = Arc::clone(&lru);
            joins.push(std::thread::spawn(move || {
                // A cheap per-thread LCG walk over the key universe:
                // overlapping key sets force same-key insert races and
                // get-during-evict races.
                let mut x = (seed ^ (t as u64).wrapping_mul(0xA076_1D64_78BD_642F)) | 1;
                for _ in 0..universe * 2 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let i = (x >> 33) as usize % universe;
                    if x & 1 == 0 {
                        lru.insert(format!("k{i}"), value_of(i));
                    } else if let Some(v) = lru.get(&format!("k{i}")) {
                        assert_eq!(v, value_of(i), "torn value for k{i}");
                    }
                }
                // Every thread finishes by inserting the whole universe
                // in order, so the final occupancy is deterministic
                // enough to reason about per shard.
                for i in 0..universe {
                    lru.insert(format!("k{i}"), value_of(i));
                }
            }));
        }
        for j in joins {
            j.join().expect("racing thread panicked");
        }

        // Capacity: no shard ever holds more than its own cap.
        let cap = lru.per_shard_cap();
        for (s, len) in lru.shard_lens().into_iter().enumerate() {
            prop_assert!(len <= cap, "shard {s} holds {len} > cap {cap}");
        }

        // Lost-hit check: count the distinct keys each shard was ever
        // asked to hold. A shard that never exceeded its capacity can
        // never have evicted, so every one of its keys must still hit.
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); lru.shard_count()];
        for i in 0..universe {
            per_shard[lru.shard_index(&format!("k{i}"))].push(i);
        }
        for (s, keys) in per_shard.iter().enumerate() {
            if keys.len() > cap {
                continue; // eviction was legitimate; covered by the cap check
            }
            for &i in keys {
                let got = lru.get(&format!("k{i}"));
                prop_assert_eq!(
                    got,
                    Some(value_of(i)),
                    "shard {} (cap {}, {} keys) lost inserted-and-unevicted key k{}",
                    s,
                    cap,
                    keys.len(),
                    i
                );
            }
        }
    }
}
