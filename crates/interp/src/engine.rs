//! The interpretation engine (§3.3, §4.2): an interpretation *function* per
//! AAU type computing its performance in terms of the parameters exported
//! by the associated SAU, and an interpretation *algorithm* that recursively
//! applies the functions to the SAAG, maintaining per-AAU computation /
//! communication / overhead metrics and the global clock.

use crate::metrics::Metrics;
use appgraph::{Aag, AauId, AauKind};
use hpf_compiler::{CommPhase, CompPhase, OpCounts};
use machine::{MachineModel, OpClass};

/// Engine options — the user-experimentation knobs of §3.3 ("models and
/// heuristics are defined to handle accesses to the memory hierarchy,
/// overlap between computation and communication, and user experimentation
/// with system and run-time parameters").
#[derive(Debug, Clone)]
pub struct InterpOptions {
    /// Model the memory hierarchy (cache hit-ratio model). Off = every
    /// reference hits (flat-memory ablation).
    pub memory_hierarchy: bool,
    /// Model overlap between computation and communication: a fraction of
    /// each communication's wire time hides under the following computation.
    pub overlap_comp_comm: bool,
    /// Fraction of wire time that can overlap when enabled (NX supported
    /// limited overlap via asynchronous receives).
    pub overlap_fraction: f64,
    /// Interpret every communication phase as free (zero comm, zero pack
    /// overhead). The resulting prediction is a *lower bound* on the real
    /// one for the same SPMD program — computation, loop bookkeeping and
    /// wait are untouched — which is what branch-and-bound directive
    /// search needs to discard dominated candidates soundly.
    pub zero_comm: bool,
}

impl Default for InterpOptions {
    fn default() -> Self {
        InterpOptions {
            memory_hierarchy: true,
            overlap_comp_comm: false,
            overlap_fraction: 0.5,
            zero_comm: false,
        }
    }
}

/// A completed interpretation: total and per-AAU metrics plus the clock.
#[derive(Debug, Clone)]
pub struct Prediction {
    pub total: Metrics,
    /// Cumulative metrics per AAU id (over all executions of that AAU).
    pub per_aau: Vec<Metrics>,
    /// Final value of the global clock, seconds.
    pub global_clock: f64,
    pub nodes: usize,
}

impl Prediction {
    /// Predicted wall-clock execution time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.global_clock
    }

    pub fn total(&self) -> std::time::Duration {
        std::time::Duration::from_secs_f64(self.global_clock.max(0.0))
    }
}

/// The interpretation engine bound to an abstracted machine.
#[derive(Debug, Clone)]
pub struct InterpretationEngine<'m> {
    pub machine: &'m MachineModel,
    pub options: InterpOptions,
}

impl<'m> InterpretationEngine<'m> {
    pub fn new(machine: &'m MachineModel) -> Self {
        InterpretationEngine {
            machine,
            options: InterpOptions::default(),
        }
    }

    pub fn with_options(machine: &'m MachineModel, options: InterpOptions) -> Self {
        InterpretationEngine { machine, options }
    }

    /// Run the interpretation algorithm over the SAAG.
    pub fn interpret(&self, aag: &Aag) -> Prediction {
        let _span = hpf_trace::span("interpret");
        hpf_trace::counter_add("interp.interpretations", 1);
        hpf_trace::counter_add("interp.aaus", aag.aaus.len() as u64);
        let mut per_aau = vec![Metrics::ZERO; aag.aaus.len()];
        let total = self.seq(aag, &aag.top, 1.0, &mut per_aau);
        Prediction {
            total,
            per_aau,
            global_clock: total.time(),
            nodes: self.machine.nodes,
        }
    }

    /// Interpret a sequence of AAUs, applying the comp/comm overlap model
    /// between adjacent communication and computation units.
    fn seq(&self, aag: &Aag, ids: &[AauId], weight: f64, per_aau: &mut [Metrics]) -> Metrics {
        let mut total = Metrics::ZERO;
        let mut pending_overlap: f64 = 0.0; // overlappable wire time carried
        let mut pending_io_overlap: f64 = 0.0; // overlappable I/O streaming
        for &id in ids {
            let mut m = self.aau(aag, id, weight, per_aau);
            if self.options.overlap_comp_comm && !self.options.zero_comm {
                match &aag.aau(id).kind {
                    AauKind::Comm { phase, .. } => {
                        // Wire time (not packing) may hide under later comp.
                        let wire = self.comm_wire_time(phase);
                        pending_overlap += wire * self.options.overlap_fraction;
                    }
                    AauKind::Io { phase } => {
                        // Streamed server transfers hide under later
                        // computation the same way wire time does (the
                        // asynchronous-request half of the two-phase
                        // access).
                        let t = hpf_io::phase_time_on(self.machine, phase);
                        pending_io_overlap += t * self.options.overlap_fraction;
                    }
                    AauKind::IterD { comp: Some(_), .. } => {
                        let hidden = pending_overlap.min(m.comp);
                        m.comm -= hidden;
                        let hidden_io = pending_io_overlap.min(m.comp - hidden);
                        m.io -= hidden_io;
                        total.wait += 0.0;
                        pending_overlap = 0.0;
                        pending_io_overlap = 0.0;
                    }
                    _ => {}
                }
            }
            total += m;
        }
        total
    }

    /// Interpretation function dispatch for one AAU.
    fn aau(&self, aag: &Aag, id: AauId, weight: f64, per_aau: &mut [Metrics]) -> Metrics {
        let a = aag.aau(id);
        let m = match &a.kind {
            AauKind::Start | AauKind::End => Metrics::ZERO,
            AauKind::Seq { ops } => self.interpret_seq(ops),
            AauKind::Comm { phase, .. } => self.interpret_comm(phase),
            AauKind::Io { phase } => self.interpret_io(phase),
            AauKind::IterD {
                trips, comp, body, ..
            } => match comp {
                Some(c) => self.interpret_comp(c),
                None => {
                    let body_m = self.seq(aag, body, weight, per_aau);
                    let p = &self.machine.node_processing;
                    let loop_ovh = *trips as f64 * p.op_time(OpClass::LoopIter)
                        + p.op_time(OpClass::LoopSetup);
                    let mut m = body_m * (*trips as f64);
                    m.overhead += loop_ovh;
                    m
                }
            },
            AauKind::CondtD { arms, else_arm } => {
                let p = &self.machine.node_processing;
                let mut m = Metrics {
                    overhead: p.op_time(OpClass::Branch),
                    ..Metrics::ZERO
                };
                let mut arm_weight_sum = 0.0;
                for (w, body) in arms {
                    let w = w.clamp(0.0, 1.0);
                    arm_weight_sum += w;
                    m += self.seq(aag, body, weight * w, per_aau) * w;
                }
                let else_w = (1.0 - arm_weight_sum).max(0.0);
                if !else_arm.is_empty() && else_w > 0.0 {
                    m += self.seq(aag, else_arm, weight * else_w, per_aau) * else_w;
                }
                m
            }
        };
        per_aau[id] += m * weight;
        m
    }

    /// Seq AAU: straight-line replicated scalar work.
    fn interpret_seq(&self, ops: &OpCounts) -> Metrics {
        let comp = self.ops_time(ops, 0.95);
        Metrics {
            comp,
            ..Metrics::ZERO
        }
    }

    /// IterD with a computation phase: the sequentialized local loop nest.
    fn interpret_comp(&self, c: &CompPhase) -> Metrics {
        let p = &self.machine.node_processing;
        let iters = c.max_node_iters() as f64;
        let hit = self.hit_ratio(c);

        // Per-iteration cost: mask evaluation (or the body when unmasked),
        // plus density-weighted masked body.
        let mut per_iter_time = self.ops_time_with_hit(&c.per_iter, hit);
        if let (Some(body), Some(density)) = (&c.masked_ops, c.mask_density_hint) {
            per_iter_time += density * self.ops_time_with_hit(body, hit);
        }
        let comp = iters * per_iter_time;

        // Loop bookkeeping: one iter-overhead per innermost iteration plus
        // setup per nest level.
        let overhead = iters * p.op_time(OpClass::LoopIter)
            + c.loop_depth as f64 * p.op_time(OpClass::LoopSetup)
            + if c.masked_ops.is_some() {
                iters * p.op_time(OpClass::Branch)
            } else {
                0.0
            };

        // Wait time: the non-critical nodes idle while the busiest finishes.
        let mean = c.total_iters as f64 / c.per_node_iters.len().max(1) as f64;
        let wait = (iters - mean).max(0.0) * per_iter_time;

        Metrics {
            comp,
            comm: 0.0,
            overhead,
            wait,
            io: 0.0,
        }
    }

    /// Comm AAU: the collective library call plus software packing.
    fn interpret_comm(&self, c: &CommPhase) -> Metrics {
        if self.options.zero_comm {
            return Metrics::ZERO;
        }
        let lib = self
            .machine
            .collective_time(c.op, c.participants, c.bytes_per_node);
        let pack = self.pack_overhead(c);
        Metrics {
            comm: lib,
            overhead: pack,
            ..Metrics::ZERO
        }
    }

    /// Io AAU: the striped-server phase, priced by the fitted I/O
    /// calibration when the machine has one, otherwise the closed form.
    /// `zero_comm` deliberately leaves I/O charged: the lower bound it
    /// certifies is over communication placements, and I/O statements are
    /// part of the program being bounded.
    fn interpret_io(&self, p: &hpf_io::IoPhase) -> Metrics {
        let io = hpf_io::phase_time_on(self.machine, p);
        Metrics {
            io,
            ..Metrics::ZERO
        }
    }

    /// Extra software packing charged for non-contiguous boundaries: each
    /// element is a separate strided reference (a cache miss per element on
    /// the i860's 32-byte lines), on both the pack and unpack side.
    fn pack_overhead(&self, c: &CommPhase) -> f64 {
        if c.contiguous {
            0.0
        } else {
            let elems = c.bytes_per_node as f64 / 4.0;
            let miss = self.machine.node_memory.access_time(0.0);
            2.0 * elems * miss
        }
    }

    /// Wire-only portion of a communication (overlap candidate).
    fn comm_wire_time(&self, c: &CommPhase) -> f64 {
        c.bytes_per_node as f64 * self.machine.comm.per_byte_s
    }

    fn hit_ratio(&self, c: &CompPhase) -> f64 {
        if !self.options.memory_hierarchy {
            return 1.0;
        }
        self.machine
            .node_memory
            .hit_ratio(c.working_set_bytes, 4, c.locality)
    }

    /// Time for an op bundle with a given cache hit ratio on its refs.
    fn ops_time_with_hit(&self, ops: &OpCounts, hit: f64) -> f64 {
        let p = &self.machine.node_processing;
        let m = &self.machine.node_memory;
        let mem = if self.options.memory_hierarchy {
            ops.mem_refs() * m.access_time(hit)
        } else {
            ops.mem_refs() * m.access_time(1.0)
        };
        // The measured-to-counted scaling from characterization runs (§4.4)
        // applies to everything the processing/memory components time.
        (ops.fadd * p.op_time(OpClass::FAdd)
            + ops.fmul * p.op_time(OpClass::FMul)
            + ops.fdiv * p.op_time(OpClass::FDiv)
            + ops.ftrans * p.op_time(OpClass::FTranscendental)
            + ops.int_ops * p.op_time(OpClass::IntOp)
            + ops.imul * p.op_time(OpClass::IntMul)
            + ops.idiv * p.op_time(OpClass::IntDiv)
            + ops.cmp * p.op_time(OpClass::Compare)
            + ops.logical * p.op_time(OpClass::Logical)
            + ops.index * p.op_time(OpClass::Index)
            + ops.calls * p.op_time(OpClass::Call)
            + ops.branches * p.op_time(OpClass::Branch)
            + mem)
            * self.machine.compute_scale()
    }

    fn ops_time(&self, ops: &OpCounts, hit: f64) -> f64 {
        self.ops_time_with_hit(ops, hit)
    }
}
