//! # hpf-interp — the interpretation engine and output module
//!
//! The paper's central contribution (§3.3, §3.4, §4.2): source-driven
//! performance prediction by *interpreting* the abstracted application
//! (SAAG) in terms of the parameters exported by the abstracted system
//! (the iPSC/860 SAG). Includes the memory-hierarchy and comp/comm-overlap
//! models, per-AAU metric bookkeeping, the global clock, and the three
//! output forms (whole-application profile, per-line query, ParaGraph-style
//! trace).

pub mod engine;
pub mod metrics;
pub mod output;

pub use engine::{InterpOptions, InterpretationEngine, Prediction};
pub use metrics::Metrics;
pub use output::{paragraph_trace, profile_report, query_line, query_lines, query_subgraph};

/// Convenience: compile → abstract → interpret in one call.
pub fn predict(
    analyzed: &hpf_lang::AnalyzedProgram,
    copts: &hpf_compiler::CompileOptions,
    machine: &machine::MachineModel,
    iopts: InterpOptions,
) -> Result<(Prediction, appgraph::Aag), hpf_compiler::CompileError> {
    let spmd = hpf_compiler::compile(analyzed, copts)?;
    let aag = appgraph::build_aag(&spmd);
    let engine = InterpretationEngine::with_options(machine, iopts);
    Ok((engine.interpret(&aag), aag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_compiler::CompileOptions;
    use hpf_lang::{analyze, parse_program};
    use machine::ipsc860;
    use std::collections::BTreeMap;

    fn predict_src(src: &str, nodes: usize) -> (Prediction, appgraph::Aag) {
        let p = parse_program(src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let m = ipsc860(nodes);
        predict(
            &a,
            &CompileOptions {
                nodes,
                ..Default::default()
            },
            &m,
            InterpOptions::default(),
        )
        .unwrap()
    }

    const LAPLACE: &str = "
PROGRAM LAP
INTEGER, PARAMETER :: N = 64
REAL U(N,N), V(N,N)
INTEGER IT
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN U(I,J) WITH T(I,J)
!HPF$ ALIGN V(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(BLOCK,*) ONTO P
U = 0.0
DO IT = 1, 10
FORALL (I=2:N-1, J=2:N-1) V(I,J) = 0.25 * (U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))
U(2:N-1, 2:N-1) = V(2:N-1, 2:N-1)
END DO
END
";

    #[test]
    fn laplace_prediction_is_reasonable() {
        let (pred, _) = predict_src(LAPLACE, 4);
        // 10 sweeps of a 64x64 Jacobi on 4 i860 nodes: sub-second but
        // non-trivial (the real machine did ~0.1 s at N=64 per Figure 4).
        assert!(pred.global_clock > 1e-4, "clock {}", pred.global_clock);
        assert!(pred.global_clock < 1.0, "clock {}", pred.global_clock);
        assert!(pred.total.comm > 0.0);
        assert!(pred.total.comp > 0.0);
    }

    #[test]
    fn more_nodes_less_comp_more_commfrac() {
        let (p1, _) = predict_src(LAPLACE, 1);
        let (p8, _) = predict_src(LAPLACE, 8);
        assert!(p8.total.comp < p1.total.comp, "comp must shrink with nodes");
        assert_eq!(p1.total.comm, 0.0, "single node never communicates");
        assert!(p8.total.comm > 0.0);
        assert!(p8.total.comm_fraction() > p1.total.comm_fraction());
    }

    #[test]
    fn scaling_speedup_for_large_problem() {
        let src = LAPLACE.replace("N = 64", "N = 256");
        let p = parse_program(&src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let t = |n: usize| {
            let m = ipsc860(n);
            predict(
                &a,
                &CompileOptions {
                    nodes: n,
                    ..Default::default()
                },
                &m,
                InterpOptions::default(),
            )
            .unwrap()
            .0
            .global_clock
        };
        let t1 = t(1);
        let t4 = t(4);
        let t8 = t(8);
        assert!(t4 < t1, "4 nodes faster than 1: {t4} vs {t1}");
        assert!(t8 < t4, "8 nodes faster than 4: {t8} vs {t4}");
        let speedup = t1 / t8;
        assert!(speedup > 2.0 && speedup < 9.0, "speedup {speedup}");
    }

    #[test]
    fn block_star_wins_for_laplace() {
        // The headline directive-selection result (§5.2.1): (Block,*) is the
        // appropriate distribution for the Laplace solver, at the problem
        // sizes the paper's Figures 4/5 emphasize (up to 256).
        let t = |dist: &str, grid: &str| {
            let src = LAPLACE
                .replace("(BLOCK,*)", dist)
                .replace("P(4)", grid)
                .replace("N = 64", "N = 256");
            predict_src(&src, 4).0.global_clock
        };
        let bs = t("(BLOCK,*)", "P(4)");
        let sb = t("(*,BLOCK)", "P(4)");
        let bb = t("(BLOCK,BLOCK)", "P(2,2)");
        assert!(bs < sb, "(Block,*) {bs} must beat (*,Block) {sb}");
        assert!(bs < bb, "(Block,*) {bs} must beat (Block,Block) {bb}");
    }

    #[test]
    fn per_line_query_attribution() {
        let (pred, aag) = predict_src(LAPLACE, 4);
        let forall_line = LAPLACE
            .lines()
            .position(|l| l.starts_with("FORALL"))
            .unwrap() as u32
            + 1;
        let m = query_line(&pred, &aag, forall_line);
        assert!(m.time() > 0.0);
        // The stencil dominates the program.
        assert!(m.time() > 0.3 * pred.global_clock);
    }

    #[test]
    fn profile_report_renders() {
        let (pred, aag) = predict_src(LAPLACE, 4);
        let rep = profile_report(&pred, &aag, "laplace");
        assert!(rep.contains("communication"));
        assert!(rep.contains("computation"));
        assert!(rep.contains("per-AAU"));
    }

    #[test]
    fn paragraph_trace_has_events() {
        let (pred, aag) = predict_src(LAPLACE, 4);
        let tr = paragraph_trace(&pred, &aag);
        assert!(tr.contains("task_begin"));
        assert!(tr.contains("send"));
        assert!(tr.contains("recv"));
        // Events for all four nodes.
        assert!(tr
            .lines()
            .any(|l| l.ends_with(' ').eq(&false) && l.contains(" 3 ")));
    }

    #[test]
    fn flat_memory_ablation_is_faster() {
        let p = parse_program(LAPLACE).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let m = ipsc860(4);
        let co = CompileOptions {
            nodes: 4,
            ..Default::default()
        };
        let (with_mem, _) = predict(&a, &co, &m, InterpOptions::default()).unwrap();
        let (flat, _) = predict(
            &a,
            &co,
            &m,
            InterpOptions {
                memory_hierarchy: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(flat.global_clock < with_mem.global_clock);
    }

    #[test]
    fn overlap_ablation_reduces_comm() {
        let p = parse_program(LAPLACE).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let m = ipsc860(8);
        let co = CompileOptions {
            nodes: 8,
            ..Default::default()
        };
        let (base, _) = predict(&a, &co, &m, InterpOptions::default()).unwrap();
        let (ovl, _) = predict(
            &a,
            &co,
            &m,
            InterpOptions {
                overlap_comp_comm: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(ovl.total.comm <= base.total.comm);
        assert!(ovl.global_clock <= base.global_clock);
    }

    #[test]
    fn reduction_program_prediction() {
        let src = "
PROGRAM PI
INTEGER, PARAMETER :: N = 4096
REAL X(N), S
!HPF$ PROCESSORS P(8)
!HPF$ DISTRIBUTE X(BLOCK) ONTO P
FORALL (I=1:N) X(I) = 1.0 / (1.0 + ((I - 0.5) / N) ** 2)
S = SUM(X)
END
";
        let (pred, _) = predict_src(src, 8);
        assert!(pred.total.comm > 0.0, "global sum must communicate");
        assert!(pred.total.comp > pred.total.comm, "compute-bound at N=4096");
    }

    #[test]
    fn larger_problem_takes_longer() {
        let t = |n: u32| {
            let src = LAPLACE.replace("N = 64", &format!("N = {n}"));
            predict_src(&src, 4).0.global_clock
        };
        assert!(t(128) > t(64));
        assert!(t(256) > t(128));
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use hpf_compiler::CompileOptions;
    use hpf_lang::{analyze, parse_program};
    use machine::ipsc860;
    use std::collections::BTreeMap;

    fn predict_src(src: &str, nodes: usize) -> Prediction {
        let p = parse_program(src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let spmd = hpf_compiler::compile(
            &a,
            &CompileOptions {
                nodes,
                ..Default::default()
            },
        )
        .unwrap();
        let aag = appgraph::build_aag(&spmd);
        let m = ipsc860(nodes);
        InterpretationEngine::new(&m).interpret(&aag)
    }

    #[test]
    fn nested_loops_multiply() {
        let one = predict_src(
            "PROGRAM T\nREAL A(64)\nINTEGER K\n!HPF$ PROCESSORS P(2)\n!HPF$ DISTRIBUTE A(BLOCK) ONTO P\nDO K = 1, 1\nA = A + 1.0\nEND DO\nEND\n",
            2,
        );
        let ten = predict_src(
            "PROGRAM T\nREAL A(64)\nINTEGER K\n!HPF$ PROCESSORS P(2)\n!HPF$ DISTRIBUTE A(BLOCK) ONTO P\nDO K = 1, 10\nA = A + 1.0\nEND DO\nEND\n",
            2,
        );
        let ratio = ten.global_clock / one.global_clock;
        assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn branch_weights_average_arms() {
        // IF with a cheap and an expensive arm: prediction must sit between.
        let cheap = predict_src(
            "PROGRAM T\nREAL A(1024), X\n!HPF$ PROCESSORS P(2)\n!HPF$ DISTRIBUTE A(BLOCK) ONTO P\nX = 1.0\nA = 1.0\nEND\n",
            2,
        );
        let expensive = predict_src(
            "PROGRAM T\nREAL A(1024), X\n!HPF$ PROCESSORS P(2)\n!HPF$ DISTRIBUTE A(BLOCK) ONTO P\nX = 1.0\nA = 1.0\nA = A * 2.0\nA = A * 3.0\nEND\n",
            2,
        );
        let branchy = predict_src(
            "PROGRAM T
REAL A(1024), X
!HPF$ PROCESSORS P(2)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
X = 1.0
IF (X > 0.5) THEN
A = 1.0
A = A * 2.0
A = A * 3.0
ELSE
A = 1.0
END IF
END
",
            2,
        );
        assert!(branchy.global_clock < expensive.global_clock);
        assert!(branchy.global_clock > 0.4 * cheap.global_clock);
    }

    #[test]
    fn wait_time_reported_for_imbalance() {
        let pred = predict_src(
            "PROGRAM T\nREAL A(128)\n!HPF$ PROCESSORS P(4)\n!HPF$ DISTRIBUTE A(BLOCK) ONTO P\nFORALL (I = 1:32) A(I) = SQRT(1.0 + I)\nEND\n",
            4,
        );
        assert!(pred.total.wait > 0.0, "only node 0 works; others wait");
        // The wait is not part of the critical path clock.
        assert!(pred.total.wait < pred.global_clock * 3.0);
    }

    #[test]
    fn masked_density_scales_prediction() {
        let mk = |density: f64| {
            let src = "PROGRAM T
REAL A(4096), Q(4096)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE TT(4096)
!HPF$ ALIGN A(I) WITH TT(I)
!HPF$ ALIGN Q(I) WITH TT(I)
!HPF$ DISTRIBUTE TT(BLOCK) ONTO P
FORALL (I = 1:4096, Q(I) .GT. 0.0) A(I) = SQRT(Q(I)) / Q(I)
END
";
            let p = parse_program(src).unwrap();
            let a = analyze(&p, &BTreeMap::new()).unwrap();
            let spmd = hpf_compiler::compile(
                &a,
                &CompileOptions {
                    nodes: 4,
                    mask_density_hint: density,
                    ..Default::default()
                },
            )
            .unwrap();
            let aag = appgraph::build_aag(&spmd);
            let m = ipsc860(4);
            InterpretationEngine::new(&m).interpret(&aag).global_clock
        };
        let low = mk(0.1);
        let high = mk(1.0);
        assert!(high > 1.5 * low, "density 1.0 {high} vs 0.1 {low}");
    }
}
