//! Performance metrics maintained per AAU and cumulatively (§4.2): the
//! computation / communication / overhead time breakdown plus wait time,
//! and the global clock.

use std::ops::{Add, AddAssign, Mul};
use std::time::Duration;

/// Time breakdown, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Useful local computation.
    pub comp: f64,
    /// Communication/synchronization (network + library).
    pub comm: f64,
    /// Software overheads: loop/branch bookkeeping, index translation,
    /// message packing.
    pub overhead: f64,
    /// Idle time on non-critical nodes due to load imbalance (reported but
    /// not part of the critical-path clock).
    pub wait: f64,
    /// Parallel I/O time (striped server transfers, disk service, commit).
    pub io: f64,
}

impl Metrics {
    pub const ZERO: Metrics = Metrics {
        comp: 0.0,
        comm: 0.0,
        overhead: 0.0,
        wait: 0.0,
        io: 0.0,
    };

    /// Critical-path time of this unit (computation + communication +
    /// overheads; waits overlap the critical path by construction).
    pub fn time(&self) -> f64 {
        self.comp + self.comm + self.overhead + self.io
    }

    pub fn as_duration(&self) -> Duration {
        Duration::from_secs_f64(self.time().max(0.0))
    }

    /// Fraction of the time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        let t = self.time();
        if t == 0.0 {
            0.0
        } else {
            self.comm / t
        }
    }
}

impl Add for Metrics {
    type Output = Metrics;
    fn add(self, o: Metrics) -> Metrics {
        Metrics {
            comp: self.comp + o.comp,
            comm: self.comm + o.comm,
            overhead: self.overhead + o.overhead,
            wait: self.wait + o.wait,
            io: self.io + o.io,
        }
    }
}

impl AddAssign for Metrics {
    fn add_assign(&mut self, o: Metrics) {
        *self = *self + o;
    }
}

impl Mul<f64> for Metrics {
    type Output = Metrics;
    fn mul(self, k: f64) -> Metrics {
        Metrics {
            comp: self.comp * k,
            comm: self.comm * k,
            overhead: self.overhead * k,
            wait: self.wait * k,
            io: self.io * k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algebra() {
        let a = Metrics {
            comp: 1.0,
            comm: 2.0,
            overhead: 0.5,
            wait: 0.1,
            io: 0.0,
        };
        let b = a + a;
        assert_eq!(b.comp, 2.0);
        assert_eq!(b.time(), 7.0);
        let c = a * 3.0;
        assert_eq!(c.comm, 6.0);
        assert!((a.comm_fraction() - 2.0 / 3.5).abs() < 1e-12);
        assert_eq!(Metrics::ZERO.comm_fraction(), 0.0);
    }

    #[test]
    fn duration_conversion() {
        let m = Metrics {
            comp: 0.25,
            comm: 0.25,
            overhead: 0.0,
            wait: 0.0,
            io: 0.0,
        };
        assert_eq!(m.as_duration(), Duration::from_millis(500));
    }
}
