//! The output module (§3.4, §4.2 "output parse"): communicates estimated
//! performance metrics at the granularity the user selects — a generic
//! profile of the whole application broken into computation, communication
//! and overhead; per-AAU / sub-graph metrics; per-source-line queries; and
//! a ParaGraph-compatible interpretation trace.

use crate::engine::Prediction;
use crate::metrics::Metrics;
use appgraph::{Aag, AauKind};
use std::fmt::Write;

/// Generic performance profile of the entire application (output form 1).
pub fn profile_report(pred: &Prediction, aag: &Aag, title: &str) -> String {
    let mut out = String::new();
    let t = pred.total;
    let _ = writeln!(out, "Performance profile: {title}");
    let _ = writeln!(out, "  nodes           : {}", pred.nodes);
    let _ = writeln!(out, "  total time      : {:>12.6} s", pred.global_clock);
    let _ = writeln!(
        out,
        "  computation     : {:>12.6} s ({:5.1}%)",
        t.comp,
        pct(t.comp, pred.global_clock)
    );
    let _ = writeln!(
        out,
        "  communication   : {:>12.6} s ({:5.1}%)",
        t.comm,
        pct(t.comm, pred.global_clock)
    );
    let _ = writeln!(
        out,
        "  overhead        : {:>12.6} s ({:5.1}%)",
        t.overhead,
        pct(t.overhead, pred.global_clock)
    );
    let _ = writeln!(out, "  wait (imbalance): {:>12.6} s", t.wait);
    let _ = writeln!(out, "  per-AAU breakdown (non-zero):");
    for (id, m) in pred.per_aau.iter().enumerate() {
        if m.time() <= 0.0 {
            continue;
        }
        let a = aag.aau(id);
        let _ = writeln!(
            out,
            "    [{id:>3}] {:<40} comp {:>10.6}  comm {:>10.6}  ovhd {:>10.6}",
            truncate(&a.label, 40),
            m.comp,
            m.comm,
            m.overhead
        );
    }
    out
}

/// Metrics for a particular source line (output form 2).
pub fn query_line(pred: &Prediction, aag: &Aag, line: u32) -> Metrics {
    let mut m = Metrics::ZERO;
    for id in aag.aaus_on_line(line) {
        m += pred.per_aau[id];
    }
    m
}

/// Cumulative metrics for a branch of the AAG (an AAU and every AAU in its
/// sub-graph) — the middle granularity of §3.4 ("for an individual AAU,
/// cumulatively for a branch of the AAG (i.e. sub-AAG), or for the entire
/// AAG").
pub fn query_subgraph(pred: &Prediction, aag: &Aag, root: appgraph::AauId) -> Metrics {
    fn collect(aag: &Aag, id: appgraph::AauId, out: &mut Vec<appgraph::AauId>) {
        out.push(id);
        match &aag.aau(id).kind {
            AauKind::IterD { body, .. } => {
                for &c in body {
                    collect(aag, c, out);
                }
            }
            AauKind::CondtD { arms, else_arm } => {
                for (_, b) in arms {
                    for &c in b {
                        collect(aag, c, out);
                    }
                }
                for &c in else_arm {
                    collect(aag, c, out);
                }
            }
            _ => {}
        }
    }
    let mut ids = Vec::new();
    collect(aag, root, &mut ids);
    let mut m = Metrics::ZERO;
    for id in ids {
        m += pred.per_aau[id];
    }
    m
}

/// Metrics for a range of source lines.
pub fn query_lines(pred: &Prediction, aag: &Aag, lines: std::ops::RangeInclusive<u32>) -> Metrics {
    let mut m = Metrics::ZERO;
    for id in 0..aag.aaus.len() {
        let span = aag.aau(id).span;
        if !span.is_synthetic() && lines.contains(&span.line) {
            m += pred.per_aau[id];
        }
    }
    m
}

/// ParaGraph-style interpretation trace (output form 3): one event record
/// per phase per node, in the classic whitespace-separated
/// `<event> <node> <time-µs> ...` text form that ParaGraph's trace readers
/// consume (task begin/end, send, recv).
pub fn paragraph_trace(pred: &Prediction, aag: &Aag) -> String {
    let mut out = String::new();
    let mut clock = 0.0f64;
    let us = |t: f64| (t * 1e6).round() as u64;
    for (id, m) in pred.per_aau.iter().enumerate() {
        if m.time() <= 0.0 {
            continue;
        }
        let a = aag.aau(id);
        match &a.kind {
            AauKind::Comm { phase, .. } => {
                for node in 0..pred.nodes {
                    let _ = writeln!(out, "send {node} {} {}", us(clock), phase.bytes_per_node);
                }
                clock += m.time();
                for node in 0..pred.nodes {
                    let _ = writeln!(out, "recv {node} {} {}", us(clock), phase.bytes_per_node);
                }
            }
            _ => {
                for node in 0..pred.nodes {
                    let _ = writeln!(out, "task_begin {node} {} {id}", us(clock));
                }
                clock += m.time();
                for node in 0..pred.nodes {
                    let _ = writeln!(out, "task_end {node} {} {id}", us(clock));
                }
            }
        }
    }
    out
}

fn pct(x: f64, total: f64) -> f64 {
    if total <= 0.0 {
        0.0
    } else {
        100.0 * x / total
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_compiler::CompileOptions;
    use hpf_lang::{analyze, parse_program};
    use machine::ipsc860;
    use std::collections::BTreeMap;

    fn setup() -> (Prediction, appgraph::Aag, String) {
        let src = "
PROGRAM T
INTEGER, PARAMETER :: N = 256
REAL A(N), B(N), S
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE TT(N)
!HPF$ ALIGN A(I) WITH TT(I)
!HPF$ ALIGN B(I) WITH TT(I)
!HPF$ DISTRIBUTE TT(BLOCK) ONTO P
FORALL (I = 1:N) A(I) = I * 0.5
FORALL (I = 2:N) B(I) = A(I-1) * 2.0
S = SUM(B)
END
"
        .to_string();
        let p = parse_program(&src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let spmd = hpf_compiler::compile(
            &a,
            &CompileOptions {
                nodes: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let aag = appgraph::build_aag(&spmd);
        let m = ipsc860(4);
        let pred = crate::InterpretationEngine::new(&m).interpret(&aag);
        (pred, aag, src)
    }

    #[test]
    fn line_queries_partition_the_clock() {
        let (pred, aag, src) = setup();
        // Summing per-line metrics over all lines covers most of the clock
        // (structural AAUs like loops are synthetic-span and excluded).
        let total: f64 = (1..=src.lines().count() as u32)
            .map(|l| query_line(&pred, &aag, l).time())
            .sum();
        assert!(
            total > 0.8 * pred.global_clock,
            "{total} vs {}",
            pred.global_clock
        );
    }

    #[test]
    fn range_query_supersets_single_line() {
        let (pred, aag, src) = setup();
        let forall_line = src.lines().position(|l| l.starts_with("FORALL")).unwrap() as u32 + 1;
        let single = query_line(&pred, &aag, forall_line);
        let range = query_lines(&pred, &aag, 1..=src.lines().count() as u32);
        assert!(range.time() >= single.time());
    }

    #[test]
    fn shifted_forall_line_carries_comm() {
        let (pred, aag, src) = setup();
        let second_forall = src
            .lines()
            .enumerate()
            .filter(|(_, l)| l.starts_with("FORALL"))
            .nth(1)
            .unwrap()
            .0 as u32
            + 1;
        let m = query_line(&pred, &aag, second_forall);
        assert!(m.comm > 0.0, "A(I-1) requires a shift: {m:?}");
        let first_forall = src.lines().position(|l| l.starts_with("FORALL")).unwrap() as u32 + 1;
        let m0 = query_line(&pred, &aag, first_forall);
        assert_eq!(m0.comm, 0.0, "local init must not communicate: {m0:?}");
    }

    #[test]
    fn profile_report_lists_nonzero_aaus() {
        let (pred, aag, _) = setup();
        let rep = profile_report(&pred, &aag, "t");
        let rows = rep
            .lines()
            .filter(|l| l.trim_start().starts_with('['))
            .count();
        assert!(rows >= 3, "{rep}");
        assert!(rep.contains("wait"));
    }

    #[test]
    fn subgraph_query_covers_loop_body() {
        let src = "
PROGRAM T
INTEGER, PARAMETER :: N = 128
REAL A(N)
INTEGER K
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
DO K = 1, 8
A = A + 1.0
END DO
END
"
        .to_string();
        let p = hpf_lang::parse_program(&src).unwrap();
        let a = hpf_lang::analyze(&p, &BTreeMap::new()).unwrap();
        let spmd = hpf_compiler::compile(
            &a,
            &CompileOptions {
                nodes: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let aag = appgraph::build_aag(&spmd);
        let m = ipsc860(4);
        let pred = crate::InterpretationEngine::new(&m).interpret(&aag);
        // find the loop IterD (no comp payload)
        let loop_id = aag
            .aaus
            .iter()
            .find(|u| matches!(&u.kind, appgraph::AauKind::IterD { comp: None, .. }))
            .unwrap()
            .id;
        let sub = query_subgraph(&pred, &aag, loop_id);
        // The loop sub-graph is essentially the whole program here.
        assert!(
            sub.time() > 0.9 * pred.global_clock,
            "{} vs {}",
            sub.time(),
            pred.global_clock
        );
        // A leaf's sub-graph equals its own metrics.
        let leaf = aag
            .aaus
            .iter()
            .find(|u| matches!(&u.kind, appgraph::AauKind::IterD { comp: Some(_), .. }))
            .unwrap()
            .id;
        let leaf_m = query_subgraph(&pred, &aag, leaf);
        assert_eq!(leaf_m, pred.per_aau[leaf]);
    }

    #[test]
    fn trace_timestamps_monotone() {
        let (pred, aag, _) = setup();
        let tr = paragraph_trace(&pred, &aag);
        let mut last = 0u64;
        for line in tr.lines() {
            let t: u64 = line.split_whitespace().nth(2).unwrap().parse().unwrap();
            assert!(t >= last || line.starts_with("task_begin") || line.starts_with("send"));
            last = last.max(t);
        }
        assert!(last > 0);
    }
}
