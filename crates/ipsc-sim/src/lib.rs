//! # ipsc-sim — discrete-event simulator of the iPSC/860 hypercube
//!
//! This crate is the reproduction's substitute for the physical machine the
//! paper measured against (DESIGN.md §2): a per-node-clock, event-level
//! network simulator executing the compiled SPMD program. Its cost model is
//! deliberately richer than the predictor's analytic one — compiled-code
//! distortion factors, cache conflict misses, e-cube link contention, and
//! per-run system-load jitter — so that predicted-vs-"measured" error is an
//! emergent quantity with the same character as the paper's Table 2.

pub mod network;
pub mod simulator;
pub mod trace;

pub use network::{
    route_table, simulate_phase, simulate_phase_faulty, simulate_phase_topo, simulate_phase_with,
    FaultStats, Message, PhaseTiming, RouteTable, ROUTE_TABLE_MAX_DIM,
};
pub use simulator::{
    calibrate, calibrate_backend, calibrate_params, collective_base_time,
    collective_base_time_with, io_base_time, sim_ops_time, FaultSession, SimConfig, SimResult,
    Simulator,
};
pub use trace::{trace_program, Activity, SimTrace, TraceEvent};

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_compiler::{compile, CompileOptions};
    use hpf_lang::{analyze, parse_program};
    use machine::ipsc860;
    use std::collections::BTreeMap;

    const LAPLACE: &str = "
PROGRAM LAP
INTEGER, PARAMETER :: N = 64
REAL U(N,N), V(N,N)
INTEGER IT
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN U(I,J) WITH T(I,J)
!HPF$ ALIGN V(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(BLOCK,*) ONTO P
U = 0.0
DO IT = 1, 10
FORALL (I=2:N-1, J=2:N-1) V(I,J) = 0.25 * (U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))
U(2:N-1, 2:N-1) = V(2:N-1, 2:N-1)
END DO
END
";

    fn sim_src(src: &str, nodes: usize, runs: usize) -> SimResult {
        let p = parse_program(src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let spmd = compile(
            &a,
            &CompileOptions {
                nodes,
                ..Default::default()
            },
        )
        .unwrap();
        let m = ipsc860(nodes);
        let profile = hpf_eval::run(&a).ok().map(|o| o.profile);
        Simulator::with_config(
            &m,
            SimConfig {
                runs,
                ..Default::default()
            },
        )
        .simulate(&spmd, profile.as_ref())
    }

    #[test]
    fn laplace_simulates_in_plausible_range() {
        let r = sim_src(LAPLACE, 4, 100);
        assert!(r.mean > 1e-4 && r.mean < 1.0, "mean {}", r.mean);
        assert!(r.comm > 0.0);
        assert!(r.comp > 0.0);
        assert!(r.min <= r.mean && r.mean <= r.max);
    }

    #[test]
    fn jitter_produces_variance_but_small() {
        let r = sim_src(LAPLACE, 4, 200);
        assert!(r.std > 0.0);
        assert!(r.std / r.mean < 0.05, "cv {}", r.std / r.mean);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = sim_src(LAPLACE, 4, 50);
        let b = sim_src(LAPLACE, 4, 50);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.std, b.std);
    }

    #[test]
    fn scaling_with_nodes() {
        let big = LAPLACE.replace("N = 64", "N = 256");
        let t1 = sim_src(&big, 1, 20).mean;
        let t8 = sim_src(&big, 8, 20).mean;
        assert!(t8 < t1, "8 nodes {t8} should beat 1 node {t1}");
        assert!(t1 / t8 > 2.0, "speedup {}", t1 / t8);
    }

    #[test]
    fn single_node_has_no_comm() {
        let r = sim_src(LAPLACE, 1, 20);
        assert_eq!(r.comm, 0.0);
    }

    #[test]
    fn profile_mask_density_matters() {
        // Mask true for only half the elements: simulating WITH the profile
        // must be cheaper than the predictor's density-1.0 heuristic path
        // (simulate without profile).
        let src = "
PROGRAM M
INTEGER, PARAMETER :: N = 2048
REAL A(N), Q(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN A(I) WITH T(I)
!HPF$ ALIGN Q(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
FORALL (I=1:N:2) Q(I) = 1.0
FORALL (I=1:N, Q(I) .GT. 0.0) A(I) = SQRT(Q(I)) / Q(I)
END
";
        let p = parse_program(src).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        let spmd = compile(
            &a,
            &CompileOptions {
                nodes: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let m = ipsc860(4);
        let profile = hpf_eval::run(&a).unwrap().profile;
        let cfg = SimConfig {
            runs: 20,
            ..Default::default()
        };
        let with = Simulator::with_config(&m, cfg.clone()).simulate(&spmd, Some(&profile));
        let without = Simulator::with_config(&m, cfg).simulate(&spmd, None);
        assert!(
            with.mean < without.mean,
            "profiled (density 0.5) {} must be under heuristic (1.0) {}",
            with.mean,
            without.mean
        );
    }
}

#[cfg(test)]
mod machine_backend_tests {
    use super::*;
    use hpf_machines::topology::HypercubeTopo;
    use machine::{ipsc860_comm, CollectiveOp, Hypercube};

    /// Driving a hypercube through the generic topology walk must time
    /// phases bit-identically to the dedicated hypercube path — the
    /// refactor's zero-behavioral-change contract at the phase level.
    #[test]
    fn generic_walk_matches_hypercube_path_bit_for_bit() {
        let comm = ipsc860_comm();
        for dim in 1u32..=4 {
            let cube = Hypercube { dim };
            let nodes = cube.nodes();
            let topo = HypercubeTopo { cube };
            // A deliberately contended mix: ring shift plus long-haul pairs.
            let mut ms = network::patterns::shift(nodes, 900);
            for n in 0..nodes {
                ms.push(Message {
                    from: n,
                    to: nodes - 1 - n,
                    bytes: 64 + 100 * n as u64,
                });
            }
            let dedicated = simulate_phase(cube, &comm, nodes, &ms);
            let generic = simulate_phase_topo(&topo, &comm, nodes, &ms);
            assert_eq!(dedicated.duration.to_bits(), generic.duration.to_bits());
            for (a, b) in dedicated.node_done.iter().zip(&generic.node_done) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// A hypercube-topology machine must take the dedicated code path in
    /// `collective_base_time` (not merely agree with it), which the
    /// registry's iPSC backend relies on for byte-identical goldens.
    #[test]
    fn registry_ipsc_collectives_match_direct_machine_bit_for_bit() {
        let direct = machine::ipsc860(8);
        let via = hpf_machines::machine("ipsc860").unwrap().params(8).unwrap();
        for op in [
            CollectiveOp::Shift,
            CollectiveOp::Reduce,
            CollectiveOp::Broadcast,
            CollectiveOp::AllToAll,
        ] {
            for bytes in [4u64, 100, 1024, 65536] {
                let a = collective_base_time(&direct, op, 8, bytes);
                let b = collective_base_time(&via, op, 8, bytes);
                assert_eq!(a.to_bits(), b.to_bits(), "{op:?} {bytes}B");
            }
        }
    }

    fn op_for_label(label: &str) -> CollectiveOp {
        match label {
            "shift" => CollectiveOp::Shift,
            "reduce" => CollectiveOp::Reduce,
            "maxloc" => CollectiveOp::ReduceLoc,
            "broadcast" => CollectiveOp::Broadcast,
            "all-to-all" => CollectiveOp::AllToAll,
            "gather" => CollectiveOp::Gather,
            "barrier" => CollectiveOp::Barrier,
            other => panic!("unknown op label {other}"),
        }
    }

    /// The ReFrame/HPL-style per-machine reference tables: recalibrate
    /// every registered backend and check each pinned expectation within
    /// its tolerance. Catches parameter/routing drift by name.
    #[test]
    fn registry_backends_match_reference_tables() {
        let mut calibrated: std::collections::HashMap<(&str, usize), machine::MachineModel> =
            std::collections::HashMap::new();
        for r in hpf_machines::calibration_references() {
            let m = calibrated.entry((r.machine, r.nodes)).or_insert_with(|| {
                let backend = hpf_machines::machine(r.machine).unwrap();
                calibrate_backend(backend, r.nodes).unwrap()
            });
            let fitted_us = m.collective_time(op_for_label(r.op), r.p, r.bytes) * 1e6;
            let err_pct = (fitted_us - r.expected_us).abs() / r.expected_us * 100.0;
            assert!(
                err_pct <= r.tol_pct,
                "{} {} p={} {}B: fitted {fitted_us:.3}µs vs reference {:.3}µs ({err_pct:.2}% > {}%)",
                r.machine,
                r.op,
                r.p,
                r.bytes,
                r.expected_us,
                r.tol_pct
            );
        }
    }

    /// Non-hypercube backends produce *different* collective timings than
    /// the iPSC/860 — the registry is a real machine axis, not a relabel.
    #[test]
    fn backends_disagree_on_collective_cost() {
        let ipsc = machine::ipsc860(8);
        for name in ["torus3d", "fattree", "multicore"] {
            let m = hpf_machines::machine(name).unwrap().params(8).unwrap();
            let a = collective_base_time(&ipsc, CollectiveOp::AllToAll, 8, 1024);
            let b = collective_base_time(&m, CollectiveOp::AllToAll, 8, 1024);
            assert_ne!(a.to_bits(), b.to_bits(), "{name}");
        }
    }

    /// `calibrate_backend` surfaces out-of-range node counts as the typed
    /// error, not a panic.
    #[test]
    fn calibrate_backend_rejects_bad_nodes() {
        let backend = hpf_machines::machine("multicore").unwrap();
        assert!(matches!(
            calibrate_backend(backend, 0),
            Err(hpf_machines::TopologyError::InvalidNodes { .. })
        ));
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;
    use hpf_compiler::{compile, CompileOptions};
    use hpf_lang::{analyze, parse_program};
    use machine::ipsc860;
    use std::collections::BTreeMap;

    const PI_SRC: &str = "
PROGRAM PI
INTEGER, PARAMETER :: N = 2048
REAL F(N), PIE
!HPF$ PROCESSORS P(8)
!HPF$ DISTRIBUTE F(BLOCK) ONTO P
FORALL (I = 1:N) F(I) = 4.0 / (1.0 + ((I - 0.5) * (1.0 / N)) ** 2)
PIE = SUM(F) / N
END
";

    fn spmd(nodes: usize) -> hpf_compiler::SpmdProgram {
        let p = parse_program(PI_SRC).unwrap();
        let a = analyze(&p, &BTreeMap::new()).unwrap();
        compile(
            &a,
            &CompileOptions {
                nodes,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn zero_jitter_zero_variance() {
        let m = ipsc860(8);
        let cfg = SimConfig {
            runs: 20,
            load_jitter: 0.0,
            timer_tolerance: 0.0,
            ..Default::default()
        };
        let r = Simulator::with_config(&m, cfg).simulate(&spmd(8), None);
        assert!(r.std < 1e-12, "std {}", r.std);
        assert!((r.min - r.max).abs() < 1e-9 * r.mean.max(1e-9));
    }

    #[test]
    fn larger_jitter_larger_variance() {
        let m = ipsc860(8);
        let small = Simulator::with_config(
            &m,
            SimConfig {
                runs: 100,
                load_jitter: 0.005,
                ..Default::default()
            },
        )
        .simulate(&spmd(8), None);
        let big = Simulator::with_config(
            &m,
            SimConfig {
                runs: 100,
                load_jitter: 0.05,
                ..Default::default()
            },
        )
        .simulate(&spmd(8), None);
        assert!(big.std > small.std);
    }

    #[test]
    fn different_seeds_different_samples_same_scale() {
        let m = ipsc860(8);
        let a = Simulator::with_config(
            &m,
            SimConfig {
                runs: 50,
                seed: 1,
                ..Default::default()
            },
        )
        .simulate(&spmd(8), None);
        let b = Simulator::with_config(
            &m,
            SimConfig {
                runs: 50,
                seed: 2,
                ..Default::default()
            },
        )
        .simulate(&spmd(8), None);
        assert_ne!(a.mean, b.mean);
        assert!((a.mean - b.mean).abs() / a.mean < 0.05, "same scale");
    }

    #[test]
    fn scales_to_sixteen_and_thirtytwo_nodes() {
        // The framework generalizes beyond the paper's 8-node machine.
        let t8 = {
            let m = ipsc860(8);
            Simulator::with_config(
                &m,
                SimConfig {
                    runs: 10,
                    ..Default::default()
                },
            )
            .simulate(&spmd(8), None)
            .mean
        };
        let t32 = {
            let m = ipsc860(32);
            Simulator::with_config(
                &m,
                SimConfig {
                    runs: 10,
                    ..Default::default()
                },
            )
            .simulate(&spmd(32), None)
            .mean
        };
        assert!(t32 < t8, "32 nodes {t32} should beat 8 {t8} on n=2048");
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_baseline() {
        // The resilience layer must not perturb the healthy machine: a
        // config whose fault plan is empty reproduces the exact numbers of
        // a config that never mentions faults.
        let m = ipsc860(8);
        let baseline = Simulator::with_config(
            &m,
            SimConfig {
                runs: 30,
                ..Default::default()
            },
        )
        .simulate(&spmd(8), None);
        let explicit = Simulator::with_config(
            &m,
            SimConfig {
                runs: 30,
                faults: machine::FaultPlan::none(),
                ..Default::default()
            },
        )
        .simulate(&spmd(8), None);
        assert_eq!(baseline.mean.to_bits(), explicit.mean.to_bits());
        assert_eq!(baseline.std.to_bits(), explicit.std.to_bits());
        assert_eq!(baseline.comm.to_bits(), explicit.comm.to_bits());
        assert!(!explicit.fault_stats.any());
    }

    #[test]
    fn fault_plans_are_deterministic_and_costly() {
        let m = ipsc860(8);
        let run = |plan: machine::FaultPlan| {
            Simulator::with_config(
                &m,
                SimConfig {
                    runs: 30,
                    faults: plan,
                    ..Default::default()
                },
            )
            .simulate(&spmd(8), None)
        };
        let healthy = run(machine::FaultPlan::none());
        for plan in [
            machine::FaultPlan::degraded_link(0, 1, 4.0),
            machine::FaultPlan::slow_node(0, 2.0),
            machine::FaultPlan::lossy(0.1),
        ] {
            let a = run(plan.clone());
            let b = run(plan.clone());
            assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "{}", plan.name);
            assert_eq!(a.fault_stats, b.fault_stats, "{}", plan.name);
            assert!(
                a.mean > healthy.mean,
                "{}: {} vs {}",
                plan.name,
                a.mean,
                healthy.mean
            );
        }
    }

    #[test]
    fn lossy_plan_records_retries() {
        let m = ipsc860(8);
        let r = Simulator::with_config(
            &m,
            SimConfig {
                runs: 30,
                faults: machine::FaultPlan::lossy(0.2),
                ..Default::default()
            },
        )
        .simulate(&spmd(8), None);
        assert!(r.fault_stats.retries > 0);
        assert_eq!(r.fault_stats.undeliverable, 0);
    }

    #[test]
    fn slow_node_slows_compute_not_comm() {
        let m = ipsc860(8);
        let healthy = Simulator::with_config(
            &m,
            SimConfig {
                runs: 10,
                ..Default::default()
            },
        )
        .simulate(&spmd(8), None);
        let slowed = Simulator::with_config(
            &m,
            SimConfig {
                runs: 10,
                faults: machine::FaultPlan::slow_node(2, 3.0),
                ..Default::default()
            },
        )
        .simulate(&spmd(8), None);
        assert!(
            slowed.comp > 2.5 * healthy.comp,
            "{} vs {}",
            slowed.comp,
            healthy.comp
        );
        let comm_ratio = slowed.comm / healthy.comm.max(1e-12);
        assert!(
            comm_ratio < 1.05,
            "comm should be untouched: ratio {comm_ratio}"
        );
    }

    #[test]
    fn calibration_covers_all_ops_and_sizes() {
        let m = calibrate(8);
        let cal = m.calibration.as_ref().unwrap();
        assert!(
            cal.compute_scale > 1.0 && cal.compute_scale < 1.5,
            "{}",
            cal.compute_scale
        );
        // 8 ops × p in {2,4,8}
        assert_eq!(
            cal.comm.len(),
            8 * 3,
            "{:?}",
            cal.comm.keys().collect::<Vec<_>>()
        );
        for pc in cal.comm.values() {
            assert!(pc.small.alpha_s >= 0.0 && pc.large.alpha_s >= 0.0);
        }
    }

    #[test]
    fn calibrate_params_is_calibrate_bit_for_bit() {
        // The backend-generic characterization pass must be the original
        // `calibrate` exactly: same probes, same fits, same bits.
        let a = calibrate(8);
        let b = calibrate_params(ipsc860(8));
        let ca = a.calibration.as_ref().unwrap();
        let cb = b.calibration.as_ref().unwrap();
        assert_eq!(ca.compute_scale.to_bits(), cb.compute_scale.to_bits());
        assert_eq!(ca.comm.len(), cb.comm.len());
        for (k, pa) in &ca.comm {
            let pb = &cb.comm[k];
            assert_eq!(pa.small.alpha_s.to_bits(), pb.small.alpha_s.to_bits());
            assert_eq!(
                pa.small.beta_s_per_byte.to_bits(),
                pb.small.beta_s_per_byte.to_bits()
            );
            assert_eq!(pa.large.alpha_s.to_bits(), pb.large.alpha_s.to_bits());
            assert_eq!(
                pa.large.beta_s_per_byte.to_bits(),
                pb.large.beta_s_per_byte.to_bits()
            );
        }
    }

    #[test]
    fn calibrated_collective_tracks_des_within_band() {
        let m = calibrate(8);
        for op in [machine::CollectiveOp::Shift, machine::CollectiveOp::Reduce] {
            for bytes in [8u64, 640, 10000] {
                let fitted = m.collective_time(op, 8, bytes);
                let actual = collective_base_time(&m, op, 8, bytes);
                let err = (fitted - actual).abs() / actual.max(1e-12);
                assert!(err < 0.35, "{op:?} {bytes}B: fitted {fitted} vs {actual}");
            }
        }
    }
}
