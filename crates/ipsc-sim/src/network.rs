//! Event-level network model of the iPSC/860 Direct-Connect hypercube:
//! e-cube-routed messages with per-link occupancy (contention), used by the
//! simulator to time each communication phase.
//!
//! This is deliberately *richer* than the analytic collective model the
//! predictor uses — contention and per-hop effects are exactly the kind of
//! behaviour a static model abstracts away, and they are one honest source
//! of prediction error in the reproduction.

use machine::{CommComponent, FaultPlan, Hypercube, LinkState};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// One message to deliver within a communication phase.
#[derive(Debug, Clone, Copy)]
pub struct Message {
    pub from: usize,
    pub to: usize,
    pub bytes: u64,
}

/// Outcome of simulating one phase.
#[derive(Debug, Clone)]
pub struct PhaseTiming {
    /// Completion time of each node (seconds from phase start).
    pub node_done: Vec<f64>,
    /// Max over nodes.
    pub duration: f64,
}

/// Per-link occupancy end-times as a flat array: every hypercube link is
/// between XOR-neighbors `a` and `b = a ^ (1 << d)`, so the canonical
/// undirected link id `min(a, b) * dim + d` is dense in
/// `0..nodes * dim` — no hashing in the per-message hot loop.
struct LinkTable {
    dim: usize,
    free: Vec<f64>,
}

impl LinkTable {
    fn new(cube: Hypercube) -> Self {
        let dim = (cube.dim as usize).max(1);
        LinkTable {
            dim,
            free: vec![0.0f64; cube.nodes() * dim],
        }
    }

    /// Canonical undirected index of the link between XOR-neighbors.
    #[inline]
    fn index(dim: usize, a: usize, b: usize) -> usize {
        let d = (a ^ b).trailing_zeros() as usize;
        a.min(b) * dim + d
    }

    /// Reserve the link for a transmission of `wire` seconds plus the
    /// per-hop switch cost, starting no earlier than `t`; returns the time
    /// the transmission clears the link. The two cost terms are added to
    /// `start` separately — the exact f64 association the original
    /// hash-map walk used, preserving bit-identical phase timings.
    #[inline]
    fn occupy(&mut self, a: usize, b: usize, t: f64, wire: f64, hop: f64) -> f64 {
        let i = Self::index(self.dim, a, b);
        debug_assert!(
            i < self.free.len(),
            "link ({a},{b}) indexes {i} past table of {}",
            self.free.len()
        );
        let start = t.max(self.free[i]);
        let end = start + wire + hop;
        self.free[i] = end;
        end
    }
}

/// Precomputed e-cube routes for every (from, to) pair of one hypercube —
/// the flattened-CSR replacement for calling [`Hypercube::route_links`]
/// (which allocates a fresh `Vec`) on every message of every phase of
/// every simulated run.
pub struct RouteTable {
    nodes: usize,
    offsets: Vec<u32>,
    links: Vec<(u32, u32)>,
}

impl RouteTable {
    fn build(cube: Hypercube) -> RouteTable {
        let n = cube.nodes();
        let mut offsets = Vec::with_capacity(n * n + 1);
        let mut links = Vec::new();
        offsets.push(0u32);
        for from in 0..n {
            for to in 0..n {
                for (a, b) in cube.route_links(from, to) {
                    links.push((a as u32, b as u32));
                }
                offsets.push(links.len() as u32);
            }
        }
        RouteTable {
            nodes: n,
            offsets,
            links,
        }
    }

    /// The e-cube route `from → to` as (from, to) link hops.
    #[inline]
    pub fn route(&self, from: usize, to: usize) -> &[(u32, u32)] {
        let i = from * self.nodes + to;
        &self.links[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// Largest cube dimension whose route table is precomputed (64 nodes →
/// 4096 pairs). Bigger cubes fall back to on-the-fly routing, counted as
/// `sim.route_cache_miss`.
pub const ROUTE_TABLE_MAX_DIM: u32 = 6;

/// The shared route table for `cube`, built once per dimension for the
/// whole process. `None` when the cube exceeds [`ROUTE_TABLE_MAX_DIM`].
pub fn route_table(cube: Hypercube) -> Option<Arc<RouteTable>> {
    if cube.dim > ROUTE_TABLE_MAX_DIM {
        return None;
    }
    static CACHE: OnceLock<Mutex<HashMap<u32, Arc<RouteTable>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().unwrap_or_else(|e| e.into_inner());
    Some(
        guard
            .entry(cube.dim)
            .or_insert_with(|| Arc::new(RouteTable::build(cube)))
            .clone(),
    )
}

/// Simulate the delivery of a set of messages injected simultaneously at
/// phase start. Links are half-duplex channels; messages crossing the same
/// link serialize (store-and-forward per link occupancy).
pub fn simulate_phase(
    cube: Hypercube,
    comm: &CommComponent,
    nodes: usize,
    messages: &[Message],
) -> PhaseTiming {
    let table = route_table(cube);
    simulate_phase_with(cube, comm, nodes, messages, table.as_deref())
}

/// [`simulate_phase`] against a caller-held route table (the simulator
/// resolves the table once per run set instead of once per phase).
pub fn simulate_phase_with(
    cube: Hypercube,
    comm: &CommComponent,
    nodes: usize,
    messages: &[Message],
    table: Option<&RouteTable>,
) -> PhaseTiming {
    let mut node_done = vec![0.0f64; nodes];
    let mut links = LinkTable::new(cube);
    let traced = hpf_trace::enabled();
    let mut hits = 0u64;
    let mut misses = 0u64;

    // Deterministic order: messages as given (phase algorithms inject in a
    // fixed order already).
    for m in messages {
        if m.from == m.to || m.from >= nodes || m.to >= nodes {
            continue;
        }
        let startup = if m.bytes <= comm.short_threshold {
            comm.short_latency_s
        } else {
            comm.long_latency_s
        };
        let wire = m.bytes as f64 * comm.per_byte_s;
        let mut t = node_done[m.from] + startup;
        match table {
            Some(tab) => {
                hits += 1;
                for &(a, b) in tab.route(m.from, m.to) {
                    t = links.occupy(a as usize, b as usize, t, wire, comm.per_hop_s);
                }
            }
            None => {
                misses += 1;
                for (a, b) in cube.route_links(m.from, m.to) {
                    t = links.occupy(a, b, t, wire, comm.per_hop_s);
                }
            }
        }
        // Sender is busy only for injection; receiver blocks until arrival.
        node_done[m.from] = node_done[m.from].max(node_done[m.from] + startup + wire);
        node_done[m.to] = node_done[m.to].max(t);
    }
    if traced {
        if hits > 0 {
            hpf_trace::counter_add("sim.route_cache_hit", hits);
        }
        if misses > 0 {
            hpf_trace::counter_add("sim.route_cache_miss", misses);
        }
    }
    let duration = node_done.iter().copied().fold(0.0, f64::max);
    PhaseTiming {
        node_done,
        duration,
    }
}

/// Generic-topology variant of [`simulate_phase`]: the same
/// store-and-forward occupancy walk, with link slots, routes and link
/// indices supplied by an [`hpf_machines::Topology`] instead of the
/// hard-wired hypercube tables. Each traversed link adds `wire + hop`
/// to the occupancy start in the same f64 association order as
/// `LinkTable::occupy`, so a hypercube driven through this path times
/// phases bit-identically to [`simulate_phase`].
pub fn simulate_phase_topo(
    topo: &dyn hpf_machines::Topology,
    comm: &CommComponent,
    nodes: usize,
    messages: &[Message],
) -> PhaseTiming {
    let limit = nodes.min(topo.nodes());
    let mut node_done = vec![0.0f64; nodes];
    let mut free = vec![0.0f64; topo.link_slots()];
    for m in messages {
        if m.from == m.to || m.from >= limit || m.to >= limit {
            continue;
        }
        let startup = if m.bytes <= comm.short_threshold {
            comm.short_latency_s
        } else {
            comm.long_latency_s
        };
        let wire = m.bytes as f64 * comm.per_byte_s;
        let mut t = node_done[m.from] + startup;
        for (a, b) in topo.route_links(m.from, m.to) {
            let i = topo.link_index(a, b);
            let start = t.max(free[i]);
            let end = start + wire + comm.per_hop_s;
            free[i] = end;
            t = end;
        }
        node_done[m.from] = node_done[m.from].max(node_done[m.from] + startup + wire);
        node_done[m.to] = node_done[m.to].max(t);
    }
    let duration = node_done.iter().copied().fold(0.0, f64::max);
    PhaseTiming {
        node_done,
        duration,
    }
}

/// Counts of fault events observed while delivering messages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Timed-out transmissions that were resent.
    pub retries: u64,
    /// Messages rerouted around a severed link.
    pub detours: u64,
    /// Messages that could not reach their destination at all (network
    /// partitioned by severed links).
    pub undeliverable: u64,
}

impl FaultStats {
    pub fn any(&self) -> bool {
        self.retries + self.detours + self.undeliverable > 0
    }

    pub fn absorb(&mut self, other: FaultStats) {
        self.retries += other.retries;
        self.detours += other.detours;
        self.undeliverable += other.undeliverable;
    }
}

/// E-cube route for `m`, detouring around severed links: if the dimension-
/// ordered route crosses a Down link, fall back to a breadth-first search
/// over the healthy links (deterministic: dimensions explored in order, so
/// the same shortest detour is found every time). Returns `None` when the
/// severed links partition `from` from `to`.
fn route_avoiding(
    cube: Hypercube,
    from: usize,
    to: usize,
    plan: &FaultPlan,
    table: Option<&RouteTable>,
) -> Option<(Vec<(usize, usize)>, bool)> {
    let up = |a: usize, b: usize| plan.link_state(a, b) != Some(LinkState::Down);
    let direct: Vec<(usize, usize)> = match table {
        Some(t) => t
            .route(from, to)
            .iter()
            .map(|&(a, b)| (a as usize, b as usize))
            .collect(),
        None => cube.route_links(from, to),
    };
    if direct.iter().all(|&(a, b)| up(a, b)) {
        return Some((direct, false));
    }
    let n = cube.nodes();
    let mut prev = vec![usize::MAX; n];
    prev[from] = from;
    let mut queue = std::collections::VecDeque::from([from]);
    'search: while let Some(v) = queue.pop_front() {
        for d in 0..cube.dim {
            let w = cube.neighbor(v, d);
            if prev[w] == usize::MAX && up(v, w) {
                prev[w] = v;
                if w == to {
                    break 'search;
                }
                queue.push_back(w);
            }
        }
    }
    if prev[to] == usize::MAX {
        return None; // partitioned
    }
    let mut links = Vec::new();
    let mut v = to;
    while v != from {
        links.push((prev[v], v));
        v = prev[v];
    }
    links.reverse();
    Some((links, true))
}

/// Fault-injected variant of [`simulate_phase`]: each message is subject to
/// the plan's loss probability (timeout + exponential-backoff resend, per
/// [`machine::RetryPolicy`]), degraded links stretch wire time, and severed
/// links force detour routes. Deterministic for a given `rng` state.
pub fn simulate_phase_faulty(
    cube: Hypercube,
    comm: &CommComponent,
    nodes: usize,
    messages: &[Message],
    plan: &FaultPlan,
    rng: &mut StdRng,
) -> (PhaseTiming, FaultStats) {
    let table = route_table(cube);
    let table = table.as_deref();
    let mut node_done = vec![0.0f64; nodes];
    let mut links = LinkTable::new(cube);
    let mut stats = FaultStats::default();
    let traced = hpf_trace::enabled();
    let mut hits = 0u64;
    let mut misses = 0u64;

    for m in messages {
        if m.from == m.to || m.from >= nodes || m.to >= nodes {
            continue;
        }
        let startup = if m.bytes <= comm.short_threshold {
            comm.short_latency_s
        } else {
            comm.long_latency_s
        };
        let wire = m.bytes as f64 * comm.per_byte_s;

        let Some((route, detoured)) = route_avoiding(cube, m.from, m.to, plan, table) else {
            // Partitioned: the BFS ran and found nothing — a cache miss
            // and the sender burns its full retry budget waiting.
            misses += 1;
            stats.undeliverable += 1;
            let mut waited = 0.0;
            for k in 0..plan.retry.max_retries {
                waited += plan.retry.timeout_s * plan.retry.backoff.powi(k as i32);
            }
            node_done[m.from] = node_done[m.from].max(node_done[m.from] + startup + waited);
            continue;
        };
        if detoured || table.is_none() {
            misses += 1;
        } else {
            hits += 1;
        }
        if detoured {
            stats.detours += 1;
        }

        let mut inject = node_done[m.from];
        for attempt in 0..=plan.retry.max_retries {
            // The transmission occupies links whether or not it is lost.
            let mut t = inject + startup;
            for &(a, b) in &route {
                let slow = match plan.link_state(a, b) {
                    Some(LinkState::Degraded { factor }) => factor.max(1.0),
                    _ => 1.0,
                };
                t = links.occupy(a, b, t, wire * slow, comm.per_hop_s);
            }
            let lost = plan.loss_prob > 0.0
                && attempt < plan.retry.max_retries
                && rng.gen_bool(plan.loss_prob.clamp(0.0, 1.0));
            if lost {
                stats.retries += 1;
                // Sender notices via timeout, backs off, resends.
                inject += startup + plan.retry.timeout_s * plan.retry.backoff.powi(attempt as i32);
                continue;
            }
            node_done[m.from] = node_done[m.from].max(inject + startup + wire);
            node_done[m.to] = node_done[m.to].max(t);
            break;
        }
    }
    if traced {
        if hits > 0 {
            hpf_trace::counter_add("sim.route_cache_hit", hits);
        }
        if misses > 0 {
            hpf_trace::counter_add("sim.route_cache_miss", misses);
        }
    }
    let duration = node_done.iter().copied().fold(0.0, f64::max);
    (
        PhaseTiming {
            node_done,
            duration,
        },
        stats,
    )
}

/// Build the message list for one stage-structured collective.
pub mod patterns {
    use super::Message;
    use machine::Hypercube;

    /// Nearest-neighbor exchange in both directions between consecutive
    /// nodes of a ring embedded in the cube (grid-dimension shift).
    pub fn shift(nodes: usize, bytes: u64) -> Vec<Message> {
        let mut ms = Vec::new();
        if nodes < 2 {
            return ms;
        }
        for n in 0..nodes {
            let up = (n + 1) % nodes;
            ms.push(Message {
                from: n,
                to: up,
                bytes,
            });
            ms.push(Message {
                from: up,
                to: n,
                bytes,
            });
        }
        ms
    }

    /// Recursive-halving reduction: log p stages of pairwise exchange.
    /// Returns per-stage message lists (stages synchronize).
    pub fn reduce_stages(cube: Hypercube, nodes: usize, bytes: u64) -> Vec<Vec<Message>> {
        let mut stages = Vec::new();
        for d in 0..cube.dim {
            let mut ms = Vec::new();
            for n in 0..nodes {
                let partner = cube.neighbor(n, d);
                if partner < nodes {
                    ms.push(Message {
                        from: n,
                        to: partner,
                        bytes,
                    });
                }
            }
            stages.push(ms);
        }
        stages
    }

    /// Spanning-tree broadcast from node 0: stage d sends across dim d.
    pub fn broadcast_stages(cube: Hypercube, nodes: usize, bytes: u64) -> Vec<Vec<Message>> {
        let mut stages = Vec::new();
        for d in 0..cube.dim {
            let mut ms = Vec::new();
            for n in 0..nodes {
                // nodes with all bits above d clear have the data
                if n & !((1usize << (d + 1)) - 1) == 0 && n < (1 << d) + (1 << d) {
                    let to = n | (1 << d);
                    if n < (1 << d) && to < nodes {
                        ms.push(Message { from: n, to, bytes });
                    }
                }
            }
            stages.push(ms);
        }
        stages
    }

    /// All-to-all personalized exchange: p-1 rounds of pairwise exchange
    /// (XOR schedule — classic hypercube algorithm).
    pub fn all_to_all_rounds(nodes: usize, bytes_per_pair: u64) -> Vec<Vec<Message>> {
        let mut rounds = Vec::new();
        for r in 1..nodes {
            let mut ms = Vec::new();
            for n in 0..nodes {
                let partner = n ^ r;
                if partner < nodes {
                    ms.push(Message {
                        from: n,
                        to: partner,
                        bytes: bytes_per_pair,
                    });
                }
            }
            rounds.push(ms);
        }
        rounds
    }

    /// Unstructured gather: every node exchanges with log p partners.
    pub fn gather(cube: Hypercube, nodes: usize, bytes: u64) -> Vec<Message> {
        let mut ms = Vec::new();
        for n in 0..nodes {
            for d in 0..cube.dim.min(2) {
                let partner = cube.neighbor(n, d);
                if partner < nodes {
                    ms.push(Message {
                        from: partner,
                        to: n,
                        bytes,
                    });
                }
            }
        }
        ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::ipsc860_comm;

    #[test]
    fn single_message_time() {
        let comm = ipsc860_comm();
        let cube = Hypercube { dim: 3 };
        let t = simulate_phase(
            cube,
            &comm,
            8,
            &[Message {
                from: 0,
                to: 1,
                bytes: 1024,
            }],
        );
        let expect = comm.long_latency_s + 1024.0 * comm.per_byte_s + comm.per_hop_s;
        assert!(
            (t.duration - expect).abs() < 1e-9,
            "{} vs {expect}",
            t.duration
        );
    }

    #[test]
    fn contention_serializes_shared_links() {
        let comm = ipsc860_comm();
        let cube = Hypercube { dim: 2 };
        // two messages crossing the same link 0-1
        let t2 = simulate_phase(
            cube,
            &comm,
            4,
            &[
                Message {
                    from: 0,
                    to: 1,
                    bytes: 4096,
                },
                Message {
                    from: 0,
                    to: 1,
                    bytes: 4096,
                },
            ],
        );
        let t1 = simulate_phase(
            cube,
            &comm,
            4,
            &[Message {
                from: 0,
                to: 1,
                bytes: 4096,
            }],
        );
        assert!(
            t2.duration > 1.5 * t1.duration,
            "{} vs {}",
            t2.duration,
            t1.duration
        );
    }

    #[test]
    fn disjoint_messages_overlap() {
        let comm = ipsc860_comm();
        let cube = Hypercube { dim: 2 };
        let par = simulate_phase(
            cube,
            &comm,
            4,
            &[
                Message {
                    from: 0,
                    to: 1,
                    bytes: 4096,
                },
                Message {
                    from: 2,
                    to: 3,
                    bytes: 4096,
                },
            ],
        );
        let one = simulate_phase(
            cube,
            &comm,
            4,
            &[Message {
                from: 0,
                to: 1,
                bytes: 4096,
            }],
        );
        assert!((par.duration - one.duration).abs() < 1e-9);
    }

    #[test]
    fn multi_hop_costs_more() {
        let comm = ipsc860_comm();
        let cube = Hypercube { dim: 3 };
        let far = simulate_phase(
            cube,
            &comm,
            8,
            &[Message {
                from: 0,
                to: 7,
                bytes: 512,
            }],
        );
        let near = simulate_phase(
            cube,
            &comm,
            8,
            &[Message {
                from: 0,
                to: 1,
                bytes: 512,
            }],
        );
        assert!(far.duration > near.duration);
    }

    /// Serializes tests that flip the process-global trace enable flag.
    static TRACE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn link_index_in_bounds_up_to_1024_nodes() {
        // The flat link table's contract: for every cube up to 1024 nodes
        // (dim 10), every XOR-neighbor pair maps inside `nodes * dim`, and
        // distinct undirected links get distinct slots (nodes * dim / 2 of
        // them — the other half of the table is unused headroom).
        for dim in 1u32..=10 {
            let cube = Hypercube { dim };
            let nodes = cube.nodes();
            let d = dim as usize;
            let mut seen = std::collections::HashSet::new();
            for a in 0..nodes {
                for bit in 0..d {
                    let b = a ^ (1 << bit);
                    let i = LinkTable::index(d, a, b);
                    assert!(i < nodes * d, "dim {dim}: link ({a},{b}) -> {i}");
                    assert_eq!(i, LinkTable::index(d, b, a), "must be undirected");
                    seen.insert(i);
                }
            }
            assert_eq!(seen.len(), nodes * d / 2, "dim {dim}: slot collisions");
        }
    }

    #[test]
    fn route_table_matches_on_the_fly_routing() {
        for dim in 1u32..=ROUTE_TABLE_MAX_DIM {
            let cube = Hypercube { dim };
            let tab = route_table(cube).expect("within precompute bound");
            for from in 0..cube.nodes() {
                for to in 0..cube.nodes() {
                    let cached: Vec<(usize, usize)> = tab
                        .route(from, to)
                        .iter()
                        .map(|&(a, b)| (a as usize, b as usize))
                        .collect();
                    assert_eq!(cached, cube.route_links(from, to), "dim {dim} {from}->{to}");
                }
            }
        }
        assert!(route_table(Hypercube {
            dim: ROUTE_TABLE_MAX_DIM + 1
        })
        .is_none());
    }

    #[test]
    fn healthy_phase_counts_route_cache_hits() {
        let comm = ipsc860_comm();
        let cube = Hypercube { dim: 3 };
        let ms = patterns::shift(8, 256);

        let _lock = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let h0 = hpf_trace::counter_get("sim.route_cache_hit");
        let m0 = hpf_trace::counter_get("sim.route_cache_miss");
        hpf_trace::enable();
        simulate_phase(cube, &comm, 8, &ms);
        hpf_trace::disable();
        assert_eq!(
            hpf_trace::counter_get("sim.route_cache_hit") - h0,
            ms.len() as u64
        );
        assert_eq!(hpf_trace::counter_get("sim.route_cache_miss"), m0);
    }

    #[test]
    fn severed_link_counts_route_cache_misses() {
        use rand::SeedableRng;
        let comm = ipsc860_comm();
        let cube = Hypercube { dim: 3 };
        let plan = FaultPlan::link_down(0, 1);
        // 0->1 must detour (miss); 2->3 rides the table (hit).
        let ms = [
            Message {
                from: 0,
                to: 1,
                bytes: 512,
            },
            Message {
                from: 2,
                to: 3,
                bytes: 512,
            },
        ];

        let _lock = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let h0 = hpf_trace::counter_get("sim.route_cache_hit");
        let m0 = hpf_trace::counter_get("sim.route_cache_miss");
        hpf_trace::enable();
        let (_, stats) = simulate_phase_faulty(
            cube,
            &comm,
            8,
            &ms,
            &plan,
            &mut StdRng::seed_from_u64(0xFA17),
        );
        hpf_trace::disable();
        assert_eq!(stats.detours, 1);
        assert_eq!(hpf_trace::counter_get("sim.route_cache_miss") - m0, 1);
        assert_eq!(hpf_trace::counter_get("sim.route_cache_hit") - h0, 1);
    }

    #[test]
    fn shift_pattern_shape() {
        let ms = patterns::shift(4, 100);
        assert_eq!(ms.len(), 8); // 4 ups + 4 downs
        let ms1 = patterns::shift(1, 100);
        assert!(ms1.is_empty());
    }

    #[test]
    fn reduce_stages_cover_dims() {
        let cube = Hypercube { dim: 3 };
        let st = patterns::reduce_stages(cube, 8, 4);
        assert_eq!(st.len(), 3);
        assert_eq!(st[0].len(), 8);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let cube = Hypercube { dim: 3 };
        let st = patterns::broadcast_stages(cube, 8, 4);
        let mut have = [false; 8];
        have[0] = true;
        for stage in &st {
            for m in stage {
                assert!(have[m.from], "sender {} must already hold data", m.from);
                have[m.to] = true;
            }
        }
        assert!(have.iter().all(|&h| h));
    }

    #[test]
    fn all_to_all_rounds_pair_everyone() {
        let rounds = patterns::all_to_all_rounds(4, 64);
        assert_eq!(rounds.len(), 3);
        // each round pairs each node exactly once
        for r in &rounds {
            assert_eq!(r.len(), 4);
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use machine::ipsc860_comm;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xFA17)
    }

    #[test]
    fn zero_plan_matches_healthy_path_exactly() {
        let comm = ipsc860_comm();
        let cube = Hypercube { dim: 3 };
        let ms = [
            Message {
                from: 0,
                to: 5,
                bytes: 2048,
            },
            Message {
                from: 1,
                to: 6,
                bytes: 64,
            },
            Message {
                from: 3,
                to: 3,
                bytes: 9,
            },
        ];
        let healthy = simulate_phase(cube, &comm, 8, &ms);
        let (faulty, stats) =
            simulate_phase_faulty(cube, &comm, 8, &ms, &FaultPlan::none(), &mut rng());
        assert_eq!(healthy.duration, faulty.duration);
        assert_eq!(healthy.node_done, faulty.node_done);
        assert!(!stats.any());
    }

    #[test]
    fn degraded_link_stretches_crossing_messages_only() {
        let comm = ipsc860_comm();
        let cube = Hypercube { dim: 2 };
        let plan = FaultPlan::degraded_link(0, 1, 4.0);
        let crossing = [Message {
            from: 0,
            to: 1,
            bytes: 4096,
        }];
        let avoiding = [Message {
            from: 2,
            to: 3,
            bytes: 4096,
        }];
        let (t_cross, _) = simulate_phase_faulty(cube, &comm, 4, &crossing, &plan, &mut rng());
        let (t_avoid, _) = simulate_phase_faulty(cube, &comm, 4, &avoiding, &plan, &mut rng());
        let base = simulate_phase(cube, &comm, 4, &crossing);
        assert!(
            t_cross.duration > base.duration * 1.5,
            "{} vs {}",
            t_cross.duration,
            base.duration
        );
        assert_eq!(t_avoid.duration, base.duration);
    }

    #[test]
    fn severed_link_detours_and_still_delivers() {
        let comm = ipsc860_comm();
        let cube = Hypercube { dim: 3 };
        let plan = FaultPlan::link_down(0, 1);
        let ms = [Message {
            from: 0,
            to: 1,
            bytes: 512,
        }];
        let (t, stats) = simulate_phase_faulty(cube, &comm, 8, &ms, &plan, &mut rng());
        assert_eq!(stats.detours, 1);
        assert_eq!(stats.undeliverable, 0);
        // Delivered, later than the direct single-hop send.
        let direct = simulate_phase(cube, &comm, 8, &ms);
        assert!(t.node_done[1] > direct.node_done[1]);
    }

    #[test]
    fn partition_is_reported_not_hung() {
        let comm = ipsc860_comm();
        let cube = Hypercube { dim: 1 }; // 2 nodes, single link
        let plan = FaultPlan::link_down(0, 1);
        let ms = [Message {
            from: 0,
            to: 1,
            bytes: 512,
        }];
        let (t, stats) = simulate_phase_faulty(cube, &comm, 2, &ms, &plan, &mut rng());
        assert_eq!(stats.undeliverable, 1);
        // Receiver never completes; sender burned its retry budget.
        assert_eq!(t.node_done[1], 0.0);
        assert!(t.node_done[0] > 0.0);
    }

    #[test]
    fn loss_forces_retries_deterministically() {
        let comm = ipsc860_comm();
        let cube = Hypercube { dim: 3 };
        let plan = FaultPlan::lossy(0.4);
        let ms: Vec<Message> = (0..8)
            .map(|n| Message {
                from: n,
                to: (n + 1) % 8,
                bytes: 256,
            })
            .collect();
        let (t1, s1) = simulate_phase_faulty(cube, &comm, 8, &ms, &plan, &mut rng());
        let (t2, s2) = simulate_phase_faulty(cube, &comm, 8, &ms, &plan, &mut rng());
        assert!(
            s1.retries > 0,
            "p=0.4 over 8 messages should lose at least one"
        );
        assert_eq!(s1, s2);
        assert_eq!(t1.node_done, t2.node_done);
        // Retries only ever add time.
        let healthy = simulate_phase(cube, &comm, 8, &ms);
        assert!(t1.duration >= healthy.duration);
    }
}

#[cfg(test)]
mod network_properties {
    use super::*;
    use machine::ipsc860_comm;
    use proptest::prelude::*;

    proptest! {
        /// Phase duration is at least the cost of its largest message and at
        /// most the fully serialized sum; all node completion times are
        /// non-negative and bounded by the phase duration.
        #[test]
        fn phase_duration_bounds(
            dim in 1u32..5,
            msgs in proptest::collection::vec((0usize..16, 0usize..16, 1u64..50_000), 1..12),
        ) {
            let comm = ipsc860_comm();
            let cube = Hypercube { dim };
            let nodes = cube.nodes();
            let messages: Vec<Message> = msgs
                .iter()
                .map(|&(f, t, b)| Message { from: f % nodes, to: t % nodes, bytes: b })
                .collect();
            let timing = simulate_phase(cube, &comm, nodes, &messages);

            let single = |m: &Message| -> f64 {
                if m.from == m.to {
                    return 0.0;
                }
                let startup = if m.bytes <= comm.short_threshold {
                    comm.short_latency_s
                } else {
                    comm.long_latency_s
                };
                let hops = cube.hops(m.from, m.to) as f64;
                startup + hops * (m.bytes as f64 * comm.per_byte_s + comm.per_hop_s)
            };
            let max_single = messages.iter().map(&single).fold(0.0f64, f64::max);
            let serial_sum: f64 = messages.iter().map(single).sum();

            prop_assert!(timing.duration + 1e-12 >= max_single,
                "duration {} < max single {max_single}", timing.duration);
            // Upper bound is loose (sender-serialization can interleave with
            // link waits) — 2x the serial sum is a safe envelope.
            prop_assert!(timing.duration <= 2.0 * serial_sum + 1e-9,
                "duration {} > 2x serial {serial_sum}", timing.duration);
            for t in &timing.node_done {
                prop_assert!(*t >= 0.0 && *t <= timing.duration + 1e-12);
            }
        }

        /// Self-messages and out-of-range endpoints are ignored, never panic.
        #[test]
        fn degenerate_messages_ignored(n in 0usize..10, b in 0u64..1000) {
            let comm = ipsc860_comm();
            let cube = Hypercube { dim: 2 };
            let t = simulate_phase(
                cube,
                &comm,
                4,
                &[Message { from: n % 5, to: n % 5, bytes: b }],
            );
            prop_assert_eq!(t.duration, 0.0);
        }
    }
}
